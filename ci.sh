#!/usr/bin/env bash
# The full offline CI gate: formatting, lints, release build, tests.
# Requires nothing beyond the baked-in Rust toolchain — the workspace is
# hermetic (no registry crates), so this runs with the network off.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy (default features)"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "==> cargo clippy (heavy-tests)"
    cargo clippy --workspace --all-targets --features heavy-tests -- -D warnings
else
    echo "==> clippy unavailable in this toolchain; skipping lint step"
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (default features)"
cargo test -q

echo "==> cargo test (forced sequential validate, ACR_THREADS=1)"
ACR_THREADS=1 cargo test -q

echo "==> cargo test (delta construction off, ACR_DELTA=0)"
ACR_DELTA=0 cargo test -q --test determinism_differential --test repair_incidents

echo "==> cargo test (dense reference engine, ACR_SPARSE=0; multi-patch determinism)"
ACR_SPARSE=0 cargo test -q --test determinism_differential

echo "==> exp_delta --smoke (delta/full equivalence regression guard)"
cargo run --release -q -p acr-bench --bin exp_delta -- --smoke

echo "==> exp_converge --smoke (sparse engine + smoke-sized scale-frontier loads)"
conv_sparse=$(cargo run --release -q -p acr-bench --bin exp_converge -- --smoke | tee /dev/stderr | grep '^report_digest=')

echo "==> exp_converge --smoke (dense engine, ACR_SPARSE=0; digests must agree)"
conv_dense=$(ACR_SPARSE=0 cargo run --release -q -p acr-bench --bin exp_converge -- --smoke | tee /dev/stderr | grep '^report_digest=')
if [ "$conv_sparse" != "$conv_dense" ]; then
    echo "FAIL: sparse and dense engines computed different repairs ($conv_sparse vs $conv_dense)" >&2
    exit 1
fi

echo "==> exp_converge --smoke (sharding off, ACR_SHARD=0; digests must agree)"
conv_noshard=$(ACR_SHARD=0 cargo run --release -q -p acr-bench --bin exp_converge -- --smoke | tee /dev/stderr | grep '^report_digest=')
if [ "$conv_sparse" != "$conv_noshard" ]; then
    echo "FAIL: sharded and unsharded runs computed different repairs ($conv_sparse vs $conv_noshard)" >&2
    exit 1
fi

echo "==> exp_flow --smoke (static relevance gate: skips > 0, identical reports)"
flow_on=$(cargo run --release -q -p acr-bench --bin exp_flow -- --smoke | tee /dev/stderr | grep '^report_digest=')

echo "==> exp_flow --smoke (gate off, ACR_FLOW=0; digests must agree)"
flow_off=$(ACR_FLOW=0 cargo run --release -q -p acr-bench --bin exp_flow -- --smoke | tee /dev/stderr | grep '^report_digest=')
if [ "$flow_on" != "$flow_off" ]; then
    echo "FAIL: gated and ungated passes computed different repairs ($flow_on vs $flow_off)" >&2
    exit 1
fi

echo "==> exp_obs --smoke (journal/trace schema + determinism guard)"
obs_on=$(cargo run --release -q -p acr-bench --bin exp_obs -- --smoke | tee /dev/stderr | grep '^report_digest=')

echo "==> exp_obs --smoke --disabled (obs fully off; digests must agree)"
obs_off=$(ACR_OBS=0 cargo run --release -q -p acr-bench --bin exp_obs -- --smoke --disabled | tee /dev/stderr | grep '^report_digest=')
if [ "$obs_on" != "$obs_off" ]; then
    echo "FAIL: instrumented and disabled passes computed different repairs ($obs_on vs $obs_off)" >&2
    exit 1
fi

echo "==> exp_scenarios --smoke (scenario corpus + strategy A/B + golden digest)"
scen_on=$(cargo run --release -q -p acr-bench --bin exp_scenarios -- --smoke | tee /dev/stderr | grep -E '^(report|corpus)_digest=')

echo "==> exp_scenarios --smoke (gate off, ACR_FLOW=0; digests must agree)"
scen_off=$(ACR_FLOW=0 cargo run --release -q -p acr-bench --bin exp_scenarios -- --smoke | tee /dev/stderr | grep -E '^(report|corpus)_digest=')
if [ "$scen_on" != "$scen_off" ]; then
    echo "FAIL: scenario corpus or repairs diverged under ACR_FLOW=0 ($scen_on vs $scen_off)" >&2
    exit 1
fi
# The corpus content itself is regression-pinned (golden_corpus.rs); the
# bench must be running on exactly that corpus.
if ! grep -q 'b1380ed19022fbaf' <<<"$scen_on"; then
    echo "FAIL: exp_scenarios ran on a corpus that does not match the golden pin" >&2
    exit 1
fi

echo "==> trace_repair example (ACR_TRACE/ACR_JOURNAL env path)"
obs_tmp=$(mktemp -d)
ACR_TRACE="$obs_tmp/trace.json" ACR_JOURNAL="$obs_tmp/journal.jsonl" \
    cargo run --release -q --example trace_repair >/dev/null
grep -q '"traceEvents"' "$obs_tmp/trace.json"
grep -q '"schema":"acr-journal/v2"' "$obs_tmp/journal.jsonl"
rm -rf "$obs_tmp"

echo "==> cargo test (heavy-tests)"
cargo test -q --workspace --features heavy-tests

echo "CI OK"
