//! Quickstart: break a small WAN, watch verification catch it, let ACR
//! repair it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use acr::prelude::*;

fn main() {
    // 1. A 4-backbone / 6-customer WAN with role-generated configurations
    //    and a reachability specification.
    let topo = acr::topo::gen::wan(4, 6);
    let net = generate(&topo);
    println!(
        "network: {} routers, {} links, {} config lines, {} intents",
        topo.len(),
        topo.links().len(),
        net.cfg.total_lines(),
        net.spec.len()
    );

    // 2. Verify the intended configuration — everything holds.
    let verifier = Verifier::new(&net.topo, &net.spec);
    let (v, _) = verifier.run_full(&net.cfg);
    println!(
        "intended config: {}/{} tests pass",
        v.records.len() - v.failed_count(),
        v.records.len()
    );

    // 3. Inject a Table-1 incident: a peer group goes missing.
    let incident = try_inject(FaultType::MissingPeerGroup, &net, 0).expect("injectable");
    println!("\nincident: {}", incident.description);
    let (v, _) = verifier.run_full(&incident.broken);
    for failure in v.failures() {
        println!(
            "  FAILED {}: {}",
            failure.property,
            failure
                .violation
                .as_ref()
                .map(|x| x.to_string())
                .unwrap_or_default()
        );
    }

    // 4. Localize: the most suspicious configuration lines.
    let ranking = localize(&v.matrix, SbflFormula::Tarantula);
    println!("\ntop suspicious lines (Tarantula):");
    for (line, score) in ranking.top_k(5) {
        let stmt = incident
            .broken
            .stmt(*line)
            .map(|s| s.to_string())
            .unwrap_or_default();
        println!("  {score:.2}  {line}  {}", stmt.trim());
    }

    // 5. Repair: localize–fix–validate to a feasible update.
    let engine = RepairEngine::with_defaults(&net.topo, &net.spec);
    let report = engine.repair(&incident.broken);
    match &report.outcome {
        RepairOutcome::Fixed { patch, repaired } => {
            println!(
                "\nrepaired in {} iterations / {} validations ({:?}):",
                report.iteration_count(),
                report.validations,
                report.wall
            );
            println!("  {patch}");
            let (v, _) = verifier.run_full(repaired);
            println!(
                "post-repair: {}/{} tests pass",
                v.records.len() - v.failed_count(),
                v.records.len()
            );
        }
        other => println!("\nno feasible update found: {other:?}"),
    }
}
