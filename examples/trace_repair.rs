//! Trace one Figure 2 repair end-to-end with every obs facility on.
//!
//! Writes a Chrome trace (open it in `chrome://tracing` or Perfetto), a
//! JSONL run journal, and prints the metrics registry. Honors
//! `ACR_TRACE` / `ACR_JOURNAL` when set (the zero-code production path);
//! otherwise defaults to `fig2_trace.json` / `fig2_journal.jsonl` in the
//! working directory.
//!
//! ```sh
//! cargo run --release --example trace_repair
//! ACR_TRACE=t.json ACR_JOURNAL=j.jsonl cargo run --release --example trace_repair
//! ```

use acr::obs::{self, metrics};
use acr::prelude::*;

fn main() {
    let trace_path = std::env::var("ACR_TRACE").unwrap_or_else(|_| "fig2_trace.json".into());
    let journal_path = std::env::var("ACR_JOURNAL").unwrap_or_else(|_| "fig2_journal.jsonl".into());
    // When the environment configures the sinks, let the lazy env scan
    // wire them (the path a production operator uses); otherwise enable
    // programmatically with the default file names.
    if std::env::var("ACR_TRACE").is_err() {
        obs::enable_trace_to(&trace_path);
    }
    if std::env::var("ACR_JOURNAL").is_err() {
        obs::enable_journal_to(&journal_path).expect("open journal file");
    }
    obs::enable_metrics();

    let fig2 = acr::workloads::fig2::fig2_incident();
    let engine = RepairEngine::with_defaults(&fig2.topo, &fig2.spec);
    let report = engine.repair(&fig2.broken);

    match &report.outcome {
        RepairOutcome::Fixed { patch, .. } => {
            println!("fixed in {} iterations; patch:", report.iterations.len());
            for line in patch.to_string().lines() {
                println!("  {line}");
            }
        }
        other => println!("not fixed: {other:?}"),
    }
    println!(
        "validations: {} simulated, {} from cache; wall {:?}\n",
        report.validations, report.validations_cached, report.wall
    );
    println!("{}", metrics::render_text());
    // The engine flushes sinks when a run finishes; flush again in case
    // the journal sink was env-configured after the engine's last write.
    obs::flush();
    println!("trace   -> {trace_path}  (load in chrome://tracing or Perfetto)");
    println!("journal -> {journal_path}");
}
