//! Runs both README library samples verbatim through the public crate
//! surface.

use acr::prelude::*;

fn main() {
    let fig2 = acr::workloads::fig2::fig2_incident();
    let engine = RepairEngine::with_defaults(&fig2.topo, &fig2.spec);
    let report = engine.repair(&fig2.broken);
    assert!(report.outcome.is_fixed());
    println!("fig2 repaired: {} validations", report.validations);

    let net = acr::workloads::generate(&acr::topo::gen::wan(4, 8));
    let broken = acr::workloads::try_inject(FaultType::MissingRoutePolicy, &net, 1)
        .expect("injectable")
        .broken;
    let report = lint_network(&net.topo, &broken);
    assert!(!report.is_clean());
    print!("{}", report.render(&broken));
}
