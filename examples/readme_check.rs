//! Runs the README library samples verbatim through the public crate
//! surface.

use acr::prelude::*;
use std::sync::Arc;

fn main() {
    let fig2 = acr::workloads::fig2::fig2_incident();
    let engine = RepairEngine::with_defaults(&fig2.topo, &fig2.spec);
    let report = engine.repair(&fig2.broken);
    assert!(report.outcome.is_fixed());
    println!("fig2 repaired: {} validations", report.validations);

    // The parallel-validation sample: threads/cache knobs on RepairConfig.
    let cache = Arc::new(acr::core::SimCache::default());
    let config = RepairConfig {
        threads: 4,                 // 0 = available parallelism, 1 = sequential
        cache: Some(cache.clone()), // share one Arc across engines & baselines
        ..RepairConfig::default()
    };
    let engine = acr::core::RepairEngine::new(&fig2.topo, &fig2.spec, config);
    let report = engine.repair(&fig2.broken);
    assert!(report.outcome.is_fixed());
    println!(
        "fig2 (threads=4, cached): {} simulated, {} from memo",
        report.validations, report.validations_cached
    );

    let net = acr::workloads::generate(&acr::topo::gen::wan(4, 8));
    let broken = acr::workloads::try_inject(FaultType::MissingRoutePolicy, &net, 1)
        .expect("injectable")
        .broken;
    let report = lint_network(&net.topo, &broken);
    assert!(!report.is_clean());
    print!("{}", report.render(&broken));
}
