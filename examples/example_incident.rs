//! The paper's Figure 2 incident, narrated end to end.
//!
//! Reproduces §5's worked example: route flapping for 10.0/16 caused by
//! over-broad `default_all` prefix lists on routers A and C, localized by
//! Tarantula, fixed by prefix-list symbolization, validated by the
//! incremental verifier.
//!
//! ```sh
//! cargo run --example example_incident
//! ```

use acr::prelude::*;
use acr::workloads::fig2::fig2_incident;
use acr_core::templates::TemplateKind;
use acr_verify::Verifier;

fn main() {
    let fig2 = fig2_incident();
    println!("=== The network (paper Figure 2a) ===");
    for info in fig2.topo.routers() {
        let neighbors: Vec<String> = fig2
            .topo
            .neighbors(info.id)
            .iter()
            .map(|(n, _)| fig2.topo.router(*n).name.clone())
            .collect();
        let attached: Vec<String> = info.attached.iter().map(|p| p.to_string()).collect();
        println!(
            "  {:5} ({}) -- neighbors: {:?}{}",
            info.name,
            info.role,
            neighbors,
            if attached.is_empty() {
                String::new()
            } else {
                format!(", originates {attached:?}")
            }
        );
    }

    println!("\n=== Router A's configuration (paper Figure 2b) ===");
    for (n, stmt) in fig2.broken.device(fig2.a).unwrap().lines() {
        println!("  {n:2} {stmt}");
    }

    println!("\n=== The incident ===");
    let sim = Simulator::new(&fig2.topo, &fig2.broken);
    let out = sim.run();
    for prefix in out.flapping() {
        println!("  route FLAPPING for {prefix} (the paper's orange arrows)");
    }
    let verifier = Verifier::new(&fig2.topo, &fig2.spec);
    let (v, _) = verifier.run_full(&fig2.broken);
    for rec in &v.records {
        println!(
            "  test {:5} [{}] -> {}",
            rec.property,
            rec.kind,
            if rec.passed {
                "pass".to_string()
            } else {
                format!("FAIL ({})", rec.violation.as_ref().unwrap())
            }
        );
    }

    println!("\n=== Step 1: Localize (Tarantula over the coverage spectrum) ===");
    let ranking = localize(&v.matrix, SbflFormula::Tarantula);
    for (line, score) in ranking.entries().iter().filter(|(l, _)| l.router == fig2.a) {
        let stmt = fig2
            .broken
            .stmt(*line)
            .map(|s| s.to_string())
            .unwrap_or_default();
        if *score > 0.0 {
            println!(
                "  A line {:2}  susp {:.2}  {}",
                line.line,
                score,
                stmt.trim()
            );
        }
    }
    println!("  (the paper's 0.67 on A's `peer S route-policy Override_All import`)");

    println!("\n=== Steps 2+3, iterated: the repair engine ===");
    let engine = RepairEngine::new(
        &fig2.topo,
        &fig2.spec,
        RepairConfig {
            strategy: Strategy::brute_force(),
            allowed_templates: Some(vec![TemplateKind::PrefixListAdjust]),
            ..RepairConfig::default()
        },
    );
    let report = engine.repair(&fig2.broken);
    for it in &report.iterations {
        println!(
            "  iteration {:2}: fitness {}, {} candidates generated, {} preserved, {} prefixes re-simulated",
            it.iteration, it.fitness, it.generated, it.kept, it.recomputed_prefixes
        );
    }
    match &report.outcome {
        RepairOutcome::Fixed { patch, repaired } => {
            println!("\nfeasible update found ({} edits):", patch.len());
            for edit in &patch.edits {
                println!("  {edit}");
            }
            let (v, _) = verifier.run_full(repaired);
            println!(
                "\npost-repair verification: {}/{} tests pass, flapping: none",
                v.records.len() - v.failed_count(),
                v.records.len()
            );
            println!("\n=== Repaired prefix lists ===");
            for router in [fig2.a, fig2.c] {
                let name = &fig2.topo.router(router).name;
                for (_, stmt) in repaired.device(router).unwrap().lines() {
                    let text = stmt.to_string();
                    if text.contains("prefix-list") {
                        println!("  {name}: {}", text.trim());
                    }
                }
            }
        }
        other => println!("unexpected outcome: {other:?}"),
    }
}
