//! Localization deep-dive: compare SBFL formulas and walk provenance.
//!
//! Injects a "stale route map" incident, scores it with four SBFL
//! formulas plus the CEL-style MaxSAT localizer, and prints the
//! provenance explanation of a surviving route.
//!
//! ```sh
//! cargo run --example localize_and_explain
//! ```

use acr::prelude::*;
use acr::prov::Provenance;
use acr_localize::cel_localize;
use acr_verify::Verifier;

fn main() {
    let topo = acr::topo::gen::wan(4, 8);
    let net = generate(&topo);
    let incident = try_inject(FaultType::StaleRouteMap, &net, 2).expect("injectable");
    println!("incident: {}", incident.description);
    println!("ground-truth breaking edits: {}", incident.patch);

    let verifier = Verifier::new(&net.topo, &net.spec);
    let (v, out) = verifier.run_full(&incident.broken);
    println!(
        "\nverification: {} of {} tests fail",
        v.failed_count(),
        v.records.len()
    );

    // ---- SBFL formula comparison (the paper's §6 future-work axis) ----
    for formula in [
        SbflFormula::Tarantula,
        SbflFormula::Ochiai,
        SbflFormula::Jaccard,
        SbflFormula::DStar(2),
    ] {
        let ranking = localize(&v.matrix, formula);
        println!("\ntop-3 by {formula}:");
        for (line, score) in ranking.top_k(3) {
            let stmt = incident
                .broken
                .stmt(*line)
                .map(|s| s.to_string())
                .unwrap_or_default();
            println!("  {score:.3}  {line}  {}", stmt.trim());
        }
    }

    // ---- CEL-style minimal-correction-set localization ----
    let blamed = cel_localize(&v.matrix);
    println!("\nCEL-style correction set ({} lines):", blamed.len());
    for line in blamed.iter().take(5) {
        let stmt = incident
            .broken
            .stmt(*line)
            .map(|s| s.to_string())
            .unwrap_or_default();
        println!("  {line}  {}", stmt.trim());
    }

    // ---- provenance explanation of a passing route ----
    let prov = Provenance::new(&out.arena);
    if let Some(rec) = v.records.iter().find(|r| r.passed) {
        if let Some(root) = rec.deriv_roots.last() {
            println!(
                "\nwhy does test `{}` see its route? derivation:",
                rec.property
            );
            print!("{}", prov.explain(*root));
        }
    }

    // ---- and of the failure ----
    let first_failure = v.failures().next();
    if let Some(rec) = first_failure {
        println!(
            "failure `{}`: {} — provenance leaves (MetaProv's search space): {}",
            rec.property,
            rec.violation.as_ref().unwrap(),
            prov.leaves(rec.deriv_roots.iter().copied()).len()
        );
    }
}
