//! DNA-style incremental verification in action.
//!
//! Shows the property ACR's validation step leans on (§3.2 observation 3):
//! after one full verification, candidate updates re-simulate only the
//! prefixes they can affect.
//!
//! ```sh
//! cargo run --example incremental_verification
//! ```

use acr::prelude::*;
use std::time::Instant;

fn main() {
    let topo = acr::topo::gen::wan(12, 24);
    let net = generate(&topo);
    println!(
        "network: {} routers, {} originated prefixes, {} tests",
        topo.len(),
        {
            let sim = Simulator::new(&net.topo, &net.cfg);
            sim.universe().len()
        },
        net.spec.len() * 2
    );

    let mut iv = IncrementalVerifier::new(&net.topo, &net.spec);

    // Cold run: everything simulates.
    let t = Instant::now();
    let v = iv.verify(&net.cfg, None);
    println!(
        "\ncold verification: {:?} — {} prefixes simulated, {} tests pass",
        t.elapsed(),
        iv.last_stats().recomputed,
        v.records.len() - v.failed_count()
    );

    // A local candidate edit: append an unrelated static route on the
    // last backbone router.
    let router = RouterId(11);
    let patch = Patch::single(Edit::Insert {
        router,
        index: net.cfg.device(router).unwrap().len(),
        stmt: Stmt::StaticRoute {
            prefix: "203.0.113.0/24".parse().unwrap(),
            next_hop: acr::cfg::NextHop::Null0,
        },
    });
    let candidate = patch.apply_cloned(&net.cfg).unwrap();
    let t = Instant::now();
    let v = iv.verify_candidate(&candidate, &patch);
    println!(
        "candidate (unrelated static): {:?} — {} prefixes re-simulated, {} reused, {} tests pass",
        t.elapsed(),
        iv.last_stats().recomputed,
        iv.last_stats().reused,
        v.records.len() - v.failed_count()
    );

    // A prefix-scoped edit: only the overlapping prefix re-simulates.
    let patch = Patch::single(Edit::Insert {
        router,
        index: net.cfg.device(router).unwrap().len(),
        stmt: Stmt::PrefixListEntry {
            list: "scratch".into(),
            index: 10,
            action: acr::cfg::PlAction::Permit,
            prefix: "10.3.0.0/16".parse().unwrap(),
            ge: None,
            le: None,
        },
    });
    let candidate = patch.apply_cloned(&net.cfg).unwrap();
    let t = Instant::now();
    let _ = iv.verify_candidate(&candidate, &patch);
    println!(
        "candidate (touches 10.3/16): {:?} — {} prefixes re-simulated, {} reused",
        t.elapsed(),
        iv.last_stats().recomputed,
        iv.last_stats().reused
    );

    // A session-shaping edit conservatively invalidates everything.
    let patch = Patch::single(Edit::Replace {
        router,
        index: 1,
        stmt: Stmt::RouterId(Ipv4Addr::new(9, 9, 9, 9)),
    });
    let candidate = patch.apply_cloned(&net.cfg).unwrap();
    let t = Instant::now();
    let _ = iv.verify_candidate(&candidate, &patch);
    println!(
        "candidate (session-shaping): {:?} — {} prefixes re-simulated, {} reused",
        t.elapsed(),
        iv.last_stats().recomputed,
        iv.last_stats().reused
    );
}
