//! Differential determinism harness: the parallel validate stage must
//! be *observationally invisible*.
//!
//! The engine's contract (see `acr-core`'s `validate` module) is that
//! candidate verdicts are pure functions of batch-start state and all
//! cache mutations happen coordinator-side in candidate-index order, so
//! the worker-pool size cannot influence a repair. This harness proves
//! it differentially: every corpus incident is repaired under
//! `threads ∈ {1, 4, 8}` (each with its own fresh cache) and the runs
//! must agree on the outcome, the patch, the full per-iteration trace,
//! and both validation counters. Internal derivation-arena id numbering
//! may differ across thread counts — ids are arena-local — which is why
//! the comparison is over the report, never over raw `Verification`s.

use acr::prelude::*;
use acr::scenarios::{corpus, Scenario};
use acr_core::RepairReport;
use acr_core::SimCache;
use acr_workloads::GeneratedNetwork;
use std::sync::Arc;

fn wan() -> GeneratedNetwork {
    generate(&acr::topo::gen::wan(4, 8))
}

/// Everything observable about how a repair ended, comparable across
/// runs. (`RepairOutcome` holds a `NetworkConfig`, which compares by
/// fingerprint — the canonical rendered text.)
#[derive(Debug, PartialEq, Eq)]
enum OutcomeSig {
    Fixed {
        patch: Patch,
        repaired_fp: u64,
    },
    NoCandidates {
        best_patch: Patch,
        best_fitness: usize,
    },
    IterationLimit {
        best_patch: Patch,
        best_fitness: usize,
    },
}

fn signature(report: &RepairReport) -> OutcomeSig {
    match &report.outcome {
        RepairOutcome::Fixed { patch, repaired } => OutcomeSig::Fixed {
            patch: patch.clone(),
            repaired_fp: repaired.fingerprint(),
        },
        RepairOutcome::NoCandidates {
            best_patch,
            best_fitness,
        } => OutcomeSig::NoCandidates {
            best_patch: best_patch.clone(),
            best_fitness: *best_fitness,
        },
        RepairOutcome::IterationLimit {
            best_patch,
            best_fitness,
        } => OutcomeSig::IterationLimit {
            best_patch: best_patch.clone(),
            best_fitness: *best_fitness,
        },
    }
}

fn repair_with_threads(
    net: &GeneratedNetwork,
    broken: &NetworkConfig,
    seed: u64,
    threads: usize,
) -> RepairReport {
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            seed,
            threads,
            // Fresh cache per run: differential equality must not lean
            // on shared state between the compared runs.
            cache: Some(Arc::new(SimCache::default())),
            ..RepairConfig::default()
        },
    );
    engine.repair(broken)
}

fn assert_reports_identical(a: &RepairReport, b: &RepairReport, what: &str) {
    assert_eq!(signature(a), signature(b), "{what}: outcome diverged");
    assert_eq!(
        a.iterations, b.iterations,
        "{what}: iteration trace diverged"
    );
    assert_eq!(
        a.initial_failed, b.initial_failed,
        "{what}: initial failures diverged"
    );
    assert_eq!(
        a.validations, b.validations,
        "{what}: validation count diverged"
    );
    assert_eq!(
        a.validations_cached, b.validations_cached,
        "{what}: cached-validation count diverged"
    );
    assert_eq!(
        a.validations_skipped, b.validations_skipped,
        "{what}: flow-skip count diverged"
    );
    assert_eq!(
        a.attribution, b.attribution,
        "{what}: patch attribution diverged"
    );
    assert_eq!(a.tags, b.tags, "{what}: tags diverged");
}

/// The headline harness: 12 incidents × 3 seeds, `threads ∈ {1, 4, 8}`
/// must be byte-identical in every observable field.
#[test]
fn thread_count_never_changes_a_repair() {
    let net = wan();
    let incidents = sample_incidents(&net, 12, 77);
    assert!(
        incidents.len() >= 10,
        "corpus too small: {}",
        incidents.len()
    );
    for (i, incident) in incidents.iter().enumerate() {
        for seed in [0u64, 11, 42] {
            let base = repair_with_threads(&net, &incident.broken, seed, 1);
            for threads in [4usize, 8] {
                let par = repair_with_threads(&net, &incident.broken, seed, threads);
                assert_reports_identical(
                    &base,
                    &par,
                    &format!(
                        "incident {i} ({}), seed {seed}, threads {threads}",
                        incident.fault
                    ),
                );
            }
        }
    }
}

/// The delta-compilation toggle is construction-only: the invalidation
/// analysis runs identically whether candidate simulators are built from
/// scratch or delta-compiled against the committed base, so repairs with
/// delta on and off must be byte-identical in every observable field, at
/// every worker-pool size.
#[test]
fn delta_compilation_never_changes_a_repair() {
    let net = wan();
    let incidents = sample_incidents(&net, 6, 77);
    for (i, incident) in incidents.iter().enumerate() {
        for threads in [1usize, 4, 8] {
            let run = |delta: bool| {
                let engine = RepairEngine::new(
                    &net.topo,
                    &net.spec,
                    RepairConfig {
                        seed: 11,
                        threads,
                        cache: Some(Arc::new(SimCache::default())),
                        delta,
                        ..RepairConfig::default()
                    },
                );
                engine.repair(&incident.broken)
            };
            assert_reports_identical(
                &run(true),
                &run(false),
                &format!(
                    "incident {i} ({}), threads {threads}, delta on vs off",
                    incident.fault
                ),
            );
        }
    }
}

/// Multi-patch beam search must be exactly as deterministic as the
/// single-fault genetic path: for composed multi-fault scenarios (every
/// family), repairs under `threads ∈ {1, 4, 8}` × `delta ∈ {on, off}`
/// must agree on every observable field — outcome, patch, iteration
/// trace, *per-segment attribution*, tags, and all three validation
/// counters — and every report must satisfy the candidate-accounting
/// identity. (`ACR_SPARSE` is process-global, so the sparse axis is
/// differenced cross-process by `ci.sh`; journal byte-identity for the
/// beam path lives in `obs_pipeline.rs`, which owns the global sink.)
#[test]
fn beam_multi_patch_repair_is_thread_and_delta_invariant() {
    let net = wan();
    let scenarios: Vec<Scenario> = corpus(&net, 1, 2024);
    assert!(
        scenarios.len() >= 4,
        "corpus too small: {}",
        scenarios.len()
    );
    for scenario in &scenarios {
        let spec = scenario.visible_spec(&net.spec);
        let run = |threads: usize, delta: bool| {
            let engine = RepairEngine::new(
                &net.topo,
                &spec,
                RepairConfig {
                    seed: 11,
                    threads,
                    delta,
                    strategy: acr::core::Strategy::beam(),
                    cache: Some(Arc::new(SimCache::default())),
                    tags: scenario.tags(),
                    ..RepairConfig::default()
                },
            );
            engine.repair(&scenario.broken)
        };
        let base = run(1, true);
        base.check_accounting()
            .unwrap_or_else(|e| panic!("{}: accounting violated: {e}", scenario.label));
        assert_eq!(
            base.tags,
            scenario.tags(),
            "{}: tags dropped",
            scenario.label
        );
        for threads in [1usize, 4, 8] {
            for delta in [true, false] {
                if threads == 1 && delta {
                    continue; // that is `base`
                }
                let other = run(threads, delta);
                other
                    .check_accounting()
                    .unwrap_or_else(|e| panic!("{}: accounting violated: {e}", scenario.label));
                assert_reports_identical(
                    &base,
                    &other,
                    &format!(
                        "scenario {} , threads {threads}, delta {delta}",
                        scenario.label
                    ),
                );
            }
        }
    }
}

/// The flow gate replaces simulations with exactly-equal served
/// verdicts, so it shifts candidates between the `validated`, `cached`
/// and `flow_skipped` buckets without ever changing the search: with the
/// gate on vs off, a beam repair must walk the same trajectory (outcome,
/// patch, attribution, per-iteration generated/kept/fitness) and conserve
/// the attempted-candidate total per iteration.
#[test]
fn flow_gate_never_changes_a_beam_repair() {
    let net = wan();
    let scenarios: Vec<Scenario> = corpus(&net, 1, 2024);
    for scenario in &scenarios {
        let spec = scenario.visible_spec(&net.spec);
        let run = |flow: bool| {
            let engine = RepairEngine::new(
                &net.topo,
                &spec,
                RepairConfig {
                    seed: 11,
                    threads: 1,
                    flow,
                    strategy: acr::core::Strategy::beam(),
                    cache: Some(Arc::new(SimCache::default())),
                    tags: scenario.tags(),
                    ..RepairConfig::default()
                },
            );
            engine.repair(&scenario.broken)
        };
        let on = run(true);
        let off = run(false);
        let what = format!("scenario {}, flow on vs off", scenario.label);
        assert_eq!(signature(&on), signature(&off), "{what}: outcome diverged");
        assert_eq!(
            on.attribution, off.attribution,
            "{what}: attribution diverged"
        );
        assert_eq!(on.iterations.len(), off.iterations.len(), "{what}");
        for (a, b) in on.iterations.iter().zip(&off.iterations) {
            assert_eq!(a.generated, b.generated, "{what}: generated diverged");
            assert_eq!(a.kept, b.kept, "{what}: kept diverged");
            assert_eq!(a.fitness, b.fitness, "{what}: fitness diverged");
            assert_eq!(
                a.validated + a.cached + a.flow_skipped,
                b.validated + b.cached + b.flow_skipped,
                "{what}: attempted-candidate total diverged"
            );
        }
        assert_eq!(
            off.validations_skipped, 0,
            "{what}: gate off but skips counted"
        );
        for r in [&on, &off] {
            r.check_accounting()
                .unwrap_or_else(|e| panic!("{what}: accounting violated: {e}"));
        }
    }
}

/// `threads=1` with the cache disabled is the exact legacy sequential
/// path; with a (cold, private) cache it must still produce the same
/// outcome and simulate-or-memoize the same total number of candidates.
#[test]
fn cache_never_changes_a_repair() {
    let net = wan();
    let incidents = sample_incidents(&net, 6, 77);
    for (i, incident) in incidents.iter().enumerate() {
        let engine_off = RepairEngine::new(
            &net.topo,
            &net.spec,
            RepairConfig {
                seed: 11,
                threads: 1,
                cache: None,
                ..RepairConfig::default()
            },
        );
        let off = engine_off.repair(&incident.broken);
        let on = repair_with_threads(&net, &incident.broken, 11, 1);
        let what = format!("incident {i} ({})", incident.fault);
        assert_eq!(signature(&off), signature(&on), "{what}: outcome diverged");
        assert_eq!(off.initial_failed, on.initial_failed, "{what}");
        // A memo hit replaces a simulation but never skips a candidate:
        // the per-iteration generated/kept trace and the simulated+cached
        // total are conserved.
        assert_eq!(off.iterations.len(), on.iterations.len(), "{what}");
        for (a, b) in off.iterations.iter().zip(&on.iterations) {
            assert_eq!(a.generated, b.generated, "{what}: generated diverged");
            assert_eq!(a.kept, b.kept, "{what}: kept diverged");
            assert_eq!(a.fitness, b.fitness, "{what}: fitness diverged");
            assert_eq!(
                a.validated + a.cached,
                b.validated + b.cached,
                "{what}: candidate accounting diverged"
            );
        }
        assert_eq!(
            off.validations + off.validations_cached,
            on.validations + on.validations_cached,
            "{what}: validation totals diverged"
        );
        assert_eq!(
            off.validations_cached, 0,
            "{what}: cache off but hits counted"
        );
    }
}
