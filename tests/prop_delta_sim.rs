//! Delta-compiled simulation ≡ fresh compilation, property-tested.
//!
//! The delta path (`Simulator::from_base_with_patch`) recompiles only the
//! devices a patch touches and re-establishes sessions only where
//! establishment can change. Its contract is **field-for-field equality**
//! with `Simulator::new` on the patched configuration — including the
//! derivation arena, whose content-addressed node list is equal exactly
//! when both builds intern the same derivations in the same order.
//!
//! The property is exercised over random Table-1 fault injections (all
//! nine fault classes supply the base configurations) crossed with random
//! follow-up patches that deliberately include session-shaping edits
//! (peer AS rewrites, `network` originations, deletes at arbitrary
//! positions) — the delta classifier's hardest cases.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr::prelude::*;
use acr::workloads::{try_inject, GeneratedNetwork, TABLE1};
use acr_sim::CompiledBase;
use proptest::prelude::{any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};

fn wan() -> GeneratedNetwork {
    generate(&acr::topo::gen::wan(3, 4))
}

/// Materializes one edit against `cfg` from raw fuzz inputs. Beyond the
/// benign inserts the incremental-verification proptests use, this
/// includes the session-shaping shapes (peer AS rewrites) and deletes at
/// arbitrary positions that drive the delta classifier's Structural path.
fn edit_from(cfg: &NetworkConfig, ri: usize, pos: u16, kind: u8) -> Edit {
    let routers = cfg.routers();
    let router = routers[ri % routers.len()];
    let len = cfg.device(router).unwrap().len();
    match kind % 5 {
        0 => Edit::Delete {
            router,
            index: pos as usize % len,
        },
        1 => Edit::Insert {
            router,
            index: len,
            stmt: Stmt::StaticRoute {
                prefix: Prefix::from_octets(10, (pos % 200) as u8, 0, 0, 16),
                next_hop: acr::cfg::NextHop::Null0,
            },
        },
        2 => Edit::Replace {
            router,
            index: pos as usize % len,
            stmt: Stmt::PeerAs {
                peer: acr::cfg::PeerRef::Ip(acr::net_types::Ipv4Addr::new(
                    172,
                    16,
                    0,
                    (pos % 20) as u8 + 1,
                )),
                asn: Asn(65000 + u32::from(pos % 7)),
            },
        },
        3 => Edit::Insert {
            router,
            index: len,
            stmt: Stmt::Network(Prefix::from_octets(10, (pos % 200) as u8, 0, 0, 16)),
        },
        _ => Edit::Replace {
            router,
            index: pos as usize % len,
            stmt: Stmt::Remark("mutated".into()),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `from_base_with_patch` produces a `SimOutcome` field-for-field
    /// equal to a fresh `Simulator::new` on the patched configuration —
    /// arena included — for random injected bases × random patches.
    #[test]
    fn delta_build_equals_fresh_build(
        fi in any::<usize>(),
        seed in 0u64..64,
        ri in any::<usize>(),
        pos in any::<u16>(),
        kind in any::<u8>(),
        ri2 in any::<usize>(),
        pos2 in any::<u16>(),
        kind2 in any::<u8>(),
        two_edits in any::<bool>(),
    ) {
        let net = wan();
        // Base: a Table-1 incident (any of the nine fault classes), so the
        // delta path is tested from the configurations repair actually
        // starts from — not just healthy ones.
        let incident = try_inject(TABLE1[fi % TABLE1.len()].0, &net, seed);
        prop_assume!(incident.is_some());
        let base_cfg = incident.unwrap().broken;

        let mut patch = Patch::single(edit_from(&base_cfg, ri, pos, kind));
        if two_edits {
            // Indices are relative to the document-at-that-moment; build
            // the second edit against the intermediate config.
            let Ok(mid) = patch.apply_cloned(&base_cfg) else {
                prop_assume!(false);
                unreachable!()
            };
            patch.push(edit_from(&mid, ri2, pos2, kind2));
        }
        prop_assume!(patch.apply_cloned(&base_cfg).is_ok());
        let patched = patch.apply_cloned(&base_cfg).unwrap();

        let base = CompiledBase::new(&net.topo, &base_cfg);
        let fresh = Simulator::new(&net.topo, &patched);
        let delta = Simulator::from_base_with_patch(&base, &patched, &patch);

        prop_assert_eq!(fresh.universe(), delta.universe());
        prop_assert_eq!(fresh.sessions(), delta.sessions());
        prop_assert_eq!(fresh.session_diags(), delta.session_diags());
        prop_assert_eq!(fresh.run(), delta.run());
        prop_assert!(delta.build_stats().delta);
    }
}
