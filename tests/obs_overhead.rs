//! The disabled-instrumentation overhead guard.
//!
//! acr-obs promises that a disabled instrumentation site costs one
//! relaxed atomic load. This test holds that promise against the
//! simulation smoke path (one full `Simulator` build + run on the
//! standard 12-router WAN — the `bench_sim` workload): the measured
//! per-site disabled cost, multiplied by the number of instrumentation
//! events that path actually fires (counted from an enabled-metrics
//! run), must stay under 2% of the path's disabled wall time.
//!
//! The event count deliberately *over*states the site count — a
//! `Counter::add(n)` is one site but is counted `n` times via the
//! counter's value — so the guard is conservative.

use acr::obs::{self, metrics, metrics::Counter};
use acr::sim::Simulator;
use acr_workloads::generate;
use std::sync::Mutex;
use std::time::Instant;

static OBS_LOCK: Mutex<()> = Mutex::new(());

static PROBE: Counter = Counter::new("test.overhead.probe");

#[test]
fn disabled_instrumentation_stays_under_two_percent() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let net = generate(&acr::topo::gen::wan(4, 8));

    // Per-site disabled cost: a span open/drop plus a counter add, the
    // two shapes every pipeline hook takes.
    obs::disable_all();
    const REPS: u64 = 200_000;
    let t = Instant::now();
    for i in 0..REPS {
        let _s = obs::span!("overhead.probe", "test");
        PROBE.add(i & 1);
    }
    let per_site = t.elapsed().as_secs_f64() / REPS as f64;

    // How many instrumentation events the smoke path fires, from an
    // enabled-metrics run (counter values + histogram observations).
    obs::set_flags(obs::METRICS);
    metrics::reset();
    let sim = Simulator::new(&net.topo, &net.cfg);
    let _ = sim.run();
    let events: u64 = metrics::snapshot()
        .values()
        .map(|v| match v {
            metrics::MetricValue::Counter(n) | metrics::MetricValue::Gauge(n) => *n,
            metrics::MetricValue::Histogram { count, .. } => *count,
        })
        .sum();
    assert!(events > 0, "the sim path must be instrumented");
    obs::disable_all();

    // The smoke path's disabled wall time (best of a few reps, so a
    // scheduler hiccup cannot understate the budget).
    let wall = (0..5)
        .map(|_| {
            let t = Instant::now();
            let sim = Simulator::new(&net.topo, &net.cfg);
            let _ = sim.run();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    let overhead = per_site * events as f64;
    assert!(
        overhead < 0.02 * wall,
        "disabled instrumentation overhead {:.3}us ({events} events × {:.1}ns/site) \
         exceeds 2% of the {:.3}ms smoke path",
        overhead * 1e6,
        per_site * 1e9,
        wall * 1e3,
    );
}
