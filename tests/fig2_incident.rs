//! End-to-end reproduction of the paper's §5 worked example (Figure 2).
//!
//! The incident: with the `default_all` prefix lists on routers A and C
//! misconfigured to `0.0.0.0 0`, the new C–S session sets off route
//! flapping for `10.0/16`. The worked example then walks
//! localize–fix–validate through two iterations: adjust A's list
//! (suspiciousness 0.67 on its `peer S route-policy Override_All import`
//! line), observe the residual C–S problem, adjust C's list.

use acr::prelude::*;
use acr::workloads::fig2::{fig2_incident, DCN_PREFIX, POP_A_PREFIX, POP_B_PREFIX};
use acr_core::templates::{candidates_for_line, TemplateKind};
use acr_core::{ctx::RepairCtx, engine};
use acr_verify::Verifier;

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// Step 1 (Localize): Tarantula must score A's `peer <S> route-policy
/// Override_All import` line 0.67 — covered by the one failed test and
/// exactly one passed test — and rank it top.
#[test]
fn tarantula_scores_a_peer_policy_line_067() {
    let fig2 = fig2_incident();
    let verifier = Verifier::new(&fig2.topo, &fig2.spec);
    let (v, _) = verifier.run_full(&fig2.broken);
    assert_eq!(v.failed_count(), 1);
    assert_eq!(v.matrix.totals(), (2, 1), "two passed, one failed");

    let ranking = localize(&v.matrix, SbflFormula::Tarantula);
    // Find A's `peer 172.16.0.10 route-policy Override_All import` —
    // line 5 of A's config.
    let a_line = LineId::new(fig2.a, 5);
    let stmt = fig2.broken.stmt(a_line).unwrap().to_string();
    assert_eq!(
        stmt.trim(),
        "peer 172.16.0.10 route-policy Override_All import"
    );
    let score = ranking.score_of(a_line).expect("line must be ranked");
    assert!(
        (score - 2.0 / 3.0).abs() < 1e-9,
        "expected 0.67, got {score}"
    );
    // The paper's table scores router A's lines only ("we only show the
    // results for router A. … we can get the highest suspiciousness is
    // 0.67"): the line must be the maximum among A's lines.
    let a_max = ranking
        .entries()
        .iter()
        .filter(|(l, _)| l.router == fig2.a)
        .map(|(_, s)| *s)
        .fold(0.0f64, f64::max);
    assert!(
        (score - a_max).abs() < 1e-12,
        "A's max is {a_max}, line scored {score}"
    );
}

/// Step 2 (Fix): the prefix-list template on the suspicious line solves
/// `P ∧ ¬F` to exactly `{10.70/16, 20.0/16}` — the paper's `var`.
#[test]
fn symbolization_solves_the_papers_var() {
    let fig2 = fig2_incident();
    let verifier = Verifier::new(&fig2.topo, &fig2.spec);
    let (v, out) = verifier.run_full(&fig2.broken);
    let models = engine::models_of(&fig2.topo, &fig2.broken);
    let ctx = RepairCtx {
        topo: &fig2.topo,
        cfg: &fig2.broken,
        verification: &v,
        arena: &out.arena,
        models: &models,
    };
    let a_line = LineId::new(fig2.a, 5);
    let fixes = candidates_for_line(a_line, &ctx);
    let pl_fix = fixes
        .iter()
        .find(|f| f.template == TemplateKind::PrefixListAdjust)
        .expect("prefix-list template must fire");
    // The patch deletes `permit 0.0.0.0 0` and inserts permits for
    // exactly 10.70/16 and 20.0/16.
    let patched = pl_fix.patch.apply_cloned(&fig2.broken).unwrap();
    let text = patched.device(fig2.a).unwrap().to_text();
    assert!(
        text.contains("ip prefix-list default_all index 10 permit 10.70.0.0 16"),
        "{text}"
    );
    assert!(
        text.contains("ip prefix-list default_all index 20 permit 20.0.0.0 16"),
        "{text}"
    );
    assert!(!text.contains("permit 0.0.0.0 0"), "{text}");
}

/// Step 3 (Validate): fixing A alone does not clear the violation — the
/// C–S interaction keeps `10.0/16` broken (fitness stays 1, the candidate
/// is preserved), exactly the paper's first-iteration outcome.
#[test]
fn fixing_a_alone_leaves_the_violation() {
    let fig2 = fig2_incident();
    // Apply only A's half of the intended repair.
    let mut half = fig2.broken.clone();
    let a_fixed = fig2.intended.device(fig2.a).unwrap().clone();
    half.insert(fig2.a, a_fixed);

    let verifier = Verifier::new(&fig2.topo, &fig2.spec);
    let (v, _) = verifier.run_full(&half);
    assert_eq!(v.failed_count(), 1, "still exactly one failed case");
    let failure = v.failures().next().unwrap();
    assert_eq!(failure.property, "PoPB");
    // Our synchronous dynamics report the residual C–S pathology as
    // continued instability (the paper's DNA snapshot reports it as a
    // C–S forwarding loop); either way the same single case stays failed.
    assert!(
        matches!(
            failure.violation,
            Some(Violation::Flapping(_)) | Some(Violation::ForwardingLoop(_))
        ),
        "{:?}",
        failure.violation
    );
}

/// Iteration 2: on the A-fixed network, C's `peer <S> route-policy
/// Override_All import` line scores 0.5 (the paper's reported value) and
/// its prefix-list fix clears everything.
#[test]
fn second_iteration_localizes_c_at_05() {
    let fig2 = fig2_incident();
    let mut half = fig2.broken.clone();
    half.insert(fig2.a, fig2.intended.device(fig2.a).unwrap().clone());

    let verifier = Verifier::new(&fig2.topo, &fig2.spec);
    let (v, out) = verifier.run_full(&half);
    let ranking = localize(&v.matrix, SbflFormula::Tarantula);
    // C's peer-policy application line is line 5 of C's config.
    let c_line = LineId::new(fig2.c, 5);
    let stmt = half.stmt(c_line).unwrap().to_string();
    assert_eq!(
        stmt.trim(),
        "peer 172.16.0.14 route-policy Override_All import"
    );
    let score = ranking.score_of(c_line).expect("ranked");
    assert!((score - 0.5).abs() < 1e-9, "paper reports 0.5, got {score}");

    // Its template repairs C; the whole network then verifies clean.
    let models = engine::models_of(&fig2.topo, &half);
    let ctx = RepairCtx {
        topo: &fig2.topo,
        cfg: &half,
        verification: &v,
        arena: &out.arena,
        models: &models,
    };
    let fixes = candidates_for_line(c_line, &ctx);
    let pl_fix = fixes
        .iter()
        .find(|f| f.template == TemplateKind::PrefixListAdjust)
        .expect("prefix-list template must fire on C");
    let repaired = pl_fix.patch.apply_cloned(&half).unwrap();
    let (v2, _) = verifier.run_full(&repaired);
    assert!(
        v2.all_passed(),
        "{:?}",
        v2.failures()
            .map(|r| (&r.property, &r.violation))
            .collect::<Vec<_>>()
    );
}

/// The full engine run, restricted to the paper's repair style
/// (prefix-list adjustment): localize–fix–validate repairs the incident
/// end-to-end, editing both A and C — the canonical two-iteration repair.
#[test]
fn repair_engine_fixes_fig2_end_to_end() {
    let fig2 = fig2_incident();
    let engine = RepairEngine::new(
        &fig2.topo,
        &fig2.spec,
        RepairConfig {
            strategy: Strategy::brute_force(),
            allowed_templates: Some(vec![TemplateKind::PrefixListAdjust]),
            ..RepairConfig::default()
        },
    );
    let report = engine.repair(&fig2.broken);
    assert_eq!(report.initial_failed, 1);
    let RepairOutcome::Fixed { patch, repaired } = &report.outcome else {
        panic!(
            "must fix: {:?} after {} iterations",
            report.outcome,
            report.iteration_count()
        );
    };
    // The repair edits prefix lists on the faulty routers only (A and/or
    // C — in our reproduction C's fix alone is already feasible, because
    // once C stops laundering S's echoes, A's own AS-path check contains
    // its half of the fault; the paper's two-device repair is walked
    // through step by step in the tests above).
    let mut routers = patch.routers();
    routers.sort();
    assert!(
        !routers.is_empty() && routers.iter().all(|r| *r == fig2.a || *r == fig2.c),
        "patch: {patch}"
    );
    assert!(
        routers.contains(&fig2.c),
        "C's list is the load-bearing fix: {patch}"
    );
    // The repaired network holds every intent, with no flapping.
    let verifier = Verifier::new(&fig2.topo, &fig2.spec);
    let (v, out) = verifier.run_full(repaired);
    assert!(v.all_passed());
    assert!(out.flapping().is_empty());
    // And each customer prefix is reachable in the data plane.
    for (dst, start) in [
        (POP_A_PREFIX, fig2.s),
        (POP_B_PREFIX, fig2.s),
        (DCN_PREFIX, fig2.b),
    ] {
        let sim = Simulator::new(&fig2.topo, repaired);
        let mut o = sim.run();
        let flow = Flow::ip(Ipv4Addr::new(99, 0, 0, 1), p(dst).host(1));
        let res = sim.forward(&mut o, start, &flow);
        assert!(
            res.outcome.is_delivered(),
            "{dst} from {start}: {}",
            res.outcome
        );
    }
}

/// The genetic strategy also repairs the incident (possibly along a
/// different path through the search space).
#[test]
fn genetic_strategy_also_fixes_fig2() {
    let fig2 = fig2_incident();
    let engine = RepairEngine::new(
        &fig2.topo,
        &fig2.spec,
        RepairConfig {
            strategy: Strategy::default(),
            seed: 3,
            ..RepairConfig::default()
        },
    );
    let report = engine.repair(&fig2.broken);
    assert!(
        report.outcome.is_fixed(),
        "genetic run failed after {} iterations: {:?}",
        report.iteration_count(),
        report.outcome
    );
}

/// Unrestricted, the engine may discover a *smaller* feasible update than
/// the paper's: the three intents never require the A–S or C–S sessions,
/// so tearing one down also clears every violation. The spec — not the
/// engine — is what makes a repair "the" repair; this test documents the
/// alternative and checks it really does verify clean.
#[test]
fn unrestricted_engine_finds_some_feasible_update() {
    let fig2 = fig2_incident();
    let engine = RepairEngine::new(
        &fig2.topo,
        &fig2.spec,
        RepairConfig {
            strategy: Strategy::brute_force(),
            ..RepairConfig::default()
        },
    );
    let report = engine.repair(&fig2.broken);
    let RepairOutcome::Fixed { repaired, .. } = &report.outcome else {
        panic!("{:?}", report.outcome);
    };
    let verifier = Verifier::new(&fig2.topo, &fig2.spec);
    let (v, out) = verifier.run_full(repaired);
    assert!(v.all_passed());
    assert!(out.flapping().is_empty());
}
