//! Sharded convergence ≡ unsharded sparse engine, property-tested.
//!
//! The sharded runner (`acr-sim`'s `shard` module) partitions the prefix
//! universe round-robin across workers, runs one dirty-set sparse engine
//! per shard into a private arena and policy memo, then joins the workers
//! deterministically: created arena ranges replay node-by-node in global
//! sorted order through the main arena, and worker memos are absorbed
//! with remapped derivation ids. Its contract is **byte-for-byte
//! equality** with the unsharded sparse engine — outcome maps, the
//! derivation arena's content-addressed node order, and every work
//! counter except the `sharded_*` accounting fields — for *any* worker
//! count, including widths larger than the prefix universe.
//!
//! The property is exercised over random WAN sizes × random Table-1
//! fault injections × random follow-up patches (the same adversarial
//! surface `prop_sparse_sim` drives), with a shard-count sweep covering
//! the degenerate single-worker shape, a mid split, and one-prefix-per-
//! worker.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr::prelude::*;
use acr::workloads::{try_inject, GeneratedNetwork, TABLE1};
use acr_sim::{ConvergeEngine, ConvergeWork, DerivArena, RunOptions, ShardMode};
use proptest::prelude::{any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
use std::collections::BTreeMap;

fn wan(shape: usize) -> GeneratedNetwork {
    // Three small WAN shapes keep case runtime bounded while varying the
    // prefix universe (and hence the shard partitions) across cases.
    let (bb, cust) = [(2, 3), (3, 4), (4, 5)][shape % 3];
    generate(&acr::topo::gen::wan(bb, cust))
}

/// One edit against `cfg` from raw fuzz inputs — the same shapes
/// `prop_sparse_sim` uses, so sharding is tested on exactly the
/// configurations the repair loop simulates.
fn edit_from(cfg: &NetworkConfig, ri: usize, pos: u16, kind: u8) -> Edit {
    let routers = cfg.routers();
    let router = routers[ri % routers.len()];
    let len = cfg.device(router).unwrap().len();
    match kind % 4 {
        0 => Edit::Delete {
            router,
            index: pos as usize % len,
        },
        1 => Edit::Insert {
            router,
            index: len,
            stmt: Stmt::StaticRoute {
                prefix: Prefix::from_octets(10, (pos % 200) as u8, 0, 0, 16),
                next_hop: acr::cfg::NextHop::Null0,
            },
        },
        2 => Edit::Insert {
            router,
            index: len,
            stmt: Stmt::Network(Prefix::from_octets(10, (pos % 200) as u8, 0, 0, 16)),
        },
        _ => Edit::Replace {
            router,
            index: pos as usize % len,
            stmt: Stmt::Remark("mutated".into()),
        },
    }
}

/// Runs the full prefix universe under the sparse engine with an explicit
/// shard mode into a fresh arena, returning (outcomes, arena, work).
fn run_shard(
    sim: &Simulator,
    shard: ShardMode,
) -> (
    BTreeMap<Prefix, acr_sim::PrefixOutcome>,
    DerivArena,
    ConvergeWork,
) {
    let mut arena = DerivArena::new();
    let opts = RunOptions {
        engine: ConvergeEngine::Sparse,
        warm: None,
        shard,
    };
    let (outcomes, work) = sim.run_prefixes_opts(&sim.universe(), &mut arena, &opts);
    (outcomes, arena, work)
}

/// Every work counter except the `sharded_*` accounting pair must match:
/// memo keys embed the prefix, so a private per-worker memo can never
/// lose a hit the shared unsharded memo would have earned.
fn assert_same_work(base: &ConvergeWork, sharded: &ConvergeWork) -> Result<(), String> {
    let pairs = [
        ("prefixes", base.prefixes, sharded.prefixes),
        ("rounds", base.rounds, sharded.rounds),
        (
            "recomputed_routers",
            base.recomputed_routers,
            sharded.recomputed_routers,
        ),
        (
            "skipped_routers",
            base.skipped_routers,
            sharded.skipped_routers,
        ),
        ("policy_evals", base.policy_evals, sharded.policy_evals),
        ("memo_hits", base.memo_hits, sharded.memo_hits),
    ];
    for (name, b, s) in pairs {
        if b != s {
            return Err(format!("{name}: unsharded {b} != sharded {s}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded and unsharded sparse runs agree byte-for-byte — outcome
    /// maps, derivation arenas (content *and* intern order), and work
    /// counters — across worker counts {1, 2, n_prefixes} on random
    /// WAN shapes × Table-1 faults × follow-up patches.
    #[test]
    fn sharded_run_equals_unsharded_run(
        shape in any::<usize>(),
        fi in any::<usize>(),
        seed in 0u64..48,
        ri in any::<usize>(),
        pos in any::<u16>(),
        kind in any::<u8>(),
    ) {
        let net = wan(shape);
        let incident = try_inject(TABLE1[fi % TABLE1.len()].0, &net, seed);
        prop_assume!(incident.is_some());
        let base_cfg = incident.unwrap().broken;

        let patch = Patch::single(edit_from(&base_cfg, ri, pos, kind));
        prop_assume!(patch.apply_cloned(&base_cfg).is_ok());
        let patched = patch.apply_cloned(&base_cfg).unwrap();

        let sim = Simulator::new(&net.topo, &patched);
        let n_prefixes = sim.universe().len();
        prop_assume!(n_prefixes > 1);

        let (base, base_arena, base_work) = run_shard(&sim, ShardMode::Off);

        for workers in [1, 2, n_prefixes] {
            let (sharded, sharded_arena, sharded_work) =
                run_shard(&sim, ShardMode::Workers(workers));
            prop_assert_eq!(&base, &sharded, "outcomes diverged at {} workers", workers);
            // Arena equality covers both content and intern *order*: the
            // node list is content-addressed, so equal vectors mean the
            // join replayed derivations in exactly the unsharded sequence.
            prop_assert_eq!(
                &base_arena,
                &sharded_arena,
                "arena diverged at {} workers",
                workers
            );
            if let Err(msg) = assert_same_work(&base_work, &sharded_work) {
                prop_assert!(false, "work diverged at {} workers: {}", workers, msg);
            }
            // The sharded run must also account for itself.
            prop_assert_eq!(sharded_work.sharded_runs, 1);
            prop_assert_eq!(sharded_work.sharded_prefixes, n_prefixes as u64);
            prop_assert_eq!(base_work.sharded_runs, 0);
        }
    }
}

/// Worker counts far beyond the prefix universe leave some shards empty;
/// the join must still replay the populated shards in global prefix
/// order and produce the identical arena.
#[test]
fn oversubscribed_workers_are_byte_identical() {
    let net = generate(&acr::topo::gen::wan(3, 4));
    let sim = Simulator::new(&net.topo, &net.cfg);
    let n = sim.universe().len();
    assert!(n > 1, "wan(3,4) must expose a multi-prefix universe");

    let (base, base_arena, base_work) = run_shard(&sim, ShardMode::Off);
    for workers in [n + 1, 4 * n, 256] {
        let (sharded, sharded_arena, sharded_work) = run_shard(&sim, ShardMode::Workers(workers));
        assert_eq!(base, sharded, "outcomes diverged at {workers} workers");
        assert_eq!(
            base_arena, sharded_arena,
            "arena diverged at {workers} workers"
        );
        assert_same_work(&base_work, &sharded_work)
            .unwrap_or_else(|msg| panic!("work diverged at {workers} workers: {msg}"));
        assert_eq!(sharded_work.sharded_prefixes, n as u64);
    }
}
