//! End-to-end guarantees of the acr-obs subsystem on real repairs.
//!
//! Three contracts (see `acr-obs`'s crate docs):
//!
//! - **journal determinism** — journals are byte-identical across
//!   identical runs after timestamp scrubbing, and identical outside the
//!   `run_start` config line across worker-thread counts and the delta
//!   toggle (emission is coordinator-side, in iteration/candidate-index
//!   order);
//! - **trace canonicality** — the canonical (timestamp/tid-scrubbed,
//!   sorted) span list is stable across repeat runs, and the full export
//!   is loadable Chrome trace-event JSON;
//! - **transparency** — repair reports are identical with every facility
//!   enabled and with everything off: instrumentation records, never
//!   decides.
//!
//! Obs state is process-global, so every test serializes on one lock and
//! leaves the facilities disabled on exit.

use acr::obs::{self, journal, json, trace};
use acr::prelude::*;
use acr_core::{RepairReport, SimCache};
use std::sync::{Arc, Mutex};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn repair_fig2(threads: usize, delta: bool) -> RepairReport {
    let fig2 = acr::workloads::fig2::fig2_incident();
    let engine = RepairEngine::new(
        &fig2.topo,
        &fig2.spec,
        RepairConfig {
            seed: 7,
            threads,
            delta,
            cache: Some(Arc::new(SimCache::default())),
            ..RepairConfig::default()
        },
    );
    engine.repair(&fig2.broken)
}

/// Everything observable about a report, for on/off comparison.
fn signature(r: &RepairReport) -> String {
    let outcome = match &r.outcome {
        RepairOutcome::Fixed { patch, repaired } => {
            format!("fixed {patch} fp={}", repaired.fingerprint())
        }
        RepairOutcome::NoCandidates {
            best_patch,
            best_fitness,
        } => format!("no_candidates {best_fitness} {best_patch}"),
        RepairOutcome::IterationLimit {
            best_patch,
            best_fitness,
        } => format!("iteration_limit {best_fitness} {best_patch}"),
    };
    format!(
        "{outcome} | init={} v={} vc={} | {:?}",
        r.initial_failed, r.validations, r.validations_cached, r.iterations
    )
}

/// A scrubbed journal with the config-bearing `run_start` line dropped —
/// the portion that must agree across configurations.
fn body(scrubbed: &str) -> String {
    scrubbed
        .lines()
        .filter(|l| !l.contains("\"event\":\"run_start\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn journal_is_deterministic_across_threads_and_delta() {
    let _g = lock();
    obs::set_flags(obs::JOURNAL);
    let mut bodies: Vec<(String, String)> = Vec::new();
    for threads in [1usize, 4, 8] {
        for delta in [true, false] {
            let label = format!("threads={threads}, delta={delta}");
            journal::capture_to_memory();
            let a = repair_fig2(threads, delta);
            let raw_a = journal::take_captured();
            journal::capture_to_memory();
            let b = repair_fig2(threads, delta);
            let raw_b = journal::take_captured();
            assert!(!raw_a.is_empty(), "{label}: journal must not be empty");
            let scrubbed = journal::scrub_timestamps(&raw_a);
            assert_eq!(
                scrubbed,
                journal::scrub_timestamps(&raw_b),
                "{label}: identical runs must journal byte-identically"
            );
            assert_eq!(
                signature(&a),
                signature(&b),
                "{label}: repeat runs diverged"
            );
            // Every line is valid JSON with an event; run_start stamps
            // the schema version.
            for line in raw_a.lines() {
                let v = json::parse(line).expect("journal line must parse");
                let event = v.get("event").and_then(|e| e.as_str()).unwrap();
                if event == "run_start" {
                    assert_eq!(
                        v.get("schema").and_then(|s| s.as_str()),
                        Some(journal::SCHEMA)
                    );
                }
            }
            bodies.push((label, body(&scrubbed)));
        }
    }
    // Outside run_start, the journal does not depend on the thread count
    // or the delta toggle.
    for (label, b) in &bodies[1..] {
        assert_eq!(
            b, &bodies[0].1,
            "journal body diverged between {} and {label}",
            bodies[0].0
        );
    }
    obs::disable_all();
}

#[test]
fn trace_is_canonical_and_loadable() {
    let _g = lock();
    obs::set_flags(obs::TRACE);
    let _ = trace::take();
    let a = repair_fig2(4, true);
    let canon_a = trace::canonical();
    assert!(
        !canon_a.is_empty(),
        "an instrumented repair must emit spans"
    );
    // The export (before draining) is loadable Chrome trace-event JSON.
    let doc = trace::export_chrome();
    let v = json::parse(&doc).expect("chrome trace must parse");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), canon_a.len());
    for e in events {
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert!(e.get("ts").unwrap().as_num().is_some());
        assert!(e.get("dur").unwrap().as_num().is_some());
        assert!(e.get("tid").unwrap().as_num().unwrap() >= 1.0);
    }
    let _ = trace::take();
    let b = repair_fig2(4, true);
    let canon_b = trace::canonical();
    assert_eq!(
        canon_a, canon_b,
        "canonical trace must be stable across identical runs"
    );
    assert_eq!(signature(&a), signature(&b));
    let _ = trace::take();
    obs::disable_all();
}

#[test]
fn instrumentation_never_changes_a_repair() {
    let _g = lock();
    for threads in [1usize, 4] {
        obs::set_flags(obs::ALL);
        journal::capture_to_memory();
        let on = repair_fig2(threads, true);
        let _ = journal::take_captured();
        let _ = trace::take();
        obs::disable_all();
        let off = repair_fig2(threads, true);
        assert_eq!(
            signature(&on),
            signature(&off),
            "threads={threads}: obs on vs off changed the repair"
        );
        assert!(on.outcome.is_fixed(), "fig2 must be repairable");
    }
}

/// Journal byte-identity for the *multi-patch beam* path: a composed
/// multi-fault scenario repaired with `Strategy::beam` must journal
/// byte-identically (after timestamp scrubbing) across repeat runs, and
/// identically outside `run_start` across worker-thread counts and the
/// delta toggle — including the v2 fields this path exercises hardest
/// (per-candidate `segments` counts, `run_end` attribution and tags).
#[test]
fn beam_journal_is_deterministic_and_carries_attribution() {
    let _g = lock();
    obs::set_flags(obs::JOURNAL);
    let net = acr::workloads::generate(&acr::topo::gen::wan(4, 8));
    let scenario = acr::scenarios::corpus(&net, 1, 2024)
        .into_iter()
        .next()
        .expect("corpus is non-empty");
    let spec = scenario.visible_spec(&net.spec);
    let run = |threads: usize, delta: bool| {
        let engine = RepairEngine::new(
            &net.topo,
            &spec,
            RepairConfig {
                seed: 11,
                threads,
                delta,
                strategy: acr::core::Strategy::beam(),
                cache: Some(Arc::new(SimCache::default())),
                tags: scenario.tags(),
                ..RepairConfig::default()
            },
        );
        engine.repair(&scenario.broken)
    };
    let mut bodies: Vec<(String, String)> = Vec::new();
    for threads in [1usize, 4, 8] {
        for delta in [true, false] {
            let label = format!("threads={threads}, delta={delta}");
            journal::capture_to_memory();
            let a = run(threads, delta);
            let raw_a = journal::take_captured();
            journal::capture_to_memory();
            let b = run(threads, delta);
            let raw_b = journal::take_captured();
            assert!(!raw_a.is_empty(), "{label}: journal must not be empty");
            assert_eq!(
                journal::scrub_timestamps(&raw_a),
                journal::scrub_timestamps(&raw_b),
                "{label}: identical beam runs must journal byte-identically"
            );
            assert_eq!(signature(&a), signature(&b), "{label}: repeat diverged");
            // The run_end line carries the attribution array and the
            // scenario tags.
            let run_end = raw_a
                .lines()
                .find(|l| l.contains("\"event\":\"run_end\""))
                .expect("journal has a run_end");
            let v = json::parse(run_end).expect("run_end parses");
            assert!(v.get("attribution").and_then(|a| a.as_arr()).is_some());
            let tags = v.get("tags").and_then(|t| t.as_arr()).unwrap();
            assert!(
                tags.iter()
                    .any(|t| t.as_str() == Some(&format!("family:{}", scenario.family.tag()))),
                "{label}: family tag missing from journal"
            );
            bodies.push((label, body(&journal::scrub_timestamps(&raw_a))));
        }
    }
    for (label, b) in &bodies[1..] {
        assert_eq!(
            b, &bodies[0].1,
            "beam journal body diverged between {} and {label}",
            bodies[0].0
        );
    }
    obs::disable_all();
}
