//! Sparse worklist convergence ≡ dense reference engine, property-tested.
//!
//! The sparse engine (`run_prefix_sparse`) recomputes a router only when
//! a session neighbor's best route changed, memoizes policy transfers,
//! and detects cycles through an incrementally maintained state hash. Its
//! contract is **field-for-field equality** with the dense engine on
//! every prefix outcome — bests, rejection derivations, round counts,
//! flap periods — *and* on the derivation arena, whose content-addressed
//! node list is equal exactly when both engines intern the same
//! derivations in the same order.
//!
//! The property is exercised over random Table-1 fault injections (all
//! nine fault classes) crossed with random follow-up patches that include
//! session-shaping edits — the same adversarial surface `prop_delta_sim`
//! drives the delta compiler with. A dedicated case pins the Figure 2
//! flapping incident: the oscillation fingerprint (`first_seen_round`,
//! `cycle_len`, observed routes) must be identical under both engines.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr::prelude::*;
use acr::workloads::{fig2_incident, try_inject, GeneratedNetwork, TABLE1};
use acr_sim::{ConvergeEngine, DerivArena, PrefixOutcome, RunOptions, ShardMode};
use proptest::prelude::{any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};

fn wan() -> GeneratedNetwork {
    generate(&acr::topo::gen::wan(3, 4))
}

/// Materializes one edit against `cfg` from raw fuzz inputs — the same
/// shapes `prop_delta_sim` uses, session-shaping edits included, so the
/// sparse engine is tested on exactly the configurations the repair loop
/// simulates.
fn edit_from(cfg: &NetworkConfig, ri: usize, pos: u16, kind: u8) -> Edit {
    let routers = cfg.routers();
    let router = routers[ri % routers.len()];
    let len = cfg.device(router).unwrap().len();
    match kind % 5 {
        0 => Edit::Delete {
            router,
            index: pos as usize % len,
        },
        1 => Edit::Insert {
            router,
            index: len,
            stmt: Stmt::StaticRoute {
                prefix: Prefix::from_octets(10, (pos % 200) as u8, 0, 0, 16),
                next_hop: acr::cfg::NextHop::Null0,
            },
        },
        2 => Edit::Replace {
            router,
            index: pos as usize % len,
            stmt: Stmt::PeerAs {
                peer: acr::cfg::PeerRef::Ip(acr::net_types::Ipv4Addr::new(
                    172,
                    16,
                    0,
                    (pos % 20) as u8 + 1,
                )),
                asn: Asn(65000 + u32::from(pos % 7)),
            },
        },
        3 => Edit::Insert {
            router,
            index: len,
            stmt: Stmt::Network(Prefix::from_octets(10, (pos % 200) as u8, 0, 0, 16)),
        },
        _ => Edit::Replace {
            router,
            index: pos as usize % len,
            stmt: Stmt::Remark("mutated".into()),
        },
    }
}

/// Runs every prefix of `sim`'s universe under one explicit engine into a
/// fresh arena, returning (outcomes, arena, work).
fn run_engine(
    sim: &Simulator,
    engine: ConvergeEngine,
) -> (
    std::collections::BTreeMap<Prefix, acr_sim::PrefixOutcome>,
    DerivArena,
    acr_sim::ConvergeWork,
) {
    let mut arena = DerivArena::new();
    let opts = RunOptions {
        engine,
        warm: None,
        shard: ShardMode::Off,
    };
    let (outcomes, work) = sim.run_prefixes_opts(&sim.universe(), &mut arena, &opts);
    (outcomes, arena, work)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse and dense engines agree field-for-field — outcome maps
    /// (bests, rejections, rounds, flap fingerprints) and derivation
    /// arenas — for random injected bases × random follow-up patches,
    /// while the sparse engine never does more per-router work.
    #[test]
    fn sparse_engine_equals_dense_engine(
        fi in any::<usize>(),
        seed in 0u64..64,
        ri in any::<usize>(),
        pos in any::<u16>(),
        kind in any::<u8>(),
        ri2 in any::<usize>(),
        pos2 in any::<u16>(),
        kind2 in any::<u8>(),
        two_edits in any::<bool>(),
    ) {
        let net = wan();
        // Base: a Table-1 incident (any of the nine fault classes), so
        // equivalence is checked on the configurations repair actually
        // simulates — broken ones — not just healthy networks.
        let incident = try_inject(TABLE1[fi % TABLE1.len()].0, &net, seed);
        prop_assume!(incident.is_some());
        let base_cfg = incident.unwrap().broken;

        let mut patch = Patch::single(edit_from(&base_cfg, ri, pos, kind));
        if two_edits {
            let Ok(mid) = patch.apply_cloned(&base_cfg) else {
                prop_assume!(false);
                unreachable!()
            };
            patch.push(edit_from(&mid, ri2, pos2, kind2));
        }
        prop_assume!(patch.apply_cloned(&base_cfg).is_ok());
        let patched = patch.apply_cloned(&base_cfg).unwrap();

        let sim = Simulator::new(&net.topo, &patched);
        let (dense, dense_arena, dense_work) = run_engine(&sim, ConvergeEngine::Dense);
        let (sparse, sparse_arena, sparse_work) = run_engine(&sim, ConvergeEngine::Sparse);

        prop_assert_eq!(&dense, &sparse);
        prop_assert_eq!(&dense_arena, &sparse_arena);
        // Identical trajectories ⇒ identical round counts; the sparse
        // engine may only *skip* router recomputations, never add any.
        prop_assert_eq!(dense_work.rounds, sparse_work.rounds);
        prop_assert!(sparse_work.recomputed_routers <= dense_work.recomputed_routers);
        prop_assert!(sparse_work.policy_evals <= dense_work.policy_evals);
        prop_assert_eq!(
            sparse_work.recomputed_routers + sparse_work.skipped_routers,
            dense_work.recomputed_routers
        );
    }
}

/// The Figure 2 incident oscillates: the sparse engine must report the
/// *same* oscillation — same `first_seen_round`, same `cycle_len`, same
/// observed route sets, same rejections — not merely "also flapping".
#[test]
fn fig2_flap_fingerprint_is_engine_invariant() {
    let fig2 = fig2_incident();
    let sim = Simulator::new(&fig2.topo, &fig2.broken);
    let (dense, dense_arena, _) = run_engine(&sim, ConvergeEngine::Dense);
    let (sparse, sparse_arena, sparse_work) = run_engine(&sim, ConvergeEngine::Sparse);

    let flap_prefix: Prefix = acr::workloads::fig2::POP_B_PREFIX.parse().unwrap();
    match (&dense[&flap_prefix], &sparse[&flap_prefix]) {
        (
            PrefixOutcome::Flapping {
                first_seen_round: fd,
                cycle_len: cd,
                observed: od,
                rejections: rd,
            },
            PrefixOutcome::Flapping {
                first_seen_round: fs,
                cycle_len: cs,
                observed: os,
                rejections: rs,
            },
        ) => {
            assert_eq!(fd, fs, "first_seen_round");
            assert_eq!(cd, cs, "cycle_len");
            assert_eq!(od, os, "observed routes");
            assert_eq!(rd, rs, "rejections");
        }
        (d, s) => panic!("PoP-B must flap under both engines, got {d:?} / {s:?}"),
    }
    assert_eq!(dense, sparse);
    assert_eq!(dense_arena, sparse_arena);
    // A flap revisits states, so the memo must be earning hits here.
    assert!(sparse_work.memo_hits > 0, "flap rounds must hit the memo");
}
