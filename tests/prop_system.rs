//! System-level property tests spanning the whole stack.
//!
//! The two most load-bearing invariants:
//!
//! 1. **Incremental ≡ full**: for any single-edit patch on a generated
//!    network, the DNA-style incremental verifier and a from-scratch full
//!    verification agree on every verdict and every coverage set.
//! 2. **Simulator determinism and sanity**: repeated runs are identical;
//!    no converged best route ever carries its holder's own AS in the
//!    path unless a policy overwrote it.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr::prelude::*;
use acr::workloads::GeneratedNetwork;
use acr_sim::PrefixOutcome;
use acr_verify::Verifier;
use proptest::prelude::{any, prop_assert_eq, prop_assume, proptest, ProptestConfig};

fn wan() -> GeneratedNetwork {
    generate(&acr::topo::gen::wan(3, 4))
}

/// Materializes a single edit on the generated WAN from raw fuzz inputs.
fn edit_from(net: &GeneratedNetwork, ri: usize, pos: u16, kind: u8) -> Patch {
    let routers = net.cfg.routers();
    let router = routers[ri % routers.len()];
    let len = net.cfg.device(router).unwrap().len();
    match kind % 3 {
        0 => Patch::single(Edit::Delete {
            router,
            index: pos as usize % len,
        }),
        1 => Patch::single(Edit::Insert {
            router,
            index: len, // append keeps block contexts intact
            stmt: Stmt::StaticRoute {
                prefix: Prefix::from_octets(10, (pos % 200) as u8, 0, 0, 16),
                next_hop: acr::cfg::NextHop::Null0,
            },
        }),
        _ => Patch::single(Edit::Replace {
            router,
            index: pos as usize % len,
            stmt: Stmt::Remark("mutated".into()),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental candidate validation agrees with full verification on
    /// verdicts, violations and coverage — for arbitrary single edits,
    /// including ones that break parsing-level invariants semantically.
    #[test]
    fn incremental_equals_full(ri in any::<usize>(), pos in any::<u16>(), kind in any::<u8>()) {
        let net = wan();
        let patch = edit_from(&net, ri, pos, kind);
        prop_assume!(patch.apply_cloned(&net.cfg).is_ok());
        let candidate = patch.apply_cloned(&net.cfg).unwrap();

        let mut iv = IncrementalVerifier::new(&net.topo, &net.spec);
        iv.commit(&net.cfg);
        let v_inc = iv.verify_candidate(&candidate, &patch);

        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v_full, _) = verifier.run_full(&candidate);

        prop_assert_eq!(v_inc.failed_count(), v_full.failed_count());
        for (a, b) in v_inc.records.iter().zip(&v_full.records) {
            prop_assert_eq!(a.passed, b.passed, "test {}", a.id);
            prop_assert_eq!(&a.violation, &b.violation, "test {}", a.id);
            prop_assert_eq!(&a.path, &b.path, "test {}", a.id);
        }
        for (a, b) in v_inc.matrix.tests().iter().zip(v_full.matrix.tests()) {
            prop_assert_eq!(&a.lines, &b.lines, "coverage of {}", a.test);
        }
    }
}

/// The strategy above only varies through the deterministic runner; cover
/// real edit diversity with an explicit sweep over every statement of
/// every device (exhaustive single-deletes — slow-ish but decisive).
#[test]
fn incremental_equals_full_for_every_single_delete() {
    let net = wan();
    let verifier = Verifier::new(&net.topo, &net.spec);
    let mut checked = 0usize;
    for router in net.cfg.routers() {
        let len = net.cfg.device(router).unwrap().len();
        // Sample every third statement to keep runtime reasonable while
        // still crossing every block kind.
        for index in (0..len).step_by(3) {
            let patch = Patch::single(Edit::Delete { router, index });
            let Ok(candidate) = patch.apply_cloned(&net.cfg) else {
                continue;
            };
            let mut iv = IncrementalVerifier::new(&net.topo, &net.spec);
            iv.commit(&net.cfg);
            let v_inc = iv.verify_candidate(&candidate, &patch);
            let (v_full, _) = verifier.run_full(&candidate);
            assert_eq!(
                v_inc.failed_count(),
                v_full.failed_count(),
                "delete {router}@{index}"
            );
            for (a, b) in v_inc.records.iter().zip(&v_full.records) {
                assert_eq!(a.passed, b.passed, "delete {router}@{index}, test {}", a.id);
            }
            checked += 1;
        }
    }
    assert!(checked > 20, "swept {checked} deletions");
}

/// Two simulations of the same inputs are bit-identical in every
/// protocol-visible respect.
#[test]
fn simulation_is_deterministic() {
    let net = wan();
    let sim1 = Simulator::new(&net.topo, &net.cfg);
    let sim2 = Simulator::new(&net.topo, &net.cfg);
    let o1 = sim1.run();
    let o2 = sim2.run();
    assert_eq!(o1.outcomes.len(), o2.outcomes.len());
    for (p, a) in &o1.outcomes {
        let b = &o2.outcomes[p];
        match (a, b) {
            (
                PrefixOutcome::Converged {
                    best: ba,
                    rounds: ra,
                    ..
                },
                PrefixOutcome::Converged {
                    best: bb,
                    rounds: rb,
                    ..
                },
            ) => {
                assert_eq!(ra, rb, "{p}");
                let ka: Vec<_> = ba.iter().map(|r| r.as_ref().map(|r| r.key())).collect();
                let kb: Vec<_> = bb.iter().map(|r| r.as_ref().map(|r| r.key())).collect();
                assert_eq!(ka, kb, "{p}");
            }
            (
                PrefixOutcome::Flapping { cycle_len: ca, .. },
                PrefixOutcome::Flapping { cycle_len: cb, .. },
            ) => assert_eq!(ca, cb, "{p}"),
            _ => panic!("{p}: outcome kinds diverge"),
        }
    }
}

/// AS-path sanity: in a converged healthy WAN, no router holds a best
/// route whose path contains its own AS (no policy here overwrites, so
/// loop prevention must have filtered every echo).
#[test]
fn no_self_as_in_converged_paths_without_overwrite() {
    // Build a WAN variant whose backbones do NOT use overwrite policies:
    // distinct customer ASes, plain peering.
    let mut b = acr::topo::TopologyBuilder::new();
    let r0 = b.router("X0", Role::Backbone);
    let r1 = b.router("X1", Role::Backbone);
    let r2 = b.router("X2", Role::Backbone);
    b.link(r0, r1);
    b.link(r1, r2);
    b.attach(r0, "10.0.0.0/16".parse().unwrap());
    b.attach(r2, "10.2.0.0/16".parse().unwrap());
    let topo = b.build();
    let mut cfg = NetworkConfig::new();
    let texts = [
        "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n",
        "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
        "bgp 65002\n network 10.2.0.0 16\n peer 172.16.0.5 as-number 65001\n",
    ];
    for (r, t) in topo.routers().iter().zip(texts) {
        cfg.insert(
            r.id,
            acr::cfg::parse::parse_device(r.name.clone(), t).unwrap(),
        );
    }
    let sim = Simulator::new(&topo, &cfg);
    let out = sim.run();
    for (p, o) in &out.outcomes {
        let PrefixOutcome::Converged { best, .. } = o else {
            panic!("{p} must converge");
        };
        for (i, route) in best.iter().enumerate() {
            let Some(route) = route else { continue };
            let own = Asn(65000 + i as u32);
            assert!(
                !route.as_path.contains(own),
                "{p}: router {i} holds its own AS in {:?}",
                route.as_path
            );
        }
    }
}

/// Repairing a healthy network is the identity.
#[test]
fn repairing_healthy_network_is_noop() {
    let net = wan();
    let engine = RepairEngine::with_defaults(&net.topo, &net.spec);
    let report = engine.repair(&net.cfg);
    let RepairOutcome::Fixed { patch, repaired } = report.outcome else {
        panic!();
    };
    assert!(patch.is_empty());
    assert_eq!(repaired.fingerprint(), net.cfg.fingerprint());
    assert_eq!(report.validations, 0);
}
