//! End-to-end coverage of the richer intent kinds (waypoint / avoids),
//! the automatic test-suite generator, and operator-facing provenance.

use acr::prelude::*;
use acr::prov::Provenance;
use acr_verify::{coverage_guided_suite, derive_spec, PropertyKind, Verifier};

fn wan() -> acr::workloads::GeneratedNetwork {
    generate(&acr::topo::gen::wan(4, 4))
}

/// On the line backbone BB0–BB1–BB2–BB3, traffic from BB3's side to
/// BB0's prefix necessarily transits BB1 and BB2.
#[test]
fn waypoint_and_avoids_intents_judge_paths() {
    let net = wan();
    let bb0_prefix = net.topo.router(RouterId(0)).attached[0];
    let start = RouterId(3);
    let src = net.topo.router(start).attached[0];
    let hs = acr::net_types::HeaderSpace::between(src, bb0_prefix);

    let mk = |name: &str, kind: PropertyKind| acr_verify::Property {
        name: name.into(),
        hs: hs.clone(),
        start,
        kind,
    };
    let spec = Spec::new()
        .with(mk("via-bb1", PropertyKind::Waypoint(RouterId(1))))
        .with(mk("via-bb2", PropertyKind::Waypoint(RouterId(2))))
        .with(mk("avoid-bb1", PropertyKind::Avoids(RouterId(1))))
        .with(mk("avoid-unrelated", PropertyKind::Avoids(RouterId(5))));

    let verifier = Verifier::new(&net.topo, &spec);
    let (v, _) = verifier.run_full(&net.cfg);
    let verdicts: Vec<(String, bool)> = v
        .records
        .iter()
        .map(|r| (r.property.clone(), r.passed))
        .collect();
    assert_eq!(
        verdicts,
        vec![
            ("via-bb1".into(), true),
            ("via-bb2".into(), true),
            ("avoid-bb1".into(), false), // the line forces transit
            ("avoid-unrelated".into(), true),
        ],
        "{verdicts:?}"
    );
    let failure = v.failures().next().unwrap();
    assert!(matches!(
        failure.violation,
        Some(Violation::ForbiddenTransit(RouterId(1)))
    ));
}

/// The automatic (spec-free) test generator produces a suite that passes
/// on the intended configuration and catches an injected fault.
#[test]
fn derived_spec_catches_injected_faults() {
    let net = wan();
    let auto_spec = derive_spec(&net.topo, 40);
    assert!(auto_spec.len() >= 8);

    let verifier = Verifier::new(&net.topo, &auto_spec);
    let (v, _) = verifier.run_full(&net.cfg);
    assert!(
        v.all_passed(),
        "intended config must satisfy the derived spec"
    );

    // An injected incident (observable under the *generated* spec) is
    // also observable under the derived spec here. (This 4x4 WAN has one
    // customer per backbone, so no peer groups exist — use a policy
    // fault instead.)
    let incident = try_inject(FaultType::StaleRouteMap, &net, 0).unwrap();
    let (v, _) = verifier.run_full(&incident.broken);
    assert!(v.failed_count() >= 1);

    // And repair works against the derived spec, too.
    let engine = RepairEngine::with_defaults(&net.topo, &auto_spec);
    assert!(engine.repair(&incident.broken).outcome.is_fixed());
}

/// Coverage-guided suite growth reports sane statistics on a real
/// network.
#[test]
fn coverage_guided_growth_on_generated_network() {
    let net = wan();
    let auto_spec = derive_spec(&net.topo, 40);
    let stats = coverage_guided_suite(&net.topo, &net.cfg, &auto_spec, 8);
    assert!(stats.covered_lines > 0);
    assert!(stats.covered_lines <= stats.total_lines);
    // The generated configs include interface lines only reachable via
    // FIB provenance, so full coverage is not expected — but a healthy
    // majority is.
    assert!(
        stats.covered_lines * 2 > stats.total_lines,
        "{}/{} lines covered",
        stats.covered_lines,
        stats.total_lines
    );
}

/// Operator-facing provenance: a passing route explains back to its
/// origination; a failing record exposes negative-provenance leaves.
#[test]
fn provenance_explanations_reach_origins() {
    let net = wan();
    let incident = try_inject(FaultType::StaleRouteMap, &net, 1).unwrap();
    let verifier = Verifier::new(&net.topo, &net.spec);
    let (v, out) = verifier.run_full(&incident.broken);
    let prov = Provenance::new(&out.arena);

    let passing = v.records.iter().find(|r| r.passed).unwrap();
    let text = prov.explain(*passing.deriv_roots.last().unwrap());
    assert!(
        text.contains("originate") || text.contains("fib"),
        "explanation must bottom out at an origination or FIB fact:\n{text}"
    );

    let failing = v.failures().next().unwrap();
    let leaves = prov.leaves(failing.deriv_roots.iter().copied());
    assert!(!leaves.is_empty(), "failures must have provenance leaves");
    let lines = prov.coverage(failing.deriv_roots.iter().copied());
    // The stale route-map's application line (the injected fault) shows
    // up in the failure's coverage — SBFL's raw material.
    let fault_lines: Vec<LineId> = incident
        .patch
        .edits
        .iter()
        .filter_map(|e| match e {
            Edit::Insert { router, index, .. } => Some(LineId::new(*router, *index as u32 + 1)),
            _ => None,
        })
        .collect();
    assert!(
        fault_lines.iter().any(|l| lines.contains(l)),
        "failure coverage {lines:?} must include the injected line {fault_lines:?}"
    );
}
