//! ACR repairs every Table-1 misconfiguration class.
//!
//! For each of the paper's nine fault types, inject an observable
//! incident into a generated WAN and run localize–fix–validate. The
//! engine must produce a feasible update (every intent passes, nothing
//! flaps) for each class — the paper's central effectiveness claim that
//! "there are only 9 types of errors out of over 100 real-world
//! incidents", so a small template vocabulary covers them.

use acr::prelude::*;
use acr_verify::Verifier;
use acr_workloads::GeneratedNetwork;

fn wan() -> GeneratedNetwork {
    generate(&acr::topo::gen::wan(4, 8))
}

fn repair_and_check(net: &GeneratedNetwork, fault: FaultType, seed: u64) {
    let inc = try_inject(fault, net, seed)
        .unwrap_or_else(|| panic!("{fault} must be injectable into the WAN"));
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            seed: 11,
            ..RepairConfig::default()
        },
    );
    let report = engine.repair(&inc.broken);
    // The candidate-accounting identity (generated = invalid +
    // lint-rejected + simulated + cached + flow-skipped, and attempted =
    // simulated + cached + flow-skipped) holds for every run; the
    // multi-patch search reuses the same bookkeeping, so the single-fault
    // suite pins it too.
    report
        .check_accounting()
        .unwrap_or_else(|e| panic!("{fault}: accounting violated: {e}"));
    let RepairOutcome::Fixed { patch, repaired } = &report.outcome else {
        panic!(
            "{fault}: not fixed after {} iterations / {} validations: {:?} ({})",
            report.iteration_count(),
            report.validations,
            report.outcome,
            inc.description,
        );
    };
    // Independent re-verification of the repaired network.
    let verifier = Verifier::new(&net.topo, &net.spec);
    let (v, out) = verifier.run_full(repaired);
    assert!(v.all_passed(), "{fault}: repair did not hold up");
    assert!(
        out.flapping().is_empty(),
        "{fault}: repair left instability"
    );
    assert!(
        !patch.is_empty(),
        "{fault}: the incident had violations, so a fix must edit"
    );
}

#[test]
fn repairs_missing_redistribution() {
    repair_and_check(&wan(), FaultType::MissingRedistribution, 0);
}

#[test]
fn repairs_missing_pbr_permit() {
    repair_and_check(&wan(), FaultType::MissingPbrPermit, 0);
}

#[test]
fn repairs_extra_pbr_redirect() {
    repair_and_check(&wan(), FaultType::ExtraPbrRedirect, 0);
}

#[test]
fn repairs_missing_peer_group() {
    repair_and_check(&wan(), FaultType::MissingPeerGroup, 0);
}

#[test]
fn repairs_extra_peer_group_item() {
    repair_and_check(&wan(), FaultType::ExtraPeerGroupItem, 0);
}

#[test]
fn repairs_missing_route_policy() {
    repair_and_check(&wan(), FaultType::MissingRoutePolicy, 0);
}

#[test]
fn repairs_stale_route_map() {
    repair_and_check(&wan(), FaultType::StaleRouteMap, 0);
}

#[test]
fn repairs_wrong_override_asn() {
    repair_and_check(&wan(), FaultType::WrongOverrideAsn, 0);
}

#[test]
fn repairs_missing_prefix_list_items() {
    repair_and_check(&wan(), FaultType::MissingPrefixListItems, 0);
}

/// The §6 universal (donor-copy) operator set alone repairs the omission
/// faults whose missing material exists verbatim on same-role donors.
/// (It deliberately cannot fix `missing redistribution of static route`:
/// the deleted static is address-bearing, and copying address-bearing
/// statements across devices is the conflict the paper warns about —
/// that class needs the curated templates' symbolization.)
#[test]
fn universal_operators_repair_omission_faults() {
    let net = wan();
    for fault in [FaultType::MissingRoutePolicy, FaultType::MissingPeerGroup] {
        let inc = try_inject(fault, &net, 0).unwrap();
        let engine = RepairEngine::new(
            &net.topo,
            &net.spec,
            RepairConfig {
                operators: acr::core::OperatorSet::Universal,
                seed: 5,
                ..RepairConfig::default()
            },
        );
        let report = engine.repair(&inc.broken);
        report
            .check_accounting()
            .unwrap_or_else(|e| panic!("{fault}: accounting violated: {e}"));
        let RepairOutcome::Fixed { repaired, .. } = &report.outcome else {
            panic!("{fault}: universal operators failed: {:?}", report.outcome);
        };
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v, _) = verifier.run_full(repaired);
        assert!(v.all_passed(), "{fault}");
    }
}

/// Combining both vocabularies never hurts: everything the curated set
/// fixes is still fixed.
#[test]
fn combined_operator_set_repairs_everything() {
    let net = wan();
    let inc = try_inject(FaultType::StaleRouteMap, &net, 0).unwrap();
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            operators: acr::core::OperatorSet::Both,
            seed: 5,
            ..RepairConfig::default()
        },
    );
    assert!(engine.repair(&inc.broken).outcome.is_fixed());
}

/// The repair engine is deterministic: same seed, same outcome.
#[test]
fn repair_is_reproducible() {
    let net = wan();
    let inc = try_inject(FaultType::WrongOverrideAsn, &net, 0).unwrap();
    let run = |seed| {
        let engine = RepairEngine::new(
            &net.topo,
            &net.spec,
            RepairConfig {
                seed,
                ..RepairConfig::default()
            },
        );
        engine.repair(&inc.broken)
    };
    let (a, b) = (run(5), run(5));
    match (&a.outcome, &b.outcome) {
        (RepairOutcome::Fixed { patch: pa, .. }, RepairOutcome::Fixed { patch: pb, .. }) => {
            assert_eq!(pa, pb)
        }
        (x, y) => panic!("{x:?} vs {y:?}"),
    }
    assert_eq!(a.iteration_count(), b.iteration_count());
}
