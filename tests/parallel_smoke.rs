//! Concurrency smoke test for the parallel validate stage.
//!
//! Oversubscribe the worker pool (more candidates per batch than
//! threads, more threads than cores) and squeeze the memo-cache down to
//! two entries so every batch forces LRU evictions. The run must
//! terminate (no deadlock), lose no candidate (per-iteration accounting
//! is conserved), and still match the sequential run bit-for-bit under
//! the same tiny cache.

use acr::prelude::*;
use acr_core::SimCache;
use acr_workloads::GeneratedNetwork;
use std::sync::Arc;

fn wan() -> GeneratedNetwork {
    generate(&acr::topo::gen::wan(4, 8))
}

fn repair(
    net: &GeneratedNetwork,
    broken: &NetworkConfig,
    threads: usize,
    cache_cap: usize,
) -> acr_core::RepairReport {
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            seed: 11,
            threads,
            cache: Some(Arc::new(SimCache::new(cache_cap))),
            ..RepairConfig::default()
        },
    );
    engine.repair(broken)
}

#[test]
fn oversubscribed_pool_with_evicting_cache_loses_nothing() {
    let net = wan();
    let incidents = sample_incidents(&net, 4, 77);
    for (i, incident) in incidents.iter().enumerate() {
        let report = repair(&net, &incident.broken, 8, 2);
        let what = format!("incident {i} ({})", incident.fault);

        // No lost or double-counted candidate: everything generated is
        // accounted for by exactly one verdict class.
        for it in &report.iterations {
            assert_eq!(
                it.generated,
                it.validated + it.cached + it.lint_rejected + it.invalid,
                "{what}: iteration {} accounting broken: {it:?}",
                it.iteration
            );
            assert!(
                it.kept <= it.validated + it.cached,
                "{what}: kept > verdicts"
            );
        }
        let simulated: usize = report.iterations.iter().map(|it| it.validated).sum();
        let cached: usize = report.iterations.iter().map(|it| it.cached).sum();
        assert_eq!(simulated, report.validations, "{what}: validations total");
        assert_eq!(cached, report.validations_cached, "{what}: cached total");

        // Evictions must not change the repair: the sequential run under
        // the same two-entry cache agrees on every observable field.
        let seq = repair(&net, &incident.broken, 1, 2);
        assert_eq!(
            report.outcome.is_fixed(),
            seq.outcome.is_fixed(),
            "{what}: fixedness diverged"
        );
        assert_eq!(report.iterations, seq.iterations, "{what}: trace diverged");
        assert_eq!(report.validations, seq.validations, "{what}");
        assert_eq!(report.validations_cached, seq.validations_cached, "{what}");
    }
}

/// The worker pool never stalls on a degenerate batch: a single
/// candidate on many threads, and a healthy network that produces no
/// batch at all.
#[test]
fn degenerate_batches_terminate() {
    let net = wan();
    // Healthy network: the loop exits before any batch is built.
    let report = repair(&net, &net.cfg, 8, 2);
    assert!(report.outcome.is_fixed());
    assert_eq!(report.validations, 0);
    assert_eq!(report.validations_cached, 0);

    // A real incident still terminates with far more threads than
    // candidates or cores.
    let incident = &sample_incidents(&net, 1, 77)[0];
    let report = repair(&net, &incident.broken, 64, 1);
    assert!(
        report.validations + report.validations_cached > 0,
        "a broken network must validate at least one candidate"
    );
}
