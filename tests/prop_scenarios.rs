//! Composed-fault repair soundness, property-tested.
//!
//! Two system-level contracts of the scenario corpus:
//!
//! 1. **Composed-fault soundness** — when the repair engine *accepts* a
//!    patch for a multi-fault incident (any scenario family, random
//!    topology sizes, beam search over multi-patch candidates), applying
//!    that patch and re-running a **fresh full simulation** against the
//!    spec the engine saw must clear every one of its failing
//!    properties. The engine's internal incremental validation is an
//!    optimization; acceptance is only sound if the unoptimized oracle
//!    agrees — across faults that *compose* (mask, cascade, overlap),
//!    not just Table-1 singletons. Every report must also satisfy the
//!    candidate-accounting identity.
//!
//! 2. **Observability-mask consistency** — a verifier running the
//!    masked spec must agree verdict-for-verdict with the full verifier
//!    on every *visible* property, for random configs (healthy and
//!    broken) × random masks. Partial observability may hide failures;
//!    it must never invent or flip one.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr::prelude::*;
use acr::scenarios::{compose, ScenarioFamily};
use acr::workloads::GeneratedNetwork;
use proptest::prelude::{any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
use std::collections::BTreeSet;

fn net_for(w: usize, h: usize) -> GeneratedNetwork {
    generate(&acr::topo::gen::wan(3 + w % 2, 4 + h % 5))
}

/// Per-property verdict map (a property passes iff all its tests pass).
fn verdicts(topo: &Topology, spec: &Spec, cfg: &NetworkConfig) -> Vec<(String, bool)> {
    let v = Verifier::new(topo, spec).run_full(cfg).0;
    let mut out: Vec<(String, bool)> = Vec::new();
    for r in &v.records {
        match out.iter_mut().find(|(p, _)| p == &r.property) {
            Some((_, ok)) => *ok &= r.passed,
            None => out.push((r.property.clone(), r.passed)),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Accepted multi-patch repairs are sound under full simulation.
    #[test]
    fn accepted_composed_repair_clears_all_failing_properties(
        w in any::<usize>(),
        h in any::<usize>(),
        fam in any::<usize>(),
        seed in 0u64..24,
    ) {
        let net = net_for(w, h);
        let family = ScenarioFamily::ALL[fam % ScenarioFamily::ALL.len()];
        let scenario = compose(family, &net, seed);
        prop_assume!(scenario.is_some());
        let scenario = scenario.unwrap();
        // The engine repairs against what the scenario lets it observe.
        let spec = scenario.visible_spec(&net.spec);
        let mut config = RepairConfig {
            strategy: acr::core::Strategy::beam(),
            ..RepairConfig::default()
        };
        config.tags = scenario.tags();
        let report = RepairEngine::new(&net.topo, &spec, config).repair(&scenario.broken);

        // Satellite invariant: the accounting identity holds on every
        // multi-patch report, fixed or not.
        if let Err(e) = report.check_accounting() {
            prop_assert!(false, "{}: accounting violated: {e}", scenario.label);
        }

        if let acr::core::RepairOutcome::Fixed { patch, .. } = &report.outcome {
            let repaired = patch.apply_cloned(&scenario.broken).expect("patch applies");
            let full = Verifier::new(&net.topo, &spec).run_full(&repaired).0;
            prop_assert_eq!(
                full.failed_count(),
                0,
                "{}: accepted repair fails {} tests under full simulation",
                &scenario.label,
                full.failed_count()
            );
            // Attribution covers the whole accepted patch.
            let attributed: usize = report.attribution.iter().map(|s| s.edits).sum();
            prop_assert_eq!(attributed, patch.len());
        }
    }

    /// Masked verdicts never contradict full-observability verdicts on
    /// the visible subset.
    #[test]
    fn masked_verdicts_agree_with_full_on_visible_properties(
        w in any::<usize>(),
        h in any::<usize>(),
        fi in any::<usize>(),
        seed in 0u64..24,
        keep in 20u32..90,
        break_it in any::<bool>(),
    ) {
        use acr::workloads::{try_inject, TABLE1};
        let net = net_for(w, h);
        let cfg = if break_it {
            let inc = try_inject(TABLE1[fi % TABLE1.len()].0, &net, seed);
            prop_assume!(inc.is_some());
            inc.unwrap().broken
        } else {
            net.cfg.clone()
        };
        let mask = ObsMask::sample(&net.spec, keep, seed.wrapping_mul(0x9e37));
        let masked_spec = mask.restrict(&net.spec);
        prop_assume!(!masked_spec.properties.is_empty());

        let full = verdicts(&net.topo, &net.spec, &cfg);
        let masked = verdicts(&net.topo, &masked_spec, &cfg);

        let visible: BTreeSet<&str> = mask
            .visible()
            .filter_map(|i| net.spec.properties.get(i))
            .map(|p| p.name.as_str())
            .collect();
        // Every masked verdict is about a visible property, and matches
        // the full verifier's verdict for it exactly.
        for (prop, ok) in &masked {
            prop_assert!(visible.contains(prop.as_str()), "{prop}: not visible");
            let full_ok = full
                .iter()
                .find(|(p, _)| p == prop)
                .map(|(_, ok)| *ok)
                .expect("property exists under full observability");
            prop_assert_eq!(*ok, full_ok, "{}: masked verdict flipped", prop);
        }
        // And the mask hides exactly the invisible properties: counts line up.
        prop_assert_eq!(masked.len(), visible.len());
    }
}
