//! Failure-mode and edge-case behaviour of the repair engine.

use acr::prelude::*;
use acr_verify::Verifier;

fn wan() -> acr::workloads::GeneratedNetwork {
    generate(&acr::topo::gen::wan(3, 4))
}

/// Contradictory intents (reach X and isolate X over the same header
/// space) admit no feasible update; the engine must terminate cleanly —
/// via candidate exhaustion or the iteration cap — rather than loop.
#[test]
fn contradictory_spec_terminates_without_fix() {
    let net = wan();
    let dst = net.topo.router(RouterId(3)).attached[0];
    let src = net.topo.router(RouterId(4)).attached[0];
    let start = RouterId(4);
    let spec = Spec::new()
        .with(Property::reach("must-reach", start, src, dst))
        .with(Property::isolate("must-not-reach", start, src, dst));
    let engine = RepairEngine::new(
        &net.topo,
        &spec,
        RepairConfig {
            max_iterations: 30,
            ..RepairConfig::default()
        },
    );
    let report = engine.repair(&net.cfg);
    match report.outcome {
        RepairOutcome::Fixed { .. } => {
            panic!("a flow cannot both reach and not reach its destination")
        }
        RepairOutcome::NoCandidates { best_fitness, .. }
        | RepairOutcome::IterationLimit { best_fitness, .. } => {
            assert!(best_fitness >= 1, "at least one intent stays violated");
        }
    }
    assert!(report.iteration_count() <= 30);
}

/// The iteration cap is honored exactly.
#[test]
fn iteration_cap_is_respected() {
    let net = wan();
    let incident = try_inject(FaultType::MissingPeerGroup, &net, 0).unwrap();
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            max_iterations: 1,
            // Single mutation per iteration: too little to assemble the
            // multi-edit repair in one round.
            strategy: Strategy::Genetic {
                mutations: 1,
                crossovers: 0,
                top_k: 3,
            },
            ..RepairConfig::default()
        },
    );
    let report = engine.repair(&incident.broken);
    assert!(report.iteration_count() <= 1);
    assert!(
        !report.outcome.is_fixed(),
        "a 5-edit repair cannot land in one single-mutation iteration"
    );
}

/// Multiple samples per property sharpen the spectrum without changing
/// verdicts on a deterministic network.
#[test]
fn multi_sample_suites_agree_on_verdicts() {
    let net = wan();
    let incident = try_inject(FaultType::WrongOverrideAsn, &net, 0).unwrap();
    let v1 = Verifier::with_samples(&net.topo, &net.spec, 1);
    let v3 = Verifier::with_samples(&net.topo, &net.spec, 3);
    let (r1, _) = v1.run_full(&incident.broken);
    let (r3, _) = v3.run_full(&incident.broken);
    assert_eq!(r3.records.len(), 3 * r1.records.len());
    // Per-property verdicts agree across sampling levels (properties are
    // prefix-granular here, so every sample of a property shares a fate).
    for rec1 in &r1.records {
        let all_same = r3
            .records
            .iter()
            .filter(|r| r.property == rec1.property)
            .all(|r| r.passed == rec1.passed);
        assert!(
            all_same,
            "property {} diverges across samples",
            rec1.property
        );
    }
    // And repair works with the larger suite too.
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            samples_per_property: 3,
            ..RepairConfig::default()
        },
    );
    assert!(engine.repair(&incident.broken).outcome.is_fixed());
}

/// An incident on a network with an empty spec is vacuously "repaired"
/// (nothing to violate).
#[test]
fn empty_spec_is_vacuously_fixed() {
    let net = wan();
    let spec = Spec::new();
    let engine = RepairEngine::with_defaults(&net.topo, &spec);
    let report = engine.repair(&net.cfg);
    assert!(report.outcome.is_fixed());
    assert_eq!(report.validations, 0);
}

/// Compound incidents across *different* devices repair too (the
/// evolution accretes edits on both).
#[test]
fn compound_cross_device_incident_repairs() {
    let net = wan();
    let a = try_inject(FaultType::WrongOverrideAsn, &net, 0).unwrap();
    // Find a second fault on a different router.
    let b = (0..12u64)
        .filter_map(|s| try_inject(FaultType::StaleRouteMap, &net, s))
        .find(|b| b.patch.routers() != a.patch.routers())
        .expect("a second, distinct-device fault");
    let compound = a.patch.concat(&b.patch);
    let Ok(broken) = compound.apply_cloned(&net.cfg) else {
        // Index collision between the two patches — rebuild sequentially.
        let broken = a.patch.apply_cloned(&net.cfg).unwrap();
        let broken = b.patch.apply_cloned(&broken).unwrap();
        run_compound(&net, broken);
        return;
    };
    run_compound(&net, broken);
}

fn run_compound(net: &acr::workloads::GeneratedNetwork, broken: NetworkConfig) {
    let verifier = Verifier::new(&net.topo, &net.spec);
    let (v, _) = verifier.run_full(&broken);
    if v.all_passed() {
        return; // faults cancelled out; nothing to assert
    }
    let engine = RepairEngine::with_defaults(&net.topo, &net.spec);
    let report = engine.repair(&broken);
    let RepairOutcome::Fixed { repaired, .. } = report.outcome else {
        panic!("compound incident not fixed: {:?}", report.iterations);
    };
    let (v2, _) = verifier.run_full(&repaired);
    assert!(v2.all_passed());
}
