//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the small subset of proptest's API its property suites
//! actually use: strategy combinators (`prop_map`, `prop_oneof!`, tuples,
//! ranges, `collection::vec`, `option::of`, string patterns,
//! `prop_recursive`) and the `proptest!` test macro. Differences from the
//! real crate:
//!
//! - **No shrinking.** A failing case panics with the generated inputs via
//!   the normal assertion message; it is not minimized.
//! - **Fixed determinism.** Each test gets an RNG seeded from its own name,
//!   so runs are fully reproducible (there is no `PROPTEST_` env handling).
//! - **Pattern strategies** support the character-class/group/quantifier
//!   subset of regex syntax the suites use, not full regex.

pub mod rng {
    /// Deterministic SplitMix64 stream used by all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seeds from a test name (FNV-1a) so each test is reproducible.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit draw (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; 0 when `n == 0`.
        pub fn index(&mut self, n: usize) -> usize {
            if n == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A value generator. The real crate's `Strategy` also carries a shrink
    /// tree; this shim only generates.
    pub trait Strategy {
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
            }
        }

        /// Builds recursive structures: `self` is the leaf case and
        /// `recurse` wraps an inner strategy one level deeper. The size
        /// hints of the real API are accepted and ignored.
        fn prop_recursive<F, R>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
            R: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                let l = leaf.clone();
                current = BoxedStrategy {
                    gen: Rc::new(move |rng: &mut TestRng| {
                        // Bias toward recursion; the leaf keeps depth finite.
                        if rng.index(4) == 0 {
                            l.generate(rng)
                        } else {
                            deeper.generate(rng)
                        }
                    }),
                };
            }
            current
        }
    }

    /// Clonable type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed arms — the engine behind `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for the full value range of `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// String strategies from `&'static str` regex-like patterns.
    ///
    /// Supports literals, `[a-zA-Z_]` classes, `(...)` groups, and the
    /// `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers — the subset the
    /// suites use.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let units = pattern::parse(self);
            let mut out = String::new();
            pattern::emit(&units, rng, &mut out);
            out
        }
    }

    mod pattern {
        use crate::rng::TestRng;

        pub enum Atom {
            Lit(char),
            Class(Vec<(char, char)>),
            Group(Vec<Unit>),
        }

        pub struct Unit {
            pub atom: Atom,
            pub min: u32,
            pub max: u32,
        }

        pub fn parse(pat: &str) -> Vec<Unit> {
            let mut chars: Vec<char> = pat.chars().collect();
            chars.reverse(); // pop() from the front
            let units = parse_seq(&mut chars);
            assert!(chars.is_empty(), "unbalanced pattern: {pat:?}");
            units
        }

        fn parse_seq(rest: &mut Vec<char>) -> Vec<Unit> {
            let mut units = Vec::new();
            while let Some(&c) = rest.last() {
                let atom = match c {
                    ')' => break,
                    '(' => {
                        rest.pop();
                        let inner = parse_seq(rest);
                        assert_eq!(rest.pop(), Some(')'), "missing ')'");
                        Atom::Group(inner)
                    }
                    '[' => {
                        rest.pop();
                        Atom::Class(parse_class(rest))
                    }
                    '\\' => {
                        rest.pop();
                        Atom::Lit(rest.pop().expect("dangling escape"))
                    }
                    _ => {
                        rest.pop();
                        Atom::Lit(c)
                    }
                };
                let (min, max) = parse_quant(rest);
                units.push(Unit { atom, min, max });
            }
            units
        }

        fn parse_class(rest: &mut Vec<char>) -> Vec<(char, char)> {
            let mut ranges = Vec::new();
            loop {
                let c = rest.pop().expect("unterminated class");
                if c == ']' {
                    break;
                }
                if rest.last() == Some(&'-') && rest.len() >= 2 && rest[rest.len() - 2] != ']' {
                    rest.pop(); // '-'
                    let hi = rest.pop().unwrap();
                    ranges.push((c, hi));
                } else {
                    ranges.push((c, c));
                }
            }
            assert!(!ranges.is_empty(), "empty character class");
            ranges
        }

        fn parse_quant(rest: &mut Vec<char>) -> (u32, u32) {
            match rest.last() {
                Some('?') => {
                    rest.pop();
                    (0, 1)
                }
                Some('*') => {
                    rest.pop();
                    (0, 8)
                }
                Some('+') => {
                    rest.pop();
                    (1, 8)
                }
                Some('{') => {
                    rest.pop();
                    let mut digits = String::new();
                    let mut min = None;
                    loop {
                        match rest.pop().expect("unterminated quantifier") {
                            '}' => break,
                            ',' => min = Some(digits.split_off(0)),
                            d => digits.push(d),
                        }
                    }
                    let hi: u32 = digits.parse().expect("bad quantifier");
                    let lo = match min {
                        Some(s) => s.parse().expect("bad quantifier"),
                        None => hi,
                    };
                    (lo, hi)
                }
                _ => (1, 1),
            }
        }

        pub fn emit(units: &[Unit], rng: &mut TestRng, out: &mut String) {
            for u in units {
                let span = (u.max - u.min + 1) as usize;
                let reps = u.min + rng.index(span) as u32;
                for _ in 0..reps {
                    match &u.atom {
                        Atom::Lit(c) => out.push(*c),
                        Atom::Class(ranges) => {
                            let (lo, hi) = ranges[rng.index(ranges.len())];
                            let width = hi as u32 - lo as u32 + 1;
                            let c = char::from_u32(lo as u32 + rng.index(width as usize) as u32)
                                .expect("class range spans invalid chars");
                            out.push(c);
                        }
                        Atom::Group(inner) => emit(inner, rng, out),
                    }
                }
            }
        }
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// `vec(element, size_range)` — sizes drawn from `size_range`
    /// (half-open, matching the real API's `0..8` idiom).
    pub struct VecStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.sizes.end.saturating_sub(self.sizes.start).max(1);
            let len = self.sizes.start + rng.index(span);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// `of(strategy)` — `None` one time in four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.index(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Runs each embedded `#[test] fn name(pat in strategy, ...)` body against
/// `Config::cases` generated inputs. No shrinking: the first failing case
/// panics with the assertion's own message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::rng::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..config.cases {
                let mut case = || {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                };
                case();
            }
        }
    )*};
}

/// `assert!` under another name (the real macro threads a result type).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under another name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::TestRng;

    #[test]
    fn patterns_match_their_shape() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let name = Strategy::generate(&"[A-Za-z][A-Za-z0-9_]{0,10}", &mut rng);
            assert!(!name.is_empty() && name.len() <= 11, "{name:?}");
            assert!(name.chars().next().unwrap().is_ascii_alphabetic());
            assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));

            let remark = Strategy::generate(&"[a-z]{1,8}( [a-z]{1,8}){0,3}", &mut rng);
            assert!(
                !remark.starts_with(' ') && !remark.ends_with(' '),
                "{remark:?}"
            );
            assert!(!remark.contains("  "), "{remark:?}");
        }
    }

    #[test]
    fn ranges_and_unions_stay_in_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..500 {
            let v = Strategy::generate(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(0u8..=32), &mut rng);
            assert!(w <= 32);
            let pick = prop_oneof![Just(1u8), Just(2), Just(3)];
            assert!((1..=3).contains(&Strategy::generate(&pick, &mut rng)));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            assert!(depth(&Strategy::generate(&strat, &mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, assume, tuples, vec.
        #[test]
        fn macro_smoke(x in 0u32..10, pair in (0u8..4, 0u8..4), xs in crate::collection::vec(0i64..5, 0..6)) {
            prop_assume!(x != 9);
            prop_assert!(x < 9);
            prop_assert_eq!(pair.0 as u32 + x, x + pair.0 as u32);
            prop_assert!(xs.len() < 6);
        }
    }
}
