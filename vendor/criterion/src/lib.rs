//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates, so this shim implements just
//! enough of criterion's API for the workspace's benches to compile and
//! produce useful numbers: `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with `sample_size` and
//! `bench_with_input`, and `Bencher::iter`. Instead of statistical
//! analysis it reports the mean wall-clock time over a bounded number of
//! timed runs.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Maximum wall-clock budget spent per benchmark id.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/name/parameter`-style id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times a closure; handed to the user's bench body.
pub struct Bencher {
    samples: u64,
    /// (total elapsed, runs) recorded by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Runs `f` up to the sample count (bounded by the time budget) and
    /// records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        let mut runs = 0u64;
        while runs < self.samples {
            black_box(f());
            runs += 1;
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.result = Some((start.elapsed(), runs.max(1)));
    }
}

fn report(name: &str, b: &Bencher) {
    match b.result {
        Some((total, runs)) => {
            let mean = total / runs as u32;
            println!("bench: {name:<50} {mean:>12.2?}  ({runs} runs)");
        }
        None => println!("bench: {name:<50} (no measurement)"),
    }
}

/// Entry point mirroring criterion's driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<u64>,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size.unwrap_or(10));
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size.unwrap_or(10),
            _c: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark run count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<Inp, I: Into<BenchmarkId>, F: FnMut(&mut Bencher, &Inp)>(
        &mut self,
        id: I,
        input: &Inp,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs >= 2, "warm-up plus at least one timed run, got {runs}");
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        assert_eq!(runs, 4 * 7, "warm-up + 3 samples");
    }
}
