//! Universal change operators (the paper's §6 direction).
//!
//! The curated templates in [`crate::templates`] encode ByteDance-style
//! historical repair patterns. §6 asks whether a *universal* syntactic
//! operator set — one that generalizes to networks whose incident history
//! we have never seen — can work instead. This module implements the
//! plastic-surgery rendition: **donor copying**. Devices with the same
//! role carry near-identical configurations, so statements present on
//! sibling devices but absent here are repair candidates:
//!
//! - whole **route-policy blocks** referenced locally but undefined (the
//!   donor defines a policy of the same name),
//! - whole **peer-group scaffolds** (`group` + `peer <g> as-number` +
//!   `peer <g> route-policy … import`) when a membership references an
//!   undefined group that a donor defines,
//! - device-neutral single statements (`import-route static`) present on
//!   a sibling of the same role,
//! - the generic deletion operator.
//!
//! Copying is restricted to statements whose parameters are *device
//! neutral* (names, protocols) or locally re-anchored (prefix-list
//! entries come with the donor's block, which downstream symbolization
//! can still adjust); address-bearing statements are never copied — the
//! conflict the paper warns about ("the same IP addresses are allocated
//! on multiple interfaces").

use crate::ctx::RepairCtx;
use acr_cfg::{Edit, LineId, Patch, PeerRef, Proto, Stmt};
use acr_net_types::RouterId;
use acr_topo::Role;
use std::collections::BTreeSet;

/// Generates donor-based candidates for a suspicious line, plus the
/// generic delete.
pub fn universal_candidates(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let mut out = Vec::new();
    out.extend(copy_missing_policy(line, ctx));
    out.extend(copy_missing_group(line, ctx));
    out.extend(copy_neutral_statement(line, ctx));
    if let Some(stmt) = ctx.stmt(line) {
        if !stmt.is_header() {
            out.push(Patch::single(Edit::Delete {
                router: line.router,
                index: line.index(),
            }));
        }
    }
    out
}

/// Devices sharing the suspicious device's role, donor candidates first
/// by router id.
fn siblings(ctx: &RepairCtx<'_>, router: RouterId) -> Vec<RouterId> {
    let role: Role = ctx.topo.router(router).role;
    ctx.topo
        .routers()
        .iter()
        .filter(|r| r.id != router && r.role == role)
        .map(|r| r.id)
        .collect()
}

/// If this device references a route policy it does not define, copy the
/// full policy block (and the prefix lists it matches) from a sibling
/// that defines one with the same name.
fn copy_missing_policy(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let model = ctx.model(router);
    // Policies referenced on this device…
    let referenced: BTreeSet<&String> = model
        .peers
        .values()
        .flat_map(|p| {
            p.import_policy
                .iter()
                .chain(p.export_policy.iter())
                .map(|(n, _)| n)
        })
        .collect();
    let mut out = Vec::new();
    for name in referenced {
        if model.route_policies.contains_key(name) {
            continue; // defined locally
        }
        for donor in siblings(ctx, router) {
            let donor_model = ctx.model(donor);
            let Some(_) = donor_model.route_policies.get(name) else {
                continue;
            };
            let Some(donor_cfg) = ctx.cfg.device(donor) else {
                continue;
            };
            let Some(device) = ctx.cfg.device(router) else {
                continue;
            };
            let mut patch = Patch::new();
            let mut at = device.len();
            // Copy the policy blocks and, behind them, the entries of the
            // prefix lists the policy matches on.
            let mut lists: BTreeSet<String> = BTreeSet::new();
            let mut in_block = false;
            for stmt in donor_cfg.stmts() {
                match stmt {
                    Stmt::RoutePolicyDef { name: n, .. } if n == name => {
                        in_block = true;
                        patch.push(Edit::Insert {
                            router,
                            index: at,
                            stmt: stmt.clone(),
                        });
                        at += 1;
                    }
                    s if in_block
                        && s.required_block() == Some(acr_cfg::ast::BlockKind::RoutePolicy) =>
                    {
                        if let Stmt::IfMatchPrefixList(list) = s {
                            lists.insert(list.clone());
                        }
                        patch.push(Edit::Insert {
                            router,
                            index: at,
                            stmt: s.clone(),
                        });
                        at += 1;
                    }
                    _ => in_block = false,
                }
            }
            for stmt in donor_cfg.stmts() {
                if let Stmt::PrefixListEntry { list, .. } = stmt {
                    if lists.contains(list) && !model.prefix_lists.contains_key(list) {
                        patch.push(Edit::Insert {
                            router,
                            index: at,
                            stmt: stmt.clone(),
                        });
                        at += 1;
                    }
                }
            }
            if !patch.is_empty() {
                out.push(patch);
                break; // one donor suffices per policy name
            }
        }
    }
    out
}

/// If a membership line references an undefined group, copy the donor's
/// group scaffold (`group`, `peer <g> as-number`, `peer <g> route-policy`).
fn copy_missing_group(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let Some(Stmt::PeerGroup { group, .. }) = ctx.stmt(line) else {
        return Vec::new();
    };
    let router = line.router;
    let model = ctx.model(router);
    if model
        .groups
        .get(group)
        .map(|g| g.asn.is_some())
        .unwrap_or(false)
    {
        return Vec::new();
    }
    let Some(at) = model.asn.map(|(_, l)| l as usize) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for donor in siblings(ctx, router) {
        let Some(donor_cfg) = ctx.cfg.device(donor) else {
            continue;
        };
        let mut patch = Patch::new();
        let mut offset = 0usize;
        for stmt in donor_cfg.stmts() {
            let copy = match stmt {
                Stmt::GroupDef(g) => g == group,
                Stmt::PeerAs {
                    peer: PeerRef::Group(g),
                    ..
                } => g == group,
                Stmt::PeerPolicy {
                    peer: PeerRef::Group(g),
                    ..
                } => g == group,
                _ => false,
            };
            if copy {
                patch.push(Edit::Insert {
                    router,
                    index: at + offset,
                    stmt: stmt.clone(),
                });
                offset += 1;
            }
        }
        if !patch.is_empty() {
            out.push(patch);
            break;
        }
    }
    out
}

/// Copies device-neutral single statements a same-role sibling has and we
/// lack (currently `import-route <proto>`, which needs no re-anchoring).
fn copy_neutral_statement(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let model = ctx.model(router);
    let Some(at) = model.asn.map(|(_, l)| l as usize) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut proposed: BTreeSet<Proto> = BTreeSet::new();
    for donor in siblings(ctx, router) {
        let donor_model = ctx.model(donor);
        for (proto, _) in &donor_model.redistribute {
            let already = model.redistribute.iter().any(|(p, _)| p == proto);
            if !already && proposed.insert(*proto) {
                out.push(Patch::single(Edit::Insert {
                    router,
                    index: at,
                    stmt: Stmt::ImportRoute(*proto),
                }));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::models_of;
    use acr_verify::{Spec, Verifier};
    use acr_workloads::{generate, try_inject, FaultType};

    fn ctx_for<'a>(
        net: &'a acr_workloads::GeneratedNetwork,
        broken: &'a acr_cfg::NetworkConfig,
        v: &'a acr_verify::Verification,
        out: &'a acr_sim::SimOutcome,
        models: &'a [acr_cfg::DeviceModel],
    ) -> RepairCtx<'a> {
        RepairCtx {
            topo: &net.topo,
            cfg: broken,
            verification: v,
            arena: &out.arena,
            models,
        }
    }

    #[test]
    fn donor_copy_restores_missing_policy() {
        // Delete BB2's Override_Cust body; BB0/BB1/BB3 are same-role
        // donors that still define it.
        let net = generate(&acr_topo::gen::wan(4, 8));
        let inc = try_inject(FaultType::MissingRoutePolicy, &net, 2).expect("injectable");
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v, out) = verifier.run_full(&inc.broken);
        let models = models_of(&net.topo, &inc.broken);
        let ctx = ctx_for(&net, &inc.broken, &v, &out, &models);
        // Fire from the dangling application line.
        let line = inc
            .broken
            .all_lines()
            .find(|l| {
                matches!(inc.broken.stmt(*l), Some(Stmt::PeerPolicy { .. })
                if l.router == inc.patch.routers()[0])
            })
            .expect("application line survives");
        let candidates = universal_candidates(line, &ctx);
        // Some donor-copy candidate recreates a policy block.
        let policy_copies: Vec<_> = candidates
            .iter()
            .filter(|p| {
                p.edits.iter().any(|e| {
                    matches!(
                        e,
                        Edit::Insert {
                            stmt: Stmt::RoutePolicyDef { .. },
                            ..
                        }
                    )
                })
            })
            .collect();
        assert!(!policy_copies.is_empty(), "{candidates:?}");
        // NOTE: the donor's prefix-list entries name the *donor's*
        // customers — the copy may or may not verify clean; what matters
        // is that the candidate exists and is parseable.
        for patch in policy_copies {
            let patched = patch.apply_cloned(&inc.broken).unwrap();
            let d = patched.device(line.router).unwrap();
            assert!(acr_cfg::parse::parse_device(d.name(), &d.to_text()).is_ok());
        }
    }

    #[test]
    fn donor_copy_restores_missing_group_scaffold() {
        let net = generate(&acr_topo::gen::wan(4, 8));
        let inc = try_inject(FaultType::MissingPeerGroup, &net, 0).expect("injectable");
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v, out) = verifier.run_full(&inc.broken);
        let models = models_of(&net.topo, &inc.broken);
        let ctx = ctx_for(&net, &inc.broken, &v, &out, &models);
        let line = inc
            .broken
            .all_lines()
            .find(|l| {
                matches!(inc.broken.stmt(*l), Some(Stmt::PeerGroup { .. })
                if l.router == inc.patch.routers()[0])
            })
            .expect("membership line survives");
        let candidates = universal_candidates(line, &ctx);
        let scaffold = candidates.iter().find(|p| {
            p.edits.iter().any(|e| {
                matches!(
                    e,
                    Edit::Insert {
                        stmt: Stmt::GroupDef(_),
                        ..
                    }
                )
            })
        });
        let scaffold = scaffold.expect("a donor must supply the group scaffold");
        // The scaffold alone brings the group's sessions (and policy) back.
        let repaired = scaffold.apply_cloned(&inc.broken).unwrap();
        let (v2, _) = verifier.run_full(&repaired);
        assert!(
            v2.failed_count() < v.failed_count(),
            "scaffold copy must reduce violations: {} -> {}",
            v.failed_count(),
            v2.failed_count()
        );
    }

    #[test]
    fn neutral_statement_copy_proposes_redistribution() {
        let net = generate(&acr_topo::gen::wan(4, 8));
        let inc = try_inject(FaultType::MissingRedistribution, &net, 1).expect("injectable");
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v, out) = verifier.run_full(&inc.broken);
        let models = models_of(&net.topo, &inc.broken);
        let ctx = ctx_for(&net, &inc.broken, &v, &out, &models);
        let sick = inc.patch.routers()[0];
        let line = LineId::new(sick, 1); // the bgp header
        let candidates = universal_candidates(line, &ctx);
        assert!(
            candidates.iter().any(|p| p.edits.iter().any(|e| matches!(
                e,
                Edit::Insert {
                    stmt: Stmt::ImportRoute(Proto::Static),
                    ..
                }
            ))),
            "a same-role sibling redistributes static: {candidates:?}"
        );
    }

    #[test]
    fn no_siblings_means_no_donors() {
        // A lone-role topology has nothing to copy from.
        let mut b = acr_topo::TopologyBuilder::new();
        let a = b.router("A", acr_topo::Role::Backbone);
        let c = b.router("C", acr_topo::Role::PoP);
        b.link(a, c);
        let topo = b.build();
        let net = generate(&topo);
        let empty_spec = Spec::new();
        let verifier = Verifier::new(&net.topo, &empty_spec);
        let (v, out) = verifier.run_full(&net.cfg);
        let models = models_of(&net.topo, &net.cfg);
        let ctx = RepairCtx {
            topo: &net.topo,
            cfg: &net.cfg,
            verification: &v,
            arena: &out.arena,
            models: &models,
        };
        let line = LineId::new(a, 1);
        // Only the delete fallback may be absent too (bgp is a header);
        // donor operators must not fire.
        let candidates = universal_candidates(line, &ctx);
        assert!(candidates.is_empty(), "{candidates:?}");
    }
}
