//! Local symbolization (§5, Step 2).
//!
//! A template that cannot name a concrete value leaves a **symbolic
//! prefix-set hole**. This module collects the constraints the paper
//! describes — from each test whose coverage touches the hole's *anchor
//! lines*:
//!
//! - a **passing** test contributes `P`: its destination prefix must stay
//!   in the set (the behaviour it certifies must be preserved),
//! - a **failing** test contributes `F`: its destination prefix must
//!   leave the set (the behaviour it indicts must stop),
//!
//! and solves `P ∧ ¬F` with `acr-smt`. In the paper's worked example this
//! yields exactly `var = {10.70/16, 20.0/16}` with `10.0/16 ∉ var`.

use crate::ctx::RepairCtx;
use acr_cfg::LineId;
use acr_net_types::Prefix;
use acr_smt::{Formula, Solver};
use std::collections::BTreeSet;

/// Solves a prefix-set hole anchored at `anchor_lines`.
///
/// Returns the solved set, or `None` when the constraints conflict (some
/// destination is required by a passing test *and* indicted by a failing
/// one — the template then produces no candidate).
pub fn solve_prefix_set(ctx: &RepairCtx<'_>, anchor_lines: &[LineId]) -> Option<BTreeSet<Prefix>> {
    let universe = ctx.test_dst_prefixes();
    let mut solver = Solver::new();
    let var = solver.new_prefix_set(universe.iter().copied());

    let mut constrained = false;
    for rec in &ctx.verification.records {
        let Some(cov) = ctx.coverage_of(rec.id) else {
            continue;
        };
        if !anchor_lines.iter().any(|l| cov.contains(l)) {
            continue;
        }
        let Some(dst) = ctx.dst_prefix_of(rec) else {
            continue;
        };
        constrained = true;
        // Polarity: the paper's worked example is an *over-matching*
        // fault (passed ⇒ keep matching, failed ⇒ stop matching). The
        // dual, *under-matching* class ("missing items in ip
        // prefix-list") is recognized by the anchor being reached through
        // a denial node: there the failing destination must be added.
        let denied = denied_at_anchor(ctx, rec, anchor_lines);
        let member_required = rec.passed != denied;
        if member_required {
            solver.assert(Formula::member(var, dst));
        } else {
            solver.assert(Formula::not(Formula::member(var, dst)));
        }
    }
    if !constrained {
        return None; // no test touches the anchor — nothing to solve for
    }
    let model = solver.solve()?;
    Some(model.sets[&var].clone())
}

/// Whether the test's derivations include a policy-denial node whose own
/// lines touch the anchor — the signature of an under-matching fault.
fn denied_at_anchor(
    ctx: &RepairCtx<'_>,
    rec: &acr_verify::TestRecord,
    anchor_lines: &[LineId],
) -> bool {
    use acr_sim::DerivKind;
    let mut seen = BTreeSet::new();
    let mut stack: Vec<_> = rec.deriv_roots.clone();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let node = ctx.arena.node(id);
        if matches!(node.kind, DerivKind::ImportDenied | DerivKind::ExportDenied)
            && node.lines.iter().any(|l| anchor_lines.contains(l))
        {
            return true;
        }
        stack.extend_from_slice(&node.parents);
    }
    false
}

/// Like [`solve_prefix_set`] but collects only the *failing* destinations
/// touching the anchor — the set a recreated filter policy must block.
pub fn failing_dsts(ctx: &RepairCtx<'_>, anchor_lines: &[LineId]) -> BTreeSet<Prefix> {
    let mut out = BTreeSet::new();
    for rec in ctx.verification.records.iter().filter(|r| !r.passed) {
        let Some(cov) = ctx.coverage_of(rec.id) else {
            continue;
        };
        if !anchor_lines.iter().any(|l| cov.contains(l)) {
            continue;
        }
        if let Some(dst) = ctx.dst_prefix_of(rec) {
            out.insert(dst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end through the template and engine tests (the
    // worked-example assertions live in `tests/fig2_incident.rs` at the
    // workspace root); unit coverage here focuses on the conflict case via
    // a synthetic context, which requires a full verification fixture —
    // see `crate::templates::tests`.
}
