//! The engine's validate stage: lint gate, memo-cache and the
//! deterministic worker pool.
//!
//! Each iteration hands this module the batch of fresh candidate
//! patches. Per candidate the stage (1) materializes and re-parses the
//! configuration, (2) runs the static lint gate, (3) serves the verdict
//! from the simulation memo-cache when the config fingerprint was seen
//! before, and (4) otherwise simulates it through the incremental
//! validator. With `threads > 1` steps 2–4 run on a
//! `std::thread::scope` worker pool.
//!
//! **Determinism argument.** A candidate's verdict is a pure function of
//! (committed base state, candidate config): [`CandidateValidator`]
//! never mutates the per-prefix memo, lint is stateless, and the
//! memo-cache is only *read* while workers run. Everything order
//! sensitive is pinned to candidate index order on the coordinating
//! thread:
//!
//! - results are collected into an index-addressed table, so selection
//!   order and tie-breaks never depend on scheduling;
//! - cache insertions and LRU promotions happen in a post-pass in index
//!   order (reads never touch recency — see [`acr_sim::ShardedCache`]),
//!   so the cache's contents, and therefore every *future* hit or miss,
//!   are identical whether the batch ran on 1 thread or 8;
//! - candidates of one batch that render to the *same* configuration
//!   are deduplicated by fingerprint up front (the lowest index
//!   computes, the rest reuse), which reproduces what the sequential
//!   path's insert-then-hit would do, at any thread count.
//!
//! Worker threads intern fresh derivations into private clones of the
//! persistent arena (derivation ids are arena-local and never portable),
//! and every computed verdict is re-interned into a pruned private arena
//! before it leaves the worker. The engine absorbs kept verdicts into
//! the persistent arena in index order. Arena *id numbering* may differ
//! from the sequential path's, but every consumer is content-driven
//! (closures are sorted and deduplicated, anchor checks return booleans),
//! so repair outcomes are byte-identical.

use acr_cfg::{DeviceModel, NetworkConfig, Patch};
use acr_lint::{lint_with_models, DiagKey, Diagnostic};
use acr_net_types::{Prefix, RouterId};
use acr_obs::metrics::Counter;
use acr_obs::span;
use acr_sim::{DerivArena, ShardedCache};
use acr_topo::Topology;
use acr_verify::{
    make_entry, CandidateEntry, CandidateValidator, IncrementalStats, IncrementalVerifier,
    SimCache, Verification,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The lint baseline of the broken network, shared by every candidate's
/// gate check.
pub(crate) struct LintBase {
    pub models: Vec<DeviceModel>,
    pub idx: HashMap<RouterId, usize>,
    pub keys: HashSet<DiagKey>,
    pub diags: Vec<Diagnostic>,
}

/// Per-run lint memo: config fingerprint → (introduces a fresh error,
/// diagnostics). Lint is a pure function of the candidate config, so
/// worker threads may insert racily — a dropped insert merely recomputes
/// the same value later, and nothing in the report depends on whether a
/// verdict was memoized or recomputed.
pub(crate) type LintMemo = ShardedCache<u64, Arc<(bool, Vec<Diagnostic>)>>;

static LINT_MEMO_HITS: Counter = Counter::new("lint.memo.hits");
static LINT_MEMO_MISSES: Counter = Counter::new("lint.memo.misses");
static LINT_GATE_REJECTED: Counter = Counter::new("lint.gate.rejected");
static FLOW_GATE_SKIPPED: Counter = Counter::new("flow.gate.skipped");

/// The static relevance gate (`acr-flow`). A candidate whose patch is
/// provably invisible to every protected prefix — each spec property's
/// destination cone — is *served* the base verification instead of
/// being simulated: invisibility means full simulation would compute
/// exactly this value (see `acr_flow::gate`), so reports are
/// byte-identical with the gate on or off.
pub(crate) struct FlowGate {
    /// Destination cones of every spec property.
    pub protected: Vec<Prefix>,
    /// The committed base verification served to skipped candidates.
    pub base: Verification,
}

/// What the validate stage concluded for one candidate patch.
// Short-lived per-batch values, one per candidate; the variant size skew
// (a full Verification vs unit) isn't worth a Box hop.
#[allow(clippy::large_enum_variant)]
pub(crate) enum CandidateOutcome {
    /// The patch failed to apply or its devices no longer re-parse; it
    /// never reached the validators.
    Invalid,
    /// Rejected by the static lint gate before simulation.
    LintRejected,
    /// Verified (freshly simulated or memo-served).
    Validated {
        verification: Verification,
        stats: IncrementalStats,
        diags: Vec<Diagnostic>,
        /// Arena the verification's roots resolve in; `None` means the
        /// verifier's persistent arena (sequential compute path).
        arena: Option<DerivArena>,
        /// Served from the memo-cache (counts as `validations_cached`).
        cached: bool,
    },
    /// Skipped by the static relevance gate: the patch is provably
    /// invisible to every protected prefix, so the base verification
    /// *is* this candidate's verification (roots resolve in the
    /// persistent arena, where the base was committed).
    FlowSkipped {
        verification: Verification,
        diags: Vec<Diagnostic>,
    },
}

/// One batch entry, index-aligned with the incoming patch order.
pub(crate) struct ValidatedCandidate {
    pub patch: Patch,
    pub cfg: Option<NetworkConfig>,
    pub outcome: CandidateOutcome,
}

struct Prepared {
    patch: Patch,
    cfg: NetworkConfig,
    fp: u64,
}

/// What to do for one prepared candidate.
enum Plan {
    /// Reuse the resolution of an earlier item index (same rendered
    /// config; only planned when the cache is enabled).
    Dup(usize),
    /// The memo-cache held this fingerprint at batch start.
    Hit(Arc<CandidateEntry>),
    /// The flow gate proved the patch invisible: lint it, then serve
    /// the base verification without simulating (and without touching
    /// the memo-cache — there is nothing to store).
    Serve,
    /// Simulate.
    Compute,
}

/// Worker-side resolution, before the coordinator's cache post-pass.
#[allow(clippy::large_enum_variant)]
enum Resolved {
    LintRejected,
    /// Freshly simulated.
    Fresh {
        /// Engine-facing verdict; roots resolve in `src` when present,
        /// in the persistent arena otherwise.
        verification: Verification,
        src: Option<DerivArena>,
        /// Pruned payload for the memo-cache (`Some` iff caching is on).
        cache_entry: Option<CandidateEntry>,
        stats: IncrementalStats,
        diags: Vec<Diagnostic>,
    },
    /// Memo-served.
    Cached {
        entry: Arc<CandidateEntry>,
        diags: Vec<Diagnostic>,
    },
    /// Flow-gate served: lint ran (and passed), simulation was skipped.
    Served {
        diags: Vec<Diagnostic>,
    },
}

/// Validates a batch of candidate patches against the committed base.
/// Results come back index-aligned with `fresh`; all cache mutations
/// happen here, in candidate-index order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn validate_batch(
    fresh: Vec<Patch>,
    original: &NetworkConfig,
    iv: &mut IncrementalVerifier<'_>,
    topo: &Topology,
    lint_base: Option<&LintBase>,
    lint_memo: &LintMemo,
    cache: Option<&SimCache>,
    flow: Option<&FlowGate>,
    ctx_base: (u64, u64),
    threads: usize,
) -> Vec<ValidatedCandidate> {
    // ---- prepare: materialize configs, fingerprint, dedup ------------
    let mut out: Vec<ValidatedCandidate> = Vec::with_capacity(fresh.len());
    let mut items: Vec<(usize, Prepared)> = Vec::new();
    let mut dups: Vec<Option<usize>> = Vec::new();
    let mut by_fp: HashMap<u64, usize> = HashMap::new();
    for patch in fresh {
        let slot = out.len();
        let cfg = match patch.apply_cloned(original) {
            Ok(cfg) if reparses(&cfg, &patch) => cfg,
            _ => {
                out.push(ValidatedCandidate {
                    patch,
                    cfg: None,
                    outcome: CandidateOutcome::Invalid,
                });
                continue;
            }
        };
        let fp = cfg.fingerprint();
        let item_idx = items.len();
        let dup_of = if cache.is_some() {
            let first = *by_fp.entry(fp).or_insert(item_idx);
            (first != item_idx).then_some(first)
        } else {
            None
        };
        dups.push(dup_of);
        items.push((slot, Prepared { patch, cfg, fp }));
        out.push(ValidatedCandidate {
            patch: Patch::new(), // placeholder, replaced below
            cfg: None,
            outcome: CandidateOutcome::Invalid,
        });
    }

    // ---- plan: peek the memo-cache against batch-start state ---------
    let (ctx_fp, base_fp) = ctx_base;
    let plans: Vec<Plan> = items
        .iter()
        .zip(&dups)
        .map(|((_, it), dup)| {
            // The relevance gate outranks the memo-cache and dedup: a
            // provably invisible patch costs one clone either way, and
            // keeping it off the cache keeps cache contents independent
            // of gate order within a batch.
            if let Some(g) = flow {
                if acr_flow::patch_invisible(original, &it.patch, &g.protected) {
                    return Plan::Serve;
                }
            }
            match dup {
                Some(j) => Plan::Dup(*j),
                None => match cache.and_then(|c| c.peek_candidate((ctx_fp, base_fp, it.fp))) {
                    Some(entry) => Plan::Hit(entry),
                    None => Plan::Compute,
                },
            }
        })
        .collect();

    // ---- resolve: lint + simulate, sequentially or on the pool -------
    let worker_threads = threads.min(items.len()).max(1);
    let build_entries = cache.is_some();
    let resolved: Vec<Option<Resolved>> = if worker_threads <= 1 {
        // The legacy sequential path: computed candidates intern
        // directly into the persistent arena, in order.
        items
            .iter()
            .zip(&plans)
            .enumerate()
            .map(|(k, ((_, it), plan))| match plan {
                Plan::Dup(_) => None,
                plan => {
                    let _s = span!("engine.validate.candidate", "engine").arg("idx", k as u64);
                    Some(resolve_sequential(
                        it,
                        plan,
                        iv,
                        topo,
                        lint_base,
                        lint_memo,
                        build_entries,
                    ))
                }
            })
            .collect()
    } else {
        let validator = iv.validator();
        let base_arena = iv.arena().clone();
        let queue = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Resolved>>> =
            (0..items.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..worker_threads {
                s.spawn(|| {
                    // Lazily cloned so lint-only workers allocate nothing.
                    let mut arena: Option<DerivArena> = None;
                    loop {
                        let k = queue.fetch_add(1, Ordering::Relaxed);
                        if k >= items.len() {
                            break;
                        }
                        if matches!(plans[k], Plan::Dup(_)) {
                            continue;
                        }
                        let _s = span!("engine.validate.candidate", "engine").arg("idx", k as u64);
                        let res = resolve_worker(
                            &items[k].1,
                            &plans[k],
                            &validator,
                            &base_arena,
                            &mut arena,
                            topo,
                            lint_base,
                            lint_memo,
                            build_entries,
                        );
                        *slots[k].lock().unwrap() = Some(res);
                    }
                });
            }
        });
        slots.into_iter().map(|m| m.into_inner().unwrap()).collect()
    };

    // ---- post-pass: cache maintenance + dup resolution, index order --
    let mut finals: Vec<CandidateOutcome> = Vec::with_capacity(items.len());
    for (k, res) in resolved.into_iter().enumerate() {
        let key = (ctx_fp, base_fp, items[k].1.fp);
        let outcome = match res {
            None => {
                let j = match plans[k] {
                    Plan::Dup(j) => j,
                    _ => unreachable!("only dup plans resolve to None"),
                };
                match &finals[j] {
                    CandidateOutcome::LintRejected => CandidateOutcome::LintRejected,
                    CandidateOutcome::Validated {
                        verification,
                        stats,
                        diags,
                        arena,
                        ..
                    } => {
                        // Sequentially this would be an insert-then-hit:
                        // promote the shared entry like any other hit.
                        if let Some(c) = cache {
                            c.touch_candidate(key);
                        }
                        CandidateOutcome::Validated {
                            verification: verification.clone(),
                            stats: *stats,
                            diags: diags.clone(),
                            arena: arena.clone(),
                            cached: true,
                        }
                    }
                    // Same rendered config as a gate-served candidate:
                    // its verification is the base's too. No cache
                    // promotion — served verdicts are never stored.
                    CandidateOutcome::FlowSkipped {
                        verification,
                        diags,
                    } => {
                        FLOW_GATE_SKIPPED.inc();
                        CandidateOutcome::FlowSkipped {
                            verification: verification.clone(),
                            diags: diags.clone(),
                        }
                    }
                    CandidateOutcome::Invalid => unreachable!("dups are valid by construction"),
                }
            }
            Some(Resolved::LintRejected) => CandidateOutcome::LintRejected,
            Some(Resolved::Served { diags }) => {
                FLOW_GATE_SKIPPED.inc();
                let gate = flow.expect("Serve plans only exist with a gate");
                CandidateOutcome::FlowSkipped {
                    verification: gate.base.clone(),
                    diags,
                }
            }
            Some(Resolved::Cached { entry, diags }) => {
                if let Some(c) = cache {
                    c.touch_candidate(key);
                }
                CandidateOutcome::Validated {
                    verification: entry.verification.clone(),
                    stats: IncrementalStats {
                        recomputed: 0,
                        reused: entry.universe,
                        ..IncrementalStats::default()
                    },
                    diags,
                    arena: Some(entry.arena.clone()),
                    cached: true,
                }
            }
            Some(Resolved::Fresh {
                verification,
                src,
                cache_entry,
                stats,
                diags,
            }) => {
                if let (Some(c), Some(entry)) = (cache, cache_entry) {
                    c.insert_candidate(key, entry);
                }
                CandidateOutcome::Validated {
                    verification,
                    stats,
                    diags,
                    arena: src,
                    cached: false,
                }
            }
        };
        finals.push(outcome);
    }

    for ((slot, it), outcome) in items.into_iter().zip(finals) {
        out[slot] = ValidatedCandidate {
            patch: it.patch,
            cfg: Some(it.cfg),
            outcome,
        };
    }
    out
}

/// Lint verdict for one candidate, memoized by config fingerprint.
/// Returns `(introduces a fresh error, diagnostics)`.
fn lint_verdict(
    it: &Prepared,
    topo: &Topology,
    lint_base: Option<&LintBase>,
    lint_memo: &LintMemo,
) -> (bool, Vec<Diagnostic>) {
    let Some(base) = lint_base else {
        return (false, Vec::new());
    };
    if let Some(hit) = lint_memo.peek(&it.fp) {
        LINT_MEMO_HITS.inc();
        return (hit.0, hit.1.clone());
    }
    LINT_MEMO_MISSES.inc();
    let mut models = base.models.clone();
    for r in it.patch.routers() {
        if let (Some(&i), Some(dc)) = (base.idx.get(&r), it.cfg.device(r)) {
            models[i] = DeviceModel::from_config(dc);
        }
    }
    let report = lint_with_models(topo, &it.cfg, &models);
    let fresh_error = report.errors().any(|d| !base.keys.contains(&d.key()));
    let verdict = (fresh_error, report.diagnostics);
    lint_memo.insert(it.fp, Arc::new(verdict.clone()));
    verdict
}

/// Sequential resolution: computes through the persistent verifier so
/// `threads = 1` keeps the exact legacy code path (same arena, same
/// interning order).
fn resolve_sequential(
    it: &Prepared,
    plan: &Plan,
    iv: &mut IncrementalVerifier<'_>,
    topo: &Topology,
    lint_base: Option<&LintBase>,
    lint_memo: &LintMemo,
    build_entry: bool,
) -> Resolved {
    let (fresh_error, diags) = lint_verdict(it, topo, lint_base, lint_memo);
    if fresh_error {
        LINT_GATE_REJECTED.inc();
        return Resolved::LintRejected;
    }
    match plan {
        Plan::Hit(entry) => Resolved::Cached {
            entry: entry.clone(),
            diags,
        },
        Plan::Serve => Resolved::Served { diags },
        Plan::Compute => {
            let verification = iv.verify_candidate(&it.cfg, &it.patch);
            let stats = iv.last_stats();
            let cache_entry = build_entry
                .then(|| make_entry(&verification, iv.arena(), stats.recomputed + stats.reused));
            Resolved::Fresh {
                verification,
                src: None,
                cache_entry,
                stats,
                diags,
            }
        }
        Plan::Dup(_) => unreachable!("dups never reach resolve_sequential"),
    }
}

/// Worker-side resolution: simulates into a private arena clone and
/// prunes the verdict before handing it back to the coordinator.
#[allow(clippy::too_many_arguments)]
fn resolve_worker(
    it: &Prepared,
    plan: &Plan,
    validator: &CandidateValidator<'_, '_>,
    base_arena: &DerivArena,
    arena: &mut Option<DerivArena>,
    topo: &Topology,
    lint_base: Option<&LintBase>,
    lint_memo: &LintMemo,
    build_entry: bool,
) -> Resolved {
    let (fresh_error, diags) = lint_verdict(it, topo, lint_base, lint_memo);
    if fresh_error {
        LINT_GATE_REJECTED.inc();
        return Resolved::LintRejected;
    }
    match plan {
        Plan::Hit(entry) => Resolved::Cached {
            entry: entry.clone(),
            diags,
        },
        Plan::Serve => Resolved::Served { diags },
        Plan::Compute => {
            let arena = arena.get_or_insert_with(|| base_arena.clone());
            let (verification, stats) = validator.verify_candidate(&it.cfg, &it.patch, arena);
            // Prune: the worker arena is private and dies with the
            // batch, so the verdict leaves with exactly its own closure.
            let entry = make_entry(&verification, arena, stats.recomputed + stats.reused);
            Resolved::Fresh {
                verification: entry.verification.clone(),
                src: Some(entry.arena.clone()),
                cache_entry: build_entry.then_some(entry),
                stats,
                diags,
            }
        }
        Plan::Dup(_) => unreachable!("dups never reach resolve_worker"),
    }
}

/// Safety net: a candidate's touched devices must print to parseable text.
pub(crate) fn reparses(cfg: &NetworkConfig, patch: &Patch) -> bool {
    patch.routers().into_iter().all(|r| match cfg.device(r) {
        Some(d) => acr_cfg::parse::parse_device(d.name(), &d.to_text()).is_ok(),
        None => false,
    })
}

// The worker-thread clamp moved to `acr-sim`'s shard module so the
// sharded convergence runner and this candidate pool share one budget
// policy; re-exported here to keep the crate-local import paths.
pub(crate) use acr_sim::resolve_threads;
