//! # acr-core
//!
//! The paper's primary contribution: **localize–fix–validate** automatic
//! configuration repair (Figure 4).
//!
//! - [`ctx`] — the repair context a fix-generation step sees: current
//!   configuration, verification records, provenance arena, destination
//!   resolution helpers.
//! - [`templates`] — the change operators. *Atomic operators* are the
//!   `acr-cfg` patch edits; *change templates* bundle them into the nine
//!   repair patterns distilled from Table 1 (prefix-list adjustment,
//!   policy disable/recreate, peer-group fixes, redistribution fixes, PBR
//!   fixes, AS-number fixes). Templates attach to statement kinds, so a
//!   suspicious line selects its template set — and, as §5 notes, the
//!   "fix place" a template edits need not be the suspicious line itself.
//! - [`symbolize`] — local symbolization: a template leaves symbolic
//!   holes; constraints `P` (passing tests keep passing) and `F` (failing
//!   tests stop failing) are collected from test coverage and solved as
//!   `P ∧ ¬F` with `acr-smt`, reproducing the worked example's
//!   `var = {10.70/16, 20.0/16}`.
//! - [`strategy`] — fix-generation strategies (§4.2): brute force
//!   (suspicious lines × applicable templates) and a genetic strategy
//!   (random template application to the original or any evolved variant,
//!   plus single-point patch crossover).
//! - [`engine`] — the repair loop with the paper's fitness function
//!   (number of failed tests) and its three termination conditions:
//!   fitness 0, an empty candidate set, or the 500-iteration cap.
//! - [`space`] — search-space accounting for the Figure 3 comparison.
//! - [`universal`] — the §6 "universal change operators" direction:
//!   donor-based plastic-surgery copying from same-role devices, an
//!   operator set that needs no incident history.

pub mod api;
pub mod ctx;
pub mod engine;
pub mod space;
pub mod strategy;
pub mod symbolize;
pub mod templates;
pub mod universal;
mod validate;

pub use acr_verify::SimCache;
pub use api::{AcrStrategy, RepairStrategy, StrategyVerdict};
pub use ctx::RepairCtx;
pub use engine::{
    IterationStats, OperatorSet, PatchSegment, RepairConfig, RepairEngine, RepairOutcome,
    RepairReport, StageTimes,
};
pub use strategy::Strategy;
pub use templates::{templates_for, CandidateFix, TemplateKind};
pub use universal::universal_candidates;
