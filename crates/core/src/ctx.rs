//! The context a fix-generation step works in.

use acr_cfg::{DeviceModel, LineId, NetworkConfig, Stmt};
use acr_net_types::{Asn, Ipv4Addr, Prefix, RouterId};
use acr_sim::DerivArena;
use acr_topo::Topology;
use acr_verify::{TestRecord, Verification};
use std::collections::BTreeSet;

/// Everything templates and symbolization may consult when turning a
/// suspicious line into candidate patches.
pub struct RepairCtx<'a> {
    pub topo: &'a Topology,
    /// The configuration the suspicious line indexes into (the current
    /// repair variant, not necessarily the original network).
    pub cfg: &'a NetworkConfig,
    /// Verification of `cfg` (records + coverage matrix).
    pub verification: &'a Verification,
    /// Arena resolving the verification's derivation roots.
    pub arena: &'a DerivArena,
    /// Semantic models of `cfg`, indexed by router.
    pub models: &'a [DeviceModel],
}

impl<'a> RepairCtx<'a> {
    /// The statement at a line, if it exists.
    pub fn stmt(&self, line: LineId) -> Option<&Stmt> {
        self.cfg.stmt(line)
    }

    /// The semantic model of a router.
    pub fn model(&self, router: RouterId) -> &DeviceModel {
        &self.models[router.index()]
    }

    /// All destination prefixes the test suite exercises (the candidate
    /// universe for symbolic prefix-set holes).
    pub fn test_dst_prefixes(&self) -> Vec<Prefix> {
        let mut out: BTreeSet<Prefix> = BTreeSet::new();
        for rec in &self.verification.records {
            if let Some(p) = self.dst_prefix_of(rec) {
                out.insert(p);
            }
        }
        out.into_iter().collect()
    }

    /// The routed destination prefix of a test: the most specific prefix
    /// among attachments and originations that contains the test's
    /// destination address.
    pub fn dst_prefix_of(&self, rec: &TestRecord) -> Option<Prefix> {
        self.prefix_owning(rec.flow.dst).map(|(p, _)| p)
    }

    /// `(prefix, owner router)` of the most specific attachment containing
    /// `addr`.
    pub fn prefix_owning(&self, addr: Ipv4Addr) -> Option<(Prefix, RouterId)> {
        self.topo
            .attachments()
            .filter(|(_, p)| p.contains(addr))
            .max_by_key(|(_, p)| p.len())
            .map(|(r, p)| (p, r))
    }

    /// Every AS number configured anywhere in the network.
    pub fn all_asns(&self) -> Vec<Asn> {
        let mut out: BTreeSet<Asn> = BTreeSet::new();
        for m in self.models {
            if let Some((a, _)) = m.asn {
                out.insert(a);
            }
            for peer in m.peers.values() {
                if let Some((a, _)) = peer.asn {
                    out.insert(a);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The AS the router at the far end of `addr` actually runs, if any —
    /// used to fix AS mismatches with the true value.
    pub fn actual_as_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        let owner = self.topo.owner_of(addr)?;
        self.models[owner.index()].asn.map(|(a, _)| a)
    }

    /// The failed test records.
    pub fn failures(&self) -> impl Iterator<Item = &TestRecord> {
        self.verification.failures()
    }

    /// Coverage lines of a test, from the verification matrix.
    pub fn coverage_of(&self, test: acr_prov::TestId) -> Option<&BTreeSet<LineId>> {
        self.verification
            .matrix
            .tests()
            .iter()
            .find(|t| t.test == test)
            .map(|t| &t.lines)
    }
}
