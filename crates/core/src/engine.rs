//! The localize–fix–validate repair loop (Figure 4).
//!
//! Each iteration:
//!
//! 1. **Localize** — score every covered line of each surviving variant
//!    with SBFL (Tarantula by default) and take the most suspicious ones,
//! 2. **Fix** — instantiate the templates attached to those lines
//!    (brute-force Cartesian product, or genetic mutation + crossover),
//! 3. **Validate** — run each candidate through the DNA-style incremental
//!    verifier; the fitness of a candidate is its number of failed tests,
//!    and candidates with fitness above the previous iteration's are
//!    discarded (§5, Fitness Function).
//!
//! Termination (§5): a feasible update is found (fitness 0), no more
//! candidates can be generated (S = ∅), or the iteration cap (500) is hit.

use crate::ctx::RepairCtx;
use crate::strategy::{crossover, Strategy};
use crate::templates::{candidates_for_line, CandidateFix, TemplateKind};
use crate::universal::universal_candidates;
use crate::validate::{
    resolve_threads, validate_batch, CandidateOutcome, FlowGate, LintBase, LintMemo,
};
use acr_cfg::{DeviceModel, LineId, NetworkConfig, Patch};
use acr_lint::{lint_with_models, Diagnostic};
use acr_localize::{localize, localize_boosted, Ranking, SbflFormula};
use acr_net_types::{RouterId, SplitMix64};
use acr_obs::metrics::Counter;
use acr_obs::{journal, json, Stages};
use acr_sim::ShardedCache;
use acr_topo::Topology;
use acr_verify::{IncrementalVerifier, SimCache, Spec, Verification};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

static RUNS: Counter = Counter::new("engine.runs");
static ITERATIONS: Counter = Counter::new("engine.iterations");
static CAND_GENERATED: Counter = Counter::new("engine.candidates.generated");
static CAND_LINT_REJECTED: Counter = Counter::new("engine.candidates.lint_rejected");
static CAND_VALIDATED: Counter = Counter::new("engine.candidates.validated");
static CAND_CACHED: Counter = Counter::new("engine.candidates.cached");
static CAND_INVALID: Counter = Counter::new("engine.candidates.invalid");
static CAND_KEPT: Counter = Counter::new("engine.candidates.kept");
static CAND_FLOW_SKIPPED: Counter = Counter::new("engine.candidates.flow_skipped");
static FLOW_FIXPOINT_ITERATIONS: Counter = Counter::new("flow.fixpoint.iterations");
static FLOW_FACTS: Counter = Counter::new("flow.facts");

/// The paper's iteration cap.
pub const DEFAULT_MAX_ITERATIONS: usize = 500;

/// Which change-operator vocabulary the engine draws candidates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorSet {
    /// The curated Table-1 templates (the paper's current design).
    Curated,
    /// Donor-based universal operators only (the paper's §6 direction).
    Universal,
    /// Both vocabularies, deduplicated by the candidate patch.
    Both,
}

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    pub max_iterations: usize,
    pub strategy: Strategy,
    pub formula: SbflFormula,
    /// RNG seed — repairs are fully reproducible.
    pub seed: u64,
    /// Population cap across iterations.
    pub max_population: usize,
    /// Test packets sampled per property.
    pub samples_per_property: u32,
    /// Restrict fix generation to these templates (`None` = all). Useful
    /// to reproduce a specific repair style, e.g. the paper's prefix-list
    /// adjustments on the Figure 2 incident. Only filters the curated
    /// vocabulary.
    pub allowed_templates: Option<Vec<TemplateKind>>,
    /// The operator vocabulary (curated templates, §6 universal donors,
    /// or both).
    pub operators: OperatorSet,
    /// Run the `acr-lint` static pass alongside the loop: lint findings
    /// boost SBFL suspiciousness, and candidates that introduce a *new*
    /// lint error (relative to the broken baseline) are rejected before
    /// they reach the simulator.
    pub lint: bool,
    /// Worker threads for the validate stage. `0` = available
    /// parallelism; `1` = the exact legacy sequential path. Results are
    /// byte-identical at every setting; the `ACR_THREADS` environment
    /// variable sets the default.
    pub threads: usize,
    /// The simulation memo-cache. Candidates whose rendered config was
    /// validated before (against the same base, topology and test
    /// suite) are served from memo and counted in
    /// [`RepairReport::validations_cached`]. Share one `Arc` across
    /// engines and baselines to pool their work; `None` disables
    /// memoization entirely.
    pub cache: Option<Arc<SimCache>>,
    /// Delta-compile candidate simulators against the committed base
    /// (recompiling only patched devices, re-establishing sessions only
    /// where they can change). Construction-only: invalidation analysis
    /// and therefore reports are byte-identical with this on or off. The
    /// `ACR_DELTA` environment variable sets the default (on unless
    /// `0`/`false`/`off`).
    pub delta: bool,
    /// The `acr-flow` static relevance gate: candidates whose patch is
    /// provably invisible to every spec property's prefix cone are
    /// served the base verification instead of being simulated (counted
    /// in [`RepairReport::validations_skipped`]). Serving is exact, so
    /// reports are byte-identical with this on or off; the flow
    /// analysis itself (lint rules, localization prior) always runs.
    /// The `ACR_FLOW` environment variable sets the default (on unless
    /// `0`/`false`/`off`).
    pub flow: bool,
    /// Free-form labels carried verbatim into [`RepairReport::tags`] and
    /// the run journal — the scenario harness stamps the scenario family
    /// (e.g. `family:interacting`) here so every report and journal line
    /// is attributable to its corpus slice. Never interpreted by the
    /// engine.
    pub tags: Vec<String>,
}

/// The `threads` default: the `ACR_THREADS` env var, else `0` (= auto).
fn default_threads() -> usize {
    std::env::var("ACR_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The `delta` default: on, unless `ACR_DELTA` says `0`/`false`/`off`.
fn default_delta() -> bool {
    !matches!(
        std::env::var("ACR_DELTA").ok().as_deref(),
        Some("0") | Some("false") | Some("off")
    )
}

/// The `flow` default: on, unless `ACR_FLOW` says `0`/`false`/`off`.
fn default_flow() -> bool {
    !matches!(
        std::env::var("ACR_FLOW").ok().as_deref(),
        Some("0") | Some("false") | Some("off")
    )
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_iterations: DEFAULT_MAX_ITERATIONS,
            strategy: Strategy::default(),
            formula: SbflFormula::Tarantula,
            seed: 7,
            max_population: 8,
            samples_per_property: 1,
            allowed_templates: None,
            operators: OperatorSet::Curated,
            lint: true,
            threads: default_threads(),
            cache: Some(Arc::new(SimCache::default())),
            delta: default_delta(),
            flow: default_flow(),
            tags: Vec::new(),
        }
    }
}

/// Provenance of one slice of a repair patch: which template produced
/// it, at which suspicious line, in which iteration, and how many edits
/// it contributed. A multi-patch repair's [`RepairReport::attribution`]
/// is the ordered list of segments behind the winning patch — the answer
/// to "which fix addressed which fault".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchSegment {
    /// Iteration that produced this segment (0 = the empty root).
    pub iteration: usize,
    /// The producing operator: a `TemplateKind` debug name, `"crossover"`
    /// for recombined offspring, or `"pair"` for a beam pairwise combine.
    pub op: String,
    /// The suspicious line the operator expanded (crossover has none).
    pub origin: Option<LineId>,
    /// Edits this segment contributed to the full patch.
    pub edits: usize,
}

impl PatchSegment {
    fn of_fix(iteration: usize, fix: &CandidateFix) -> Self {
        PatchSegment {
            iteration,
            op: format!("{:?}", fix.template),
            origin: Some(fix.origin),
            edits: fix.patch.len(),
        }
    }
}

/// Per-iteration accounting (feeds the Figure 4 workflow experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationStats {
    pub iteration: usize,
    /// The iteration's fitness: the largest fitness among preserved
    /// updates (§5), or the previous fitness if nothing was preserved.
    pub fitness: usize,
    /// Best (lowest) fitness in the population after this iteration.
    pub best_fitness: usize,
    pub generated: usize,
    pub kept: usize,
    /// Control-plane prefixes re-simulated / reused across this
    /// iteration's validations.
    pub recomputed_prefixes: usize,
    pub reused_prefixes: usize,
    /// Candidates rejected by the static lint gate before simulation.
    pub lint_rejected: usize,
    /// Candidates actually simulated this iteration.
    pub validated: usize,
    /// Candidates served from the simulation memo-cache.
    pub cached: usize,
    /// Candidates whose patch failed to apply or re-parse.
    pub invalid: usize,
    /// Candidates skipped by the static relevance gate (served the base
    /// verification without simulation).
    pub flow_skipped: usize,
}

/// How a repair run ended.
#[derive(Debug, Clone)]
pub enum RepairOutcome {
    /// A feasible update: every test passes.
    Fixed {
        patch: Patch,
        repaired: NetworkConfig,
    },
    /// The candidate set dried up before reaching fitness 0.
    NoCandidates {
        best_patch: Patch,
        best_fitness: usize,
    },
    /// The iteration cap was reached.
    IterationLimit {
        best_patch: Patch,
        best_fitness: usize,
    },
}

impl RepairOutcome {
    /// Whether the run produced a feasible update.
    pub fn is_fixed(&self) -> bool {
        matches!(self, RepairOutcome::Fixed { .. })
    }
}

/// Wall-clock split across the repair loop's stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Initial commit of the broken configuration (base verification
    /// plus the lint baseline).
    pub commit: Duration,
    /// Localize + fix: candidate generation, summed over iterations.
    pub generate: Duration,
    /// Candidate validation (lint gate, memo-cache, simulation),
    /// summed over iterations.
    pub validate: Duration,
    /// Selection and population bookkeeping, summed over iterations.
    pub select: Duration,
    /// Within validation: device-model compilation (and origin-index
    /// maintenance), summed over every simulator build.
    pub sim_compile: Duration,
    /// Within validation: BGP session establishment.
    pub sim_establish: Duration,
    /// Within validation: per-prefix simulation and FIB assembly.
    pub sim_simulate: Duration,
    /// Within `sim_simulate`: per-prefix convergence alone (worklist
    /// iteration and warm-start probes, excluding merge/FIB assembly).
    pub sim_converge: Duration,
}

/// The full report of one repair run.
#[derive(Debug, Clone)]
pub struct RepairReport {
    pub outcome: RepairOutcome,
    pub iterations: Vec<IterationStats>,
    pub initial_failed: usize,
    /// Candidate validations that actually ran a simulation.
    pub validations: usize,
    /// Candidate validations served from the simulation memo-cache
    /// (identical verdicts, no simulation).
    pub validations_cached: usize,
    /// Candidate validations skipped entirely by the `acr-flow` static
    /// relevance gate (provably invisible patches, served the base
    /// verification).
    pub validations_skipped: usize,
    /// Per-stage wall-clock breakdown.
    pub stage: StageTimes,
    pub wall: Duration,
    /// Per-patch provenance of the best patch: one [`PatchSegment`] per
    /// operator application that built it, in application order.
    pub attribution: Vec<PatchSegment>,
    /// The [`RepairConfig::tags`] of the producing run, verbatim.
    pub tags: Vec<String>,
}

impl RepairReport {
    /// Number of iterations executed.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// The candidate-accounting identity every report must satisfy:
    /// per iteration, every generated candidate lands in exactly one
    /// outcome bucket (`generated` equals the sum of `invalid`,
    /// `lint_rejected`, `validated`, `cached` and `flow_skipped`), so
    /// the candidates that survive the static gates decompose as
    /// *attempted = simulated plus cached plus flow-skipped*; and the
    /// report totals are exactly the per-iteration sums. Returns a
    /// description of the first violated equation.
    pub fn check_accounting(&self) -> Result<(), String> {
        let (mut sim, mut cached, mut skipped) = (0usize, 0usize, 0usize);
        for it in &self.iterations {
            let buckets =
                it.invalid + it.lint_rejected + it.validated + it.cached + it.flow_skipped;
            if it.generated != buckets {
                return Err(format!(
                    "iteration {}: generated {} != invalid {} + lint_rejected {} + validated {} + cached {} + flow_skipped {}",
                    it.iteration, it.generated, it.invalid, it.lint_rejected, it.validated,
                    it.cached, it.flow_skipped
                ));
            }
            let attempted = it.generated - it.invalid - it.lint_rejected;
            if attempted != it.validated + it.cached + it.flow_skipped {
                return Err(format!(
                    "iteration {}: attempted {} != simulated {} + cached {} + flow_skipped {}",
                    it.iteration, attempted, it.validated, it.cached, it.flow_skipped
                ));
            }
            sim += it.validated;
            cached += it.cached;
            skipped += it.flow_skipped;
        }
        if sim != self.validations {
            return Err(format!(
                "validations {} != per-iteration sum {sim}",
                self.validations
            ));
        }
        if cached != self.validations_cached {
            return Err(format!(
                "validations_cached {} != per-iteration sum {cached}",
                self.validations_cached
            ));
        }
        if skipped != self.validations_skipped {
            return Err(format!(
                "validations_skipped {} != per-iteration sum {skipped}",
                self.validations_skipped
            ));
        }
        let attributed: usize = self.attribution.iter().map(|s| s.edits).sum();
        let patch_len = match &self.outcome {
            RepairOutcome::Fixed { patch, .. } => patch.len(),
            RepairOutcome::NoCandidates { best_patch, .. }
            | RepairOutcome::IterationLimit { best_patch, .. } => best_patch.len(),
        };
        if attributed != patch_len {
            return Err(format!(
                "attribution covers {attributed} edits but the best patch has {patch_len}"
            ));
        }
        Ok(())
    }
}

/// One surviving repair variant.
struct Variant {
    cfg: NetworkConfig,
    /// Patch from the *original* configuration (edits apply sequentially).
    patch: Patch,
    verification: Verification,
    fitness: usize,
    /// Lint findings on this variant (empty when linting is off) — they
    /// boost localization when the variant is expanded.
    diags: Vec<Diagnostic>,
    /// Provenance of `patch`, one segment per operator application.
    segments: Vec<PatchSegment>,
}

/// The repair engine, bound to a topology and spec.
pub struct RepairEngine<'a> {
    topo: &'a Topology,
    spec: &'a Spec,
    config: RepairConfig,
}

impl<'a> RepairEngine<'a> {
    /// Creates an engine with the given tunables.
    pub fn new(topo: &'a Topology, spec: &'a Spec, config: RepairConfig) -> Self {
        RepairEngine { topo, spec, config }
    }

    /// Creates an engine with default tunables.
    pub fn with_defaults(topo: &'a Topology, spec: &'a Spec) -> Self {
        Self::new(topo, spec, RepairConfig::default())
    }

    /// Runs localize–fix–validate on `original` until one of the paper's
    /// three termination conditions fires.
    pub fn repair(&self, original: &NetworkConfig) -> RepairReport {
        let stages = Stages::new();
        RUNS.inc();
        let commit_guard = stages.time("engine.commit", "engine");
        let mut rng = SplitMix64::new(self.config.seed);
        let mut iv = IncrementalVerifier::with_samples(
            self.topo,
            self.spec,
            self.config.samples_per_property,
        );
        iv.set_delta(self.config.delta);
        let base_verification = iv.commit(original);
        let initial_failed = base_verification.failed_count();

        // Static baseline: the broken network's own lint findings. The
        // gate only rejects candidates that introduce *new* error keys —
        // pre-existing ones may well be the fault under repair.
        let lint_base = self.config.lint.then(|| {
            let models = models_of(self.topo, original);
            let report = lint_with_models(self.topo, original, &models);
            let idx: HashMap<RouterId, usize> = self
                .topo
                .routers()
                .iter()
                .enumerate()
                .map(|(i, r)| (r.id, i))
                .collect();
            LintBase {
                models,
                idx,
                keys: report.keys(),
                diags: report.diagnostics,
            }
        });
        let base_diags = lint_base
            .as_ref()
            .map(|b| b.diags.clone())
            .unwrap_or_default();

        // Network-wide dataflow facts over the broken base. The
        // localization prior and the journal's flow summary use them
        // unconditionally (so `ACR_FLOW=0` cannot change trajectories);
        // `config.flow` only arms the candidate-skipping gate.
        let flow_facts = acr_flow::analyze(self.topo, original);
        FLOW_FIXPOINT_ITERATIONS.add(flow_facts.iterations);
        FLOW_FACTS.add(flow_facts.fact_count() as u64);
        let flow_prior = flow_prior(self.spec, &base_verification, &flow_facts);
        let flow_gate = self.config.flow.then(|| FlowGate {
            protected: self.spec.properties.iter().map(|p| p.hs.dst).collect(),
            base: base_verification.clone(),
        });

        // Validate-stage plumbing: the memo-cache keys every candidate
        // under (verifier context, committed base, candidate config),
        // the lint memo is per-run (its verdicts depend on the base),
        // and `threads` sizes the scoped worker pool.
        let ctx_base = (iv.verifier().context_fingerprint(), original.fingerprint());
        let cache = self.config.cache.as_deref();
        let lint_memo: LintMemo = ShardedCache::with_capacity(4096);
        let threads = resolve_threads(self.config.threads);
        drop(commit_guard);

        let mut iterations = Vec::new();
        let mut validations = 0usize;
        let mut validations_cached = 0usize;
        let mut validations_skipped = 0usize;

        self.journal_run_start(original, initial_failed, threads);
        if acr_obs::enabled(acr_obs::JOURNAL) {
            journal::emit(
                &json::Obj::new()
                    .str("event", "flow_summary")
                    .u64("ts_us", journal::now_us())
                    .u64("fixpoint_iterations", flow_facts.iterations)
                    .int("facts", flow_facts.fact_count())
                    .int("prior_lines", flow_prior.len())
                    .bool("gate", self.config.flow)
                    .build(),
            );
        }

        if initial_failed == 0 {
            return finish(
                RepairOutcome::Fixed {
                    patch: Patch::new(),
                    repaired: original.clone(),
                },
                iterations,
                initial_failed,
                validations,
                validations_cached,
                validations_skipped,
                iv.shard_totals(),
                &stages,
                Vec::new(),
                &self.config.tags,
            );
        }

        let mut population: Vec<Variant> = vec![Variant {
            cfg: original.clone(),
            patch: Patch::new(),
            fitness: initial_failed,
            verification: base_verification,
            diags: base_diags,
            segments: Vec::new(),
        }];
        let mut prev_fitness = initial_failed;
        let mut seen: HashSet<Patch> = HashSet::new();
        seen.insert(Patch::new());

        for iteration in 1..=self.config.max_iterations {
            ITERATIONS.inc();
            // Ranked suspects for the journal: a pure re-localization of
            // the current best variant (no RNG draw), computed only when
            // the journal is on — reports are identical either way.
            let suspects = if acr_obs::enabled(acr_obs::JOURNAL) {
                self.suspects_of(best_of(&population), &flow_prior)
            } else {
                String::new()
            };

            // ---- localize + fix: generate candidate full patches -------
            let fresh: Vec<(Patch, Vec<PatchSegment>)> = {
                let _g = stages.time("engine.generate", "engine");
                self.generate(&population, &iv, &flow_prior, iteration, &mut rng)
                    .into_iter()
                    .filter(|(p, _)| seen.insert(p.clone()))
                    .collect()
            };
            let generated = fresh.len();
            CAND_GENERATED.add(generated as u64);
            if generated == 0 {
                let best = best_of(&population);
                return finish(
                    RepairOutcome::NoCandidates {
                        best_patch: best.patch.clone(),
                        best_fitness: best.fitness,
                    },
                    iterations,
                    initial_failed,
                    validations,
                    validations_cached,
                    validations_skipped,
                    iv.shard_totals(),
                    &stages,
                    best.segments.clone(),
                    &self.config.tags,
                );
            }
            let (fresh_patches, fresh_segments): (Vec<Patch>, Vec<Vec<PatchSegment>>) =
                fresh.into_iter().unzip();

            // ---- validate: lint gate + memo-cache + worker pool --------
            let validate_guard = stages.time("engine.validate", "engine");
            let batch = validate_batch(
                fresh_patches,
                original,
                &mut iv,
                self.topo,
                lint_base.as_ref(),
                &lint_memo,
                cache,
                flow_gate.as_ref(),
                ctx_base,
                threads,
            );
            let mut kept: Vec<Variant> = Vec::new();
            let (mut recomputed, mut reused) = (0, 0);
            let (mut lint_rejected, mut validated, mut cached_count, mut invalid) = (0, 0, 0, 0);
            let mut flow_skipped = 0usize;
            // Journal rows for this iteration's candidates, in batch
            // (candidate-index) order.
            let mut cand_rows: Vec<String> = Vec::new();
            let journal_on = acr_obs::enabled(acr_obs::JOURNAL);
            for (vc, segs) in batch.into_iter().zip(fresh_segments) {
                let mut row = journal_on.then(|| {
                    json::Obj::new()
                        .str("patch", &vc.patch.to_string())
                        .int("segments", segs.len())
                });
                match vc.outcome {
                    CandidateOutcome::Invalid => {
                        invalid += 1;
                        if let Some(r) = row.take() {
                            cand_rows.push(r.str("outcome", "invalid").build());
                        }
                    }
                    CandidateOutcome::LintRejected => {
                        lint_rejected += 1;
                        if let Some(r) = row.take() {
                            cand_rows.push(r.str("outcome", "lint_rejected").build());
                        }
                    }
                    CandidateOutcome::Validated {
                        verification,
                        stats,
                        diags,
                        arena,
                        cached,
                    } => {
                        if cached {
                            cached_count += 1;
                        } else {
                            validated += 1;
                        }
                        recomputed += stats.recomputed;
                        reused += stats.reused;
                        stages.add("sim.compile", stats.compile);
                        stages.add("sim.establish", stats.establish);
                        stages.add("sim.simulate", stats.simulate);
                        stages.add("sim.converge", stats.converge);
                        let fitness = verification.failed_count();
                        // §5: discard candidates whose fitness exceeds
                        // the previous iteration's fitness.
                        let discard = fitness > prev_fitness;
                        if let Some(r) = row.take() {
                            cand_rows.push(
                                r.str("outcome", if discard { "discarded" } else { "kept" })
                                    .int("fitness", fitness)
                                    .bool("cached", cached)
                                    .build(),
                            );
                        }
                        if discard {
                            continue;
                        }
                        // Worker- or cache-computed verdicts carry their
                        // own pruned arena; re-intern the closures into
                        // the persistent one (index order, so the arena
                        // grows deterministically).
                        let verification = match &arena {
                            Some(src) => iv.absorb_verification(&verification, src),
                            None => verification,
                        };
                        kept.push(Variant {
                            cfg: vc.cfg.expect("validated candidates carry a config"),
                            patch: vc.patch,
                            verification,
                            fitness,
                            diags,
                            segments: segs,
                        });
                    }
                    CandidateOutcome::FlowSkipped {
                        verification,
                        diags,
                    } => {
                        flow_skipped += 1;
                        // The served verification *is* the base's, so its
                        // fitness equals the previous baseline — never
                        // discarded, and its derivation roots already
                        // resolve in the persistent arena.
                        let fitness = verification.failed_count();
                        let discard = fitness > prev_fitness;
                        if let Some(r) = row.take() {
                            cand_rows.push(
                                r.str("outcome", "flow_skipped")
                                    .int("fitness", fitness)
                                    .bool("discarded", discard)
                                    .build(),
                            );
                        }
                        if discard {
                            continue;
                        }
                        kept.push(Variant {
                            cfg: vc.cfg.expect("gate-served candidates carry a config"),
                            patch: vc.patch,
                            verification,
                            fitness,
                            diags,
                            segments: segs,
                        });
                    }
                }
            }
            validations += validated;
            validations_cached += cached_count;
            validations_skipped += flow_skipped;
            CAND_LINT_REJECTED.add(lint_rejected as u64);
            CAND_VALIDATED.add(validated as u64);
            CAND_CACHED.add(cached_count as u64);
            CAND_INVALID.add(invalid as u64);
            CAND_FLOW_SKIPPED.add(flow_skipped as u64);
            drop(validate_guard);

            let select_guard = stages.time("engine.select", "engine");
            let kept_count = kept.len();
            CAND_KEPT.add(kept_count as u64);
            let iter_fitness = kept.iter().map(|v| v.fitness).max().unwrap_or(prev_fitness);
            let done = kept.iter().any(|v| v.fitness == 0);

            population.extend(kept);
            population.sort_by_key(|v| (v.fitness, v.patch.len()));
            population.truncate(self.config.max_population);
            let best_fitness = population
                .first()
                .map(|v| v.fitness)
                .unwrap_or(prev_fitness);

            let stats = IterationStats {
                iteration,
                fitness: iter_fitness,
                best_fitness,
                generated,
                kept: kept_count,
                recomputed_prefixes: recomputed,
                reused_prefixes: reused,
                lint_rejected,
                validated,
                cached: cached_count,
                invalid,
                flow_skipped,
            };
            if journal_on {
                journal_iteration(&stats, &suspects, &cand_rows);
            }
            iterations.push(stats);
            prev_fitness = iter_fitness;
            drop(select_guard);

            if done {
                let winner = population
                    .iter()
                    .filter(|v| v.fitness == 0)
                    .min_by_key(|v| v.patch.len())
                    .expect("done implies a zero-fitness variant");
                return finish(
                    RepairOutcome::Fixed {
                        patch: winner.patch.clone(),
                        repaired: winner.cfg.clone(),
                    },
                    iterations,
                    initial_failed,
                    validations,
                    validations_cached,
                    validations_skipped,
                    iv.shard_totals(),
                    &stages,
                    winner.segments.clone(),
                    &self.config.tags,
                );
            }
        }

        let best = best_of(&population);
        finish(
            RepairOutcome::IterationLimit {
                best_patch: best.patch.clone(),
                best_fitness: best.fitness,
            },
            iterations,
            initial_failed,
            validations,
            validations_cached,
            validations_skipped,
            iv.shard_totals(),
            &stages,
            best.segments.clone(),
            &self.config.tags,
        )
    }

    /// The journal's `run_start` record: network shape, initial failures
    /// and the full engine configuration (the one record run parameters
    /// appear in, so cross-configuration journal diffs scrub one line).
    fn journal_run_start(&self, original: &NetworkConfig, initial_failed: usize, threads: usize) {
        if !acr_obs::enabled(acr_obs::JOURNAL) {
            return;
        }
        let cfg = json::Obj::new()
            .str("strategy", &format!("{:?}", self.config.strategy))
            .str("formula", &format!("{:?}", self.config.formula))
            .u64("seed", self.config.seed)
            .int("max_iterations", self.config.max_iterations)
            .int("max_population", self.config.max_population)
            .u64(
                "samples_per_property",
                self.config.samples_per_property as u64,
            )
            .str("operators", &format!("{:?}", self.config.operators))
            .bool("lint", self.config.lint)
            .int("threads", threads)
            .bool("cache", self.config.cache.is_some())
            .bool("delta", self.config.delta)
            .bool("flow", self.config.flow)
            .raw("tags", &tags_json(&self.config.tags))
            .build();
        journal::emit(
            &json::Obj::new()
                .str("event", "run_start")
                .str("schema", journal::SCHEMA)
                .u64("ts_us", journal::now_us())
                .int("routers", self.topo.routers().len())
                .int("devices", original.len())
                .int("initial_failed", initial_failed)
                .raw("config", &cfg)
                .build(),
        );
    }

    /// Top-ranked suspicious lines of a variant, rendered as a JSON array
    /// for the journal. Pure: same localization the fix stage uses, no RNG.
    fn suspects_of(&self, variant: &Variant, prior: &BTreeMap<LineId, f64>) -> String {
        let ranking = self.rank(variant, prior);
        json::array(ranking.entries().iter().take(8).map(|(line, score)| {
            json::Obj::new()
                .str("line", &line.to_string())
                .num("score", *score)
                .build()
        }))
    }

    /// The SBFL ranking the fix stage expands: lint boosts fold in
    /// multiplicatively (4x primary / 2x related), then the `acr-flow`
    /// prior rescales lines that sit on a violated property's abstract
    /// derivation path.
    fn rank(&self, variant: &Variant, prior: &BTreeMap<LineId, f64>) -> Ranking {
        let boosts = boost_map(&variant.diags);
        let ranking = if boosts.is_empty() {
            localize(&variant.verification.matrix, self.config.formula)
        } else {
            localize_boosted(&variant.verification.matrix, self.config.formula, &boosts)
        };
        ranking.with_prior(prior)
    }

    /// Generates candidate *full* patches (relative to the original
    /// configuration) according to the strategy, each paired with its
    /// provenance segments.
    fn generate(
        &self,
        population: &[Variant],
        iv: &IncrementalVerifier<'_>,
        prior: &BTreeMap<LineId, f64>,
        iteration: usize,
        rng: &mut SplitMix64,
    ) -> Vec<(Patch, Vec<PatchSegment>)> {
        let mut out = Vec::new();
        // A parent's patch extended by one fix, with provenance.
        let extend = |parent: &Variant, fix: &CandidateFix| {
            let mut segments = parent.segments.clone();
            segments.push(PatchSegment::of_fix(iteration, fix));
            (parent.patch.concat(&fix.patch), segments)
        };
        match &self.config.strategy {
            Strategy::BruteForce { top_lines } => {
                // Expand every surviving variant: multi-place repairs
                // accrete one template application per iteration.
                for parent in population {
                    let fixes = self.fixes_of(parent, iv, prior, *top_lines, None, rng);
                    out.extend(fixes.iter().map(|f| extend(parent, f)));
                }
            }
            Strategy::Genetic {
                mutations,
                crossovers,
                top_k,
            } => {
                for _ in 0..*mutations {
                    let parent = &population[rng.index(population.len())];
                    let fixes = self.fixes_of(parent, iv, prior, *top_k, Some(rng.next_u64()), rng);
                    if let Some(fix) = pick(rng, &fixes) {
                        out.push(extend(parent, fix));
                    }
                }
                for _ in 0..*crossovers {
                    if population.len() < 2 {
                        break;
                    }
                    let a = &population[rng.index(population.len())];
                    let b = &population[rng.index(population.len())];
                    if a.patch.is_empty() && b.patch.is_empty() {
                        continue;
                    }
                    let pa = rng.index(a.patch.len() + 1);
                    let pb = rng.index(b.patch.len() + 1);
                    let child = crossover(&a.patch, &b.patch, pa, pb);
                    if !child.is_empty() {
                        // Offspring mix two lineages; provenance collapses
                        // to a single recombination segment.
                        let segments = vec![PatchSegment {
                            iteration,
                            op: "crossover".to_string(),
                            origin: None,
                            edits: child.len(),
                        }];
                        out.push((child, segments));
                    }
                }
            }
            Strategy::SinglePatch { top_lines } => {
                // Expand only the unpatched root: every candidate is one
                // template application to the original configuration.
                // Once the root is evicted (or its pool is exhausted via
                // dedup) the search dries up — by design.
                for parent in population.iter().filter(|v| v.patch.is_empty()) {
                    let fixes = self.fixes_of(parent, iv, prior, *top_lines, None, rng);
                    out.extend(fixes.iter().map(|f| extend(parent, f)));
                }
            }
            Strategy::Beam {
                width,
                top_lines,
                max_pairs,
            } => {
                // The population is sorted by (fitness, patch size) at
                // the end of every iteration, so its prefix is the beam.
                for parent in population.iter().take(*width) {
                    let fixes = self.fixes_of(parent, iv, prior, *top_lines, None, rng);
                    out.extend(fixes.iter().map(|f| extend(parent, f)));
                    // Pairwise patch-set combinations at distinct
                    // suspicious lines: a coordinated two-site edit in a
                    // single candidate, instead of two accretion rounds.
                    let mut pairs = 0usize;
                    'outer: for i in 0..fixes.len() {
                        for j in (i + 1)..fixes.len() {
                            if fixes[i].origin == fixes[j].origin {
                                continue;
                            }
                            if pairs >= *max_pairs {
                                break 'outer;
                            }
                            let combined = fixes[i].patch.concat(&fixes[j].patch);
                            let mut segments = parent.segments.clone();
                            segments.push(PatchSegment::of_fix(iteration, &fixes[i]));
                            segments.push(PatchSegment::of_fix(iteration, &fixes[j]));
                            out.push((parent.patch.concat(&combined), segments));
                            pairs += 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// Localizes a variant and instantiates templates at its suspicious
    /// lines. With `pick_line`, only one (seeded-random) line from the top
    /// pool is expanded — the genetic mutation primitive; otherwise the
    /// full tied-top set plus up to `width` runners-up are expanded.
    fn fixes_of(
        &self,
        variant: &Variant,
        iv: &IncrementalVerifier<'_>,
        prior: &BTreeMap<LineId, f64>,
        width: usize,
        pick_line: Option<u64>,
        _rng: &mut SplitMix64,
    ) -> Vec<CandidateFix> {
        let boosts = boost_map(&variant.diags);
        let ranking = self.rank(variant, prior);
        if ranking.is_empty() {
            return Vec::new();
        }
        let models = models_of(self.topo, &variant.cfg);
        let ctx = RepairCtx {
            topo: self.topo,
            cfg: &variant.cfg,
            verification: &variant.verification,
            arena: iv.arena(),
            models: &models,
        };
        let mut pool: Vec<LineId> = ranking.top_tied();
        for (line, score) in ranking.entries().iter().skip(pool.len()).take(width) {
            if *score <= 0.0 {
                break;
            }
            pool.push(*line);
        }
        let allowed = |f: &CandidateFix| {
            self.config
                .allowed_templates
                .as_ref()
                .is_none_or(|ts| ts.contains(&f.template))
        };
        // One line's candidates under the configured operator vocabulary.
        let expand = |line: LineId| -> Vec<CandidateFix> {
            let mut fixes = Vec::new();
            if self.config.operators != OperatorSet::Universal {
                fixes.extend(candidates_for_line(line, &ctx).into_iter().filter(allowed));
            }
            if self.config.operators != OperatorSet::Curated {
                for patch in universal_candidates(line, &ctx) {
                    if !fixes.iter().any(|f: &CandidateFix| f.patch == patch) {
                        fixes.push(CandidateFix {
                            patch,
                            template: TemplateKind::DonorCopy,
                            origin: line,
                        });
                    }
                }
            }
            fixes
        };
        match pick_line {
            Some(seed) if !pool.is_empty() => {
                // Seeded mutation pick, weighted by lint boost: a line a
                // static rule flagged is mutated proportionally more
                // often than its spectrum twins.
                let weighted: Vec<LineId> = pool
                    .iter()
                    .flat_map(|l| {
                        let w = boosts.get(l).copied().unwrap_or(1.0).max(1.0) as usize;
                        std::iter::repeat_n(*l, w)
                    })
                    .collect();
                let line = weighted[(seed % weighted.len() as u64) as usize];
                expand(line)
            }
            _ => {
                let mut out = Vec::new();
                for line in pool {
                    out.extend(expand(line));
                }
                out
            }
        }
    }
}

/// The `acr-flow` localization prior: every line the abstract
/// may-propagation analysis records as *supporting* a violated
/// property's destination cone gets a modest multiplicative *damping*.
/// A supporting line is one the route demonstrably still flows through
/// — and the Table-1 fault model is absence-dominated (gutted prefix
/// lists, deleted policies, missing redistribution), where the
/// misconfiguration is precisely the statement that *stops* the route,
/// which by construction is off the live path. Damping the live path
/// focuses the expansion pool on the blocking statements; the factor is
/// mild so concrete lint boosts (4x/2x) still dominate.
fn flow_prior(
    spec: &Spec,
    base: &Verification,
    facts: &acr_flow::FlowFacts,
) -> BTreeMap<LineId, f64> {
    const FLOW_PRIOR_FACTOR: f64 = 0.8;
    let failing: HashSet<&str> = base
        .records
        .iter()
        .filter(|r| !r.passed)
        .map(|r| r.property.as_str())
        .collect();
    let mut prior = BTreeMap::new();
    for p in &spec.properties {
        if failing.contains(p.name.as_str()) {
            for line in facts.support_for(p.hs.dst) {
                prior.insert(line, FLOW_PRIOR_FACTOR);
            }
        }
    }
    prior
}

/// Suspiciousness multipliers from lint findings: primary-span lines get
/// 4x, related locations 2x (the strongest factor wins on overlap).
fn boost_map(diags: &[Diagnostic]) -> BTreeMap<LineId, f64> {
    let mut boosts: BTreeMap<LineId, f64> = BTreeMap::new();
    let mut bump = |line: LineId, factor: f64| {
        let e = boosts.entry(line).or_insert(1.0);
        *e = e.max(factor);
    };
    for d in diags {
        for line in d.span.0..=d.span.1 {
            bump(LineId::new(d.device, line), 4.0);
        }
        for r in &d.related {
            bump(LineId::new(r.device, r.line), 2.0);
        }
    }
    boosts
}

/// Renders a tag list as a JSON string array.
fn tags_json(tags: &[String]) -> String {
    json::array(tags.iter().map(|t| format!("\"{}\"", json::escape(t))))
}

/// Renders an attribution list as a JSON array of segment objects.
fn attribution_json(segments: &[PatchSegment]) -> String {
    json::array(segments.iter().map(|s| {
        let obj = json::Obj::new()
            .int("iteration", s.iteration)
            .str("op", &s.op);
        let obj = match &s.origin {
            Some(line) => obj.str("origin", &line.to_string()),
            None => obj,
        };
        obj.int("edits", s.edits).build()
    }))
}

/// The single place a [`RepairReport`] is assembled: every return path
/// of the repair loop funnels here, so the [`StageTimes`] derivation from
/// the run's [`Stages`] accumulator exists exactly once. Also emits the
/// journal's `run_end` record and flushes every obs sink.
#[allow(clippy::too_many_arguments)]
fn finish(
    outcome: RepairOutcome,
    iterations: Vec<IterationStats>,
    initial_failed: usize,
    validations: usize,
    validations_cached: usize,
    validations_skipped: usize,
    shard_totals: (u64, u64),
    stages: &Stages,
    attribution: Vec<PatchSegment>,
    tags: &[String],
) -> RepairReport {
    let stage = StageTimes {
        commit: stages.get("engine.commit"),
        generate: stages.get("engine.generate"),
        validate: stages.get("engine.validate"),
        select: stages.get("engine.select"),
        sim_compile: stages.get("sim.compile"),
        sim_establish: stages.get("sim.establish"),
        sim_simulate: stages.get("sim.simulate"),
        sim_converge: stages.get("sim.converge"),
    };
    if acr_obs::enabled(acr_obs::JOURNAL) {
        let (kind, patch, fitness) = match &outcome {
            RepairOutcome::Fixed { patch, .. } => ("fixed", patch.to_string(), 0),
            RepairOutcome::NoCandidates {
                best_patch,
                best_fitness,
            } => ("no_candidates", best_patch.to_string(), *best_fitness),
            RepairOutcome::IterationLimit {
                best_patch,
                best_fitness,
            } => ("iteration_limit", best_patch.to_string(), *best_fitness),
        };
        // Sharded-convergence accounting for the run: how many committed
        // verifications dispatched the sharded runner and how many
        // prefixes they covered. Both are worker-count independent (the
        // dispatch decision is on/off, not a count), so journals stay
        // byte-identical across thread counts and shard widths.
        journal::emit(
            &json::Obj::new()
                .str("event", "shard_summary")
                .u64("ts_us", journal::now_us())
                .u64("sharded_runs", shard_totals.0)
                .u64("sharded_prefixes", shard_totals.1)
                .build(),
        );
        journal::emit(
            &json::Obj::new()
                .str("event", "run_end")
                .u64("ts_us", journal::now_us())
                .str("outcome", kind)
                .str("patch", &patch)
                .int("fitness", fitness)
                .int("iterations", iterations.len())
                .int("initial_failed", initial_failed)
                .int("validations", validations)
                .int("validations_cached", validations_cached)
                .int("validations_skipped", validations_skipped)
                .raw("attribution", &attribution_json(&attribution))
                .raw("tags", &tags_json(tags))
                .build(),
        );
    }
    acr_obs::flush();
    RepairReport {
        outcome,
        iterations,
        initial_failed,
        validations,
        validations_cached,
        validations_skipped,
        stage,
        wall: stages.wall(),
        attribution,
        tags: tags.to_vec(),
    }
}

/// The journal's per-iteration record: the iteration counters, the ranked
/// suspects that seeded generation, and every candidate's verdict in
/// batch order.
fn journal_iteration(stats: &IterationStats, suspects: &str, cand_rows: &[String]) {
    journal::emit(
        &json::Obj::new()
            .str("event", "iteration")
            .u64("ts_us", journal::now_us())
            .int("iteration", stats.iteration)
            .int("fitness", stats.fitness)
            .int("best_fitness", stats.best_fitness)
            .int("generated", stats.generated)
            .int("kept", stats.kept)
            .int("lint_rejected", stats.lint_rejected)
            .int("validated", stats.validated)
            .int("cached", stats.cached)
            .int("invalid", stats.invalid)
            .int("flow_skipped", stats.flow_skipped)
            .int("recomputed_prefixes", stats.recomputed_prefixes)
            .int("reused_prefixes", stats.reused_prefixes)
            .raw("suspects", suspects)
            .raw("candidates", &json::array(cand_rows.iter().cloned()))
            .build(),
    );
}

/// The best variant: lowest fitness, then smallest patch.
fn best_of(population: &[Variant]) -> &Variant {
    population
        .iter()
        .min_by_key(|v| (v.fitness, v.patch.len()))
        .expect("population never empties")
}

/// Semantic models of every router in `cfg`.
pub fn models_of(topo: &Topology, cfg: &NetworkConfig) -> Vec<DeviceModel> {
    topo.routers()
        .iter()
        .map(|r| match cfg.device(r.id) {
            Some(dc) => DeviceModel::from_config(dc),
            None => DeviceModel {
                name: r.name.clone(),
                ..DeviceModel::default()
            },
        })
        .collect()
}

/// Uniform pick from a slice.
fn pick<'t, T>(rng: &mut SplitMix64, xs: &'t [T]) -> Option<&'t T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.index(xs.len())])
    }
}

// A tiny usage of TemplateKind keeps the import honest for rustdoc links.
const _: fn(&CandidateFix) -> TemplateKind = |f| f.template;
