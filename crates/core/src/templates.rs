//! Change operators: atomic edits bundled into the nine Table-1 templates.
//!
//! A template set is attached to each statement kind ([`templates_for`]);
//! when SBFL marks a line suspicious, the associated templates are
//! instantiated against the repair context ([`candidates_for_line`]),
//! producing zero or more candidate patches. As the paper's §5 notes, the
//! *fix place* a template edits is chosen by the template, not by the
//! suspicious line — e.g. a suspicious `peer … route-policy … import`
//! statement leads to edits in the prefix list its policy matches on.
//!
//! Every emitted patch keeps the printed configuration re-parseable:
//! block sub-statements are only inserted inside their blocks, and block
//! headers are never deleted.

use crate::ctx::RepairCtx;
use crate::symbolize::{failing_dsts, solve_prefix_set};
use acr_cfg::ast::{NextHop, PbrAction, PeerRef, PlAction, Proto};
use acr_cfg::{AclRuleCfg, Edit, LineId, MatchProto, Patch, Stmt};
use acr_net_types::{Prefix, RouterId};
use acr_sim::SessionFailure;
use std::fmt;

/// The template vocabulary (one or more per Table-1 misconfiguration
/// class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateKind {
    /// Re-solve a prefix list's contents symbolically (Table 1: "missing
    /// items in ip prefix-list"; the §5 worked example).
    PrefixListAdjust,
    /// Remove a route-policy application from a peer (Table 1: "fail to
    /// dis-enable route map").
    DisablePolicy,
    /// Fix an `as-path overwrite <wrong-asn>` to use the local AS
    /// (Table 1: "override to wrong AS number").
    FixOverrideAsn,
    /// Recreate a missing policy with a solved prefix list — two
    /// variants are proposed: a *filter* (deny the solved set, permit the
    /// rest) and an *override ingress* (permit-and-overwrite the solved
    /// set, as the role's sibling sessions do) — validation keeps the
    /// right one (Table 1: "missing a routing policy").
    RecreateFilterPolicy,
    /// Insert `import-route static` (Table 1: "missing redistribution of
    /// static route").
    AddRedistribution,
    /// Delete an `import-route` statement (the inverse regression fix).
    RemoveRedistribution,
    /// Originate a failing destination with a `network` statement.
    AddNetworkStmt,
    /// Originate a failing destination with a NULL0 static plus
    /// redistribution.
    AddStaticRouteOrigin,
    /// Delete a static route.
    RemoveStaticRoute,
    /// Define a missing peer group with the neighbor's true AS (Table 1:
    /// "missing peer group").
    CreateMissingGroup,
    /// Mirror a one-sided peering on the remote router.
    CreateMissingPeer,
    /// Remove a peer from a group (Table 1: "extra items in peer group").
    RemovePeerFromGroup,
    /// Correct a peer's AS number to the neighbor's true AS.
    FixPeerAsn,
    /// Insert a PBR permit rule (plus its ACL) ahead of harmful rules
    /// (Table 1: "missing permit rules in PBR").
    AddPbrPermit,
    /// Delete a PBR rule (Table 1: "extra redirect rule in PBR").
    RemovePbrRule,
    /// Apply a locally defined route policy to a peer/group that has
    /// none (restores a lost `peer … route-policy … import`).
    ApplyImportPolicy,
    /// A donor-based universal operator (see [`crate::universal`]); never
    /// produced by `templates_for`, only tagged onto candidates the
    /// universal vocabulary emits.
    DonorCopy,
    /// Generic atomic fallback: delete the (non-header) line.
    DeleteLine,
}

impl fmt::Display for TemplateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TemplateKind::PrefixListAdjust => "prefix-list-adjust",
            TemplateKind::DisablePolicy => "disable-policy",
            TemplateKind::FixOverrideAsn => "fix-override-asn",
            TemplateKind::RecreateFilterPolicy => "recreate-filter-policy",
            TemplateKind::AddRedistribution => "add-redistribution",
            TemplateKind::RemoveRedistribution => "remove-redistribution",
            TemplateKind::AddNetworkStmt => "add-network",
            TemplateKind::AddStaticRouteOrigin => "add-static-origin",
            TemplateKind::RemoveStaticRoute => "remove-static-route",
            TemplateKind::CreateMissingGroup => "create-missing-group",
            TemplateKind::CreateMissingPeer => "create-missing-peer",
            TemplateKind::RemovePeerFromGroup => "remove-peer-from-group",
            TemplateKind::FixPeerAsn => "fix-peer-asn",
            TemplateKind::AddPbrPermit => "add-pbr-permit",
            TemplateKind::RemovePbrRule => "remove-pbr-rule",
            TemplateKind::ApplyImportPolicy => "apply-import-policy",
            TemplateKind::DonorCopy => "donor-copy",
            TemplateKind::DeleteLine => "delete-line",
        };
        f.write_str(s)
    }
}

/// A candidate fix: the patch plus where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateFix {
    pub patch: Patch,
    pub template: TemplateKind,
    /// The suspicious line the template fired from.
    pub origin: LineId,
}

/// The template set associated with a statement kind.
pub fn templates_for(stmt: &Stmt) -> Vec<TemplateKind> {
    use TemplateKind::*;
    match stmt {
        Stmt::PrefixListEntry { .. } => vec![PrefixListAdjust, DeleteLine],
        Stmt::IfMatchPrefixList(_) => vec![PrefixListAdjust, DeleteLine],
        Stmt::IfMatchCommunity(_) => vec![DeleteLine],
        Stmt::RoutePolicyDef { .. } => vec![PrefixListAdjust, DisablePolicy],
        Stmt::ApplyAsPathOverwrite(_) => vec![FixOverrideAsn, PrefixListAdjust, DeleteLine],
        Stmt::ApplyAsPathPrepend { .. }
        | Stmt::ApplyLocalPref(_)
        | Stmt::ApplyMed(_)
        | Stmt::ApplyCommunity(_) => vec![PrefixListAdjust, DeleteLine],
        Stmt::PeerPolicy { .. } => vec![PrefixListAdjust, DisablePolicy, RecreateFilterPolicy],
        Stmt::PeerAs { .. } => vec![FixPeerAsn, CreateMissingPeer, ApplyImportPolicy, DeleteLine],
        Stmt::PeerGroup { .. } => vec![CreateMissingGroup, RemovePeerFromGroup, ApplyImportPolicy],
        Stmt::GroupDef(_) => vec![CreateMissingPeer, ApplyImportPolicy],
        Stmt::ImportRoute(_) => vec![RemoveRedistribution],
        Stmt::StaticRoute { .. } => vec![AddRedistribution, RemoveStaticRoute, AddNetworkStmt],
        Stmt::Network(_) => vec![AddRedistribution, DeleteLine],
        Stmt::BgpProcess(_) => vec![AddRedistribution, AddNetworkStmt, AddStaticRouteOrigin],
        Stmt::PbrRule { .. } => vec![RemovePbrRule, AddPbrPermit],
        Stmt::AclRule(_) => vec![AddPbrPermit, DeleteLine],
        Stmt::ApplyTrafficPolicy(_) => vec![AddPbrPermit, DeleteLine],
        Stmt::AclDef(_) | Stmt::PbrPolicyDef(_) | Stmt::Interface(_) => vec![],
        Stmt::IpAddress { .. } | Stmt::RouterId(_) | Stmt::Remark(_) => vec![],
    }
}

/// Instantiates every applicable template at a suspicious line.
pub fn candidates_for_line(line: LineId, ctx: &RepairCtx<'_>) -> Vec<CandidateFix> {
    let Some(stmt) = ctx.stmt(line) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for kind in templates_for(stmt) {
        for patch in instantiate(kind, line, ctx) {
            if !patch.is_empty() {
                out.push(CandidateFix {
                    patch,
                    template: kind,
                    origin: line,
                });
            }
        }
    }
    out
}

/// Instantiates one template at one line.
pub fn instantiate(kind: TemplateKind, line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    match kind {
        TemplateKind::PrefixListAdjust => prefix_list_adjust(line, ctx),
        TemplateKind::DisablePolicy => disable_policy(line, ctx),
        TemplateKind::FixOverrideAsn => fix_override_asn(line, ctx),
        TemplateKind::RecreateFilterPolicy => recreate_filter_policy(line, ctx),
        TemplateKind::AddRedistribution => add_redistribution(line, ctx),
        TemplateKind::RemoveRedistribution => delete_stmt(line, ctx),
        TemplateKind::AddNetworkStmt => add_network(line, ctx),
        TemplateKind::AddStaticRouteOrigin => add_static_origin(line, ctx),
        TemplateKind::RemoveStaticRoute => delete_stmt(line, ctx),
        TemplateKind::CreateMissingGroup => create_missing_group(line, ctx),
        TemplateKind::CreateMissingPeer => create_missing_peer(line, ctx),
        TemplateKind::RemovePeerFromGroup => delete_stmt(line, ctx),
        TemplateKind::FixPeerAsn => fix_peer_asn(line, ctx),
        TemplateKind::AddPbrPermit => add_pbr_permit(line, ctx),
        TemplateKind::RemovePbrRule => delete_stmt(line, ctx),
        TemplateKind::ApplyImportPolicy => apply_import_policy(line, ctx),
        TemplateKind::DonorCopy => crate::universal::universal_candidates(line, ctx),
        TemplateKind::DeleteLine => delete_stmt(line, ctx),
    }
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

/// Deletes the statement, refusing to orphan a block.
fn delete_stmt(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    match ctx.stmt(line) {
        Some(stmt) if !stmt.is_header() => {
            vec![Patch::single(Edit::Delete {
                router: line.router,
                index: line.index(),
            })]
        }
        _ => Vec::new(),
    }
}

/// The 0-based index right after the `bgp` header on `router`, or `None`
/// when the device runs no BGP.
fn after_bgp_header(ctx: &RepairCtx<'_>, router: RouterId) -> Option<usize> {
    ctx.model(router)
        .asn
        .map(|(_, header_line)| header_line as usize)
}

/// Names of prefix lists a suspicious line leads to (chasing policy
/// references).
fn target_lists(line: LineId, ctx: &RepairCtx<'_>) -> Vec<String> {
    let model = ctx.model(line.router);
    let lists_of_policy = |name: &str| -> Vec<String> {
        model
            .route_policies
            .get(name)
            .into_iter()
            .flatten()
            .flat_map(|n| {
                n.matches.iter().filter_map(|(cond, _)| match cond {
                    acr_cfg::MatchCond::PrefixList(l) => Some(l.clone()),
                    acr_cfg::MatchCond::Community(_) => None,
                })
            })
            .collect()
    };
    match ctx.stmt(line) {
        Some(Stmt::PrefixListEntry { list, .. }) => vec![list.clone()],
        Some(Stmt::IfMatchPrefixList(list)) => vec![list.clone()],
        Some(Stmt::RoutePolicyDef { name, .. }) => lists_of_policy(name),
        Some(Stmt::PeerPolicy { policy, .. }) => lists_of_policy(policy),
        Some(
            Stmt::ApplyAsPathOverwrite(_)
            | Stmt::ApplyAsPathPrepend { .. }
            | Stmt::ApplyLocalPref(_)
            | Stmt::ApplyMed(_)
            | Stmt::ApplyCommunity(_),
        ) => {
            // Find the enclosing policy header above this line.
            let device = ctx.cfg.device(line.router);
            let Some(device) = device else {
                return Vec::new();
            };
            for idx in (0..line.index()).rev() {
                if let Some(Stmt::RoutePolicyDef { name, .. }) = device.stmts().get(idx) {
                    return lists_of_policy(name);
                }
            }
            Vec::new()
        }
        _ => Vec::new(),
    }
}

// ---------------------------------------------------------------------
// template bodies
// ---------------------------------------------------------------------

/// Rebuilds a prefix list so it matches exactly the solved set (§5 worked
/// example: replace `0.0.0.0 0` with `{10.70/16, 20.0/16}`).
fn prefix_list_adjust(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let model = ctx.model(router);
    let mut patches = Vec::new();
    for list in target_lists(line, ctx) {
        let entries = model.prefix_lists.get(&list).cloned().unwrap_or_default();
        // Anchor: the list's own lines plus the suspicious line.
        let mut anchors: Vec<LineId> = entries
            .iter()
            .map(|e| LineId::new(router, e.line))
            .collect();
        anchors.push(line);
        let Some(solution) = solve_prefix_set(ctx, &anchors) else {
            continue;
        };
        // No-op guard: identical contents produce nothing.
        let current: std::collections::BTreeSet<Prefix> = entries
            .iter()
            .filter(|e| e.action == PlAction::Permit && e.ge.is_none() && e.le.is_none())
            .map(|e| e.prefix)
            .collect();
        if entries.len() == current.len() && current == solution {
            continue;
        }
        let mut positions: Vec<usize> = entries.iter().map(|e| (e.line - 1) as usize).collect();
        positions.sort_unstable();
        let insert_at = positions
            .first()
            .copied()
            .unwrap_or_else(|| ctx.cfg.device(router).map_or(0, |d| d.len()) - positions.len());
        let mut patch = Patch::new();
        for idx in positions.iter().rev() {
            patch.push(Edit::Delete {
                router,
                index: *idx,
            });
        }
        // Insert in reverse so the final order is ascending.
        for (i, p) in solution.iter().enumerate().rev() {
            patch.push(Edit::Insert {
                router,
                index: insert_at,
                stmt: Stmt::PrefixListEntry {
                    list: list.clone(),
                    index: (i as u32 + 1) * 10,
                    action: PlAction::Permit,
                    prefix: *p,
                    ge: None,
                    le: None,
                },
            });
        }
        patches.push(patch);
    }
    patches
}

/// Deletes the policy application(s) the suspicious line points at.
fn disable_policy(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    match ctx.stmt(line) {
        Some(Stmt::PeerPolicy { .. }) => delete_stmt(line, ctx),
        Some(Stmt::RoutePolicyDef { name, .. }) => {
            // One candidate per peer statement applying this policy.
            let device = ctx.cfg.device(line.router);
            let Some(device) = device else {
                return Vec::new();
            };
            device
                .lines()
                .filter_map(|(ln, stmt)| match stmt {
                    Stmt::PeerPolicy { policy, .. } if policy == name => {
                        Some(Patch::single(Edit::Delete {
                            router: line.router,
                            index: (ln - 1) as usize,
                        }))
                    }
                    _ => None,
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

/// Replaces `apply as-path overwrite <explicit>` with the local-AS form.
fn fix_override_asn(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    match ctx.stmt(line) {
        Some(Stmt::ApplyAsPathOverwrite(Some(explicit))) => {
            let own = ctx.model(line.router).asn.map(|(a, _)| a);
            if own == Some(*explicit) {
                return Vec::new(); // already correct
            }
            vec![Patch::single(Edit::Replace {
                router: line.router,
                index: line.index(),
                stmt: Stmt::ApplyAsPathOverwrite(None),
            })]
        }
        _ => Vec::new(),
    }
}

/// Recreates a missing policy around the failing destinations. Proposes
/// two shapes and lets validation decide:
///
/// - **filter**: deny the solved set, permit everything else (repairs
///   isolation-style breaches),
/// - **override ingress**: permit-and-overwrite the solved set with an
///   implicit deny (the customer-facing pattern of this repo's generated
///   networks and of the paper's Figure 2 backbone).
fn recreate_filter_policy(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let Some(Stmt::PeerPolicy { policy, .. }) = ctx.stmt(line) else {
        return Vec::new();
    };
    let model = ctx.model(line.router);
    if model.route_policies.contains_key(policy) {
        return Vec::new(); // policy exists; this template targets omissions
    }
    let set = failing_dsts(ctx, &[line]);
    if set.is_empty() {
        return Vec::new();
    }
    let router = line.router;
    let Some(device) = ctx.cfg.device(router) else {
        return Vec::new();
    };
    let end = device.len();
    let push = |patch: &mut Patch, at: &mut usize, stmt: Stmt| {
        patch.push(Edit::Insert {
            router,
            index: *at,
            stmt,
        });
        *at += 1;
    };
    let entries = |patch: &mut Patch, at: &mut usize, list: &str| {
        for (i, p) in set.iter().enumerate() {
            push(
                patch,
                at,
                Stmt::PrefixListEntry {
                    list: list.to_string(),
                    index: (i as u32 + 1) * 10,
                    action: PlAction::Permit,
                    prefix: *p,
                    ge: None,
                    le: None,
                },
            );
        }
    };

    // Variant 1: filter.
    let mut filter = Patch::new();
    let mut at = end;
    let list = format!("{policy}_blk");
    push(
        &mut filter,
        &mut at,
        Stmt::RoutePolicyDef {
            name: policy.clone(),
            action: PlAction::Deny,
            node: 5,
        },
    );
    push(&mut filter, &mut at, Stmt::IfMatchPrefixList(list.clone()));
    push(
        &mut filter,
        &mut at,
        Stmt::RoutePolicyDef {
            name: policy.clone(),
            action: PlAction::Permit,
            node: 100,
        },
    );
    entries(&mut filter, &mut at, &list);

    // Variant 2: override ingress.
    let mut over = Patch::new();
    let mut at = end;
    let list = format!("{policy}_ovr");
    push(
        &mut over,
        &mut at,
        Stmt::RoutePolicyDef {
            name: policy.clone(),
            action: PlAction::Permit,
            node: 10,
        },
    );
    push(&mut over, &mut at, Stmt::IfMatchPrefixList(list.clone()));
    push(&mut over, &mut at, Stmt::ApplyAsPathOverwrite(None));
    entries(&mut over, &mut at, &list);

    vec![filter, over]
}

/// Inserts `import-route static` into the BGP block.
fn add_redistribution(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let model = ctx.model(router);
    if model.redistribute.iter().any(|(p, _)| *p == Proto::Static) {
        return Vec::new();
    }
    if model.static_routes.is_empty() {
        return Vec::new(); // nothing to redistribute
    }
    let Some(at) = after_bgp_header(ctx, router) else {
        return Vec::new();
    };
    vec![Patch::single(Edit::Insert {
        router,
        index: at,
        stmt: Stmt::ImportRoute(Proto::Static),
    })]
}

/// Originates failing destinations owned by this router with `network`.
fn add_network(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let Some(at) = after_bgp_header(ctx, router) else {
        return Vec::new();
    };
    let model = ctx.model(router);
    let mut out = Vec::new();
    for rec in ctx.failures() {
        let Some((prefix, owner)) = ctx.prefix_owning(rec.flow.dst) else {
            continue;
        };
        if owner != router {
            continue;
        }
        if model.networks.iter().any(|(p, _)| *p == prefix) {
            continue;
        }
        let patch = Patch::single(Edit::Insert {
            router,
            index: at,
            stmt: Stmt::Network(prefix),
        });
        if !out.contains(&patch) {
            out.push(patch);
        }
    }
    out
}

/// Originates failing destinations with a NULL0 static + redistribution.
fn add_static_origin(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let Some(bgp_at) = after_bgp_header(ctx, router) else {
        return Vec::new();
    };
    let Some(device) = ctx.cfg.device(router) else {
        return Vec::new();
    };
    let model = ctx.model(router);
    let mut out = Vec::new();
    for rec in ctx.failures() {
        let Some((prefix, owner)) = ctx.prefix_owning(rec.flow.dst) else {
            continue;
        };
        if owner != router {
            continue;
        }
        if model.static_routes.iter().any(|s| s.prefix == prefix) {
            continue;
        }
        let mut patch = Patch::new();
        patch.push(Edit::Insert {
            router,
            index: device.len(),
            stmt: Stmt::StaticRoute {
                prefix,
                next_hop: NextHop::Null0,
            },
        });
        if !model.redistribute.iter().any(|(p, _)| *p == Proto::Static) {
            patch.push(Edit::Insert {
                router,
                index: bgp_at,
                stmt: Stmt::ImportRoute(Proto::Static),
            });
        }
        if !out.contains(&patch) {
            out.push(patch);
        }
    }
    out
}

/// Defines the missing peer group (with the neighbor's true AS).
fn create_missing_group(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let Some(Stmt::PeerGroup { peer, group }) = ctx.stmt(line) else {
        return Vec::new();
    };
    let router = line.router;
    let model = ctx.model(router);
    let group_known = model
        .groups
        .get(group)
        .map(|g| g.asn.is_some())
        .unwrap_or(false);
    if group_known {
        return Vec::new();
    }
    let Some(remote_as) = ctx.actual_as_of(*peer) else {
        return Vec::new();
    };
    let Some(at) = after_bgp_header(ctx, router) else {
        return Vec::new();
    };
    let mut patch = Patch::new();
    if model.groups.get(group).and_then(|g| g.def_line).is_none() {
        patch.push(Edit::Insert {
            router,
            index: at,
            stmt: Stmt::GroupDef(group.clone()),
        });
    }
    patch.push(Edit::Insert {
        router,
        index: at + patch.len(),
        stmt: Stmt::PeerAs {
            peer: PeerRef::Group(group.clone()),
            asn: remote_as,
        },
    });
    // Plastic-surgery hypothesis (§6): devices with the same role carry
    // near-identical configs, so copy the import policy other devices
    // apply to a same-named group — if this device defines that policy.
    if let Some(policy) = sibling_group_policy(ctx, group) {
        if model.route_policies.contains_key(&policy) {
            patch.push(Edit::Insert {
                router,
                index: at + patch.len(),
                stmt: Stmt::PeerPolicy {
                    peer: PeerRef::Group(group.clone()),
                    policy,
                    dir: acr_cfg::Dir::Import,
                },
            });
        }
    }
    vec![patch]
}

/// The import policy other devices apply to a group of the same name.
fn sibling_group_policy(ctx: &RepairCtx<'_>, group: &str) -> Option<String> {
    for (_, device) in ctx.cfg.devices() {
        for stmt in device.stmts() {
            if let Stmt::PeerPolicy {
                peer: PeerRef::Group(g),
                policy,
                dir: acr_cfg::Dir::Import,
            } = stmt
            {
                if g == group {
                    return Some(policy.clone());
                }
            }
        }
    }
    None
}

/// Mirrors a one-sided peering on the remote device.
fn create_missing_peer(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let mut out = Vec::new();
    for diag in &ctx.verification.session_diags {
        if diag.router != router {
            continue;
        }
        let SessionFailure::NotConfiguredRemotely { remote } = diag.failure else {
            continue;
        };
        let Some(local_as) = ctx.model(router).asn.map(|(a, _)| a) else {
            continue;
        };
        let Some(our_addr) = ctx.topo.addr_towards(router, remote) else {
            continue;
        };
        let Some(at) = after_bgp_header(ctx, remote) else {
            continue;
        };
        let patch = Patch::single(Edit::Insert {
            router: remote,
            index: at,
            stmt: Stmt::PeerAs {
                peer: PeerRef::Ip(our_addr),
                asn: local_as,
            },
        });
        if !out.contains(&patch) {
            out.push(patch);
        }
    }
    out
}

/// Rewrites a peer's AS number to the neighbor's true AS.
fn fix_peer_asn(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let Some(Stmt::PeerAs { peer, asn }) = ctx.stmt(line) else {
        return Vec::new();
    };
    let router = line.router;
    let actual = match peer {
        PeerRef::Ip(addr) => ctx.actual_as_of(*addr),
        PeerRef::Group(group) => {
            // Resolve through any member of the group.
            let model = ctx.model(router);
            model
                .peers
                .iter()
                .find(|(_, p)| p.group.as_ref().map(|(g, _)| g.as_str()) == Some(group))
                .and_then(|(addr, _)| ctx.actual_as_of(*addr))
        }
    };
    match actual {
        Some(actual) if actual != *asn => vec![Patch::single(Edit::Replace {
            router,
            index: line.index(),
            stmt: Stmt::PeerAs {
                peer: peer.clone(),
                asn: actual,
            },
        })],
        _ => Vec::new(),
    }
}

/// Restores a lost policy application: for a peer/group without an import
/// policy, propose applying each locally defined route policy.
fn apply_import_policy(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let model = ctx.model(router);
    let Some(at) = after_bgp_header(ctx, router) else {
        return Vec::new();
    };
    let target: Option<PeerRef> = match ctx.stmt(line) {
        Some(Stmt::PeerGroup { group, .. }) | Some(Stmt::GroupDef(group)) => {
            let bare = model
                .groups
                .get(group)
                .map(|g| g.import_policy.is_none())
                .unwrap_or(true);
            bare.then(|| PeerRef::Group(group.clone()))
        }
        Some(Stmt::PeerAs {
            peer: PeerRef::Ip(ip),
            ..
        }) => model
            .peers
            .get(ip)
            .is_some_and(|p| p.import_policy.is_none())
            .then_some(PeerRef::Ip(*ip)),
        _ => None,
    };
    let Some(target) = target else {
        return Vec::new();
    };
    model
        .route_policies
        .keys()
        .map(|policy| {
            Patch::single(Edit::Insert {
                router,
                index: at,
                stmt: Stmt::PeerPolicy {
                    peer: target.clone(),
                    policy: policy.clone(),
                    dir: acr_cfg::Dir::Import,
                },
            })
        })
        .collect()
}

/// Inserts a PBR permit rule (with its ACL) ahead of the applied policy's
/// existing rules, for the failing destinations this line touches.
fn add_pbr_permit(line: LineId, ctx: &RepairCtx<'_>) -> Vec<Patch> {
    let router = line.router;
    let model = ctx.model(router);
    let Some((policy_name, _)) = &model.pbr_applied else {
        return Vec::new();
    };
    let Some(rules) = model.pbr_policies.get(policy_name) else {
        return Vec::new();
    };
    let dsts = failing_dsts(ctx, &[line]);
    if dsts.is_empty() {
        return Vec::new();
    }
    let Some(device) = ctx.cfg.device(router) else {
        return Vec::new();
    };
    // Insertion point: before the first existing rule, or right after the
    // policy header.
    let first_rule_at = rules.first().map(|r| (r.line - 1) as usize).or_else(|| {
        device.lines().find_map(|(ln, stmt)| match stmt {
            Stmt::PbrPolicyDef(name) if name == policy_name => Some(ln as usize),
            _ => None,
        })
    });
    let Some(rule_at) = first_rule_at else {
        return Vec::new();
    };
    let acl_num = model.acls.keys().max().copied().unwrap_or(3000) + 1;
    let mut patch = Patch::new();
    // Append the ACL block at the end (does not shift `rule_at`).
    let end = device.len();
    patch.push(Edit::Insert {
        router,
        index: end,
        stmt: Stmt::AclDef(acl_num),
    });
    for (i, p) in dsts.iter().enumerate() {
        patch.push(Edit::Insert {
            router,
            index: end + 1 + i,
            stmt: Stmt::AclRule(AclRuleCfg {
                index: (i as u32 + 1) * 5,
                action: PlAction::Permit,
                proto: MatchProto::Ip,
                src: Prefix::DEFAULT,
                dst: *p,
                dst_port: None,
            }),
        });
    }
    // Then the permit rule ahead of the existing rules.
    patch.push(Edit::Insert {
        router,
        index: rule_at,
        stmt: Stmt::PbrRule {
            acl: acl_num,
            action: PbrAction::Permit,
        },
    });
    vec![patch]
}
