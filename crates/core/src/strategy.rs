//! Fix-generation strategies (§4.2).
//!
//! **Brute force** systematically applies every applicable template to the
//! most suspicious statements — the Cartesian product the paper describes.
//!
//! **Search-based (genetic)** randomly applies templates to suspicious
//! statements "selected from either the original program or any one of the
//! updated programs from previous iterations", and additionally performs
//! single-point crossover between two candidate patches. The upside the
//! paper highlights — statements to modify are not limited to the original
//! program — is what lets it assemble multi-place repairs (like the two
//! prefix-list edits of the Figure 2 incident) across iterations.

use acr_cfg::Patch;

/// Candidate-generation strategy for the repair engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Suspicious lines × applicable templates, from the best variant.
    BruteForce {
        /// How many top-ranked lines to expand beyond the tied maximum.
        top_lines: usize,
    },
    /// Random mutation over all variants plus single-point crossover.
    Genetic {
        /// Mutations attempted per iteration.
        mutations: usize,
        /// Crossover pairs attempted per iteration.
        crossovers: usize,
        /// Suspicious-line pool size to sample from.
        top_k: usize,
    },
    /// One template application to the *original* configuration only: no
    /// patch accretion across iterations, no crossover. This is the
    /// ablation arm of the multi-patch A/B — by construction it cannot
    /// assemble repairs that need edits at two independent fault sites.
    SinglePatch {
        /// How many top-ranked lines to expand beyond the tied maximum.
        top_lines: usize,
    },
    /// Multi-patch beam search over patch *sets*: the best `width`
    /// variants are each expanded with every per-suspect template fix
    /// *and* with pairwise combinations of fixes at distinct suspicious
    /// lines (capped at `max_pairs` per parent). Combined with the
    /// parent's accumulated patch this searches sets of coordinated
    /// edits directly, instead of waiting for them to accrete one
    /// iteration at a time; the lint and flow gates prune the
    /// combinations like any other candidate.
    Beam {
        /// Beam width: surviving variants expanded per iteration.
        width: usize,
        /// How many top-ranked lines to expand beyond the tied maximum.
        top_lines: usize,
        /// Pairwise fix combinations attempted per expanded parent.
        max_pairs: usize,
    },
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::Genetic {
            mutations: 16,
            crossovers: 4,
            top_k: 10,
        }
    }
}

impl Strategy {
    /// A brute-force strategy with a sensible expansion width.
    pub fn brute_force() -> Self {
        Strategy::BruteForce { top_lines: 15 }
    }

    /// The single-patch ablation arm with a sensible expansion width.
    pub fn single_patch() -> Self {
        Strategy::SinglePatch { top_lines: 15 }
    }

    /// A multi-patch beam with sensible defaults.
    pub fn beam() -> Self {
        Strategy::Beam {
            width: 4,
            top_lines: 10,
            max_pairs: 24,
        }
    }
}

/// Single-point crossover of two patches: the first `point_a` edits of `a`
/// followed by the edits of `b` from `point_b` on. Offspring may fail to
/// apply (the validator discards those), exactly like ill-formed GenProg
/// offspring failing to compile.
pub fn crossover(a: &Patch, b: &Patch, point_a: usize, point_b: usize) -> Patch {
    let mut edits = Vec::new();
    edits.extend(a.edits.iter().take(point_a).cloned());
    edits.extend(b.edits.iter().skip(point_b).cloned());
    Patch { edits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::Edit;
    use acr_net_types::RouterId;

    fn del(r: u32, i: usize) -> Edit {
        Edit::Delete {
            router: RouterId(r),
            index: i,
        }
    }

    #[test]
    fn crossover_combines_prefix_and_suffix() {
        let a = Patch {
            edits: vec![del(0, 0), del(0, 1)],
        };
        let b = Patch {
            edits: vec![del(1, 0), del(1, 1), del(1, 2)],
        };
        let c = crossover(&a, &b, 1, 2);
        assert_eq!(c.edits, vec![del(0, 0), del(1, 2)]);
        // Degenerate points produce copies.
        assert_eq!(crossover(&a, &b, 2, 3), a);
        assert_eq!(crossover(&a, &b, 0, 0), b);
    }

    #[test]
    fn default_strategy_is_genetic() {
        assert!(matches!(Strategy::default(), Strategy::Genetic { .. }));
        assert!(matches!(
            Strategy::brute_force(),
            Strategy::BruteForce { top_lines: 15 }
        ));
    }
}
