//! The pluggable repair-strategy interface.
//!
//! The scenario benchmark (ROADMAP item 5, modeled on the ETH LLM-repair
//! harness) scores *every* repair approach — the paper's
//! localize–fix–validate engine, the MetaProv and AED baselines, and any
//! future strategy — on one shared corpus with shared metrics. This
//! module defines the interface they all sit behind: a [`RepairStrategy`]
//! takes a broken network and an intent spec (possibly a
//! partial-observability restriction of the true spec) and returns a
//! [`StrategyVerdict`].
//!
//! The verdict's `resolved` bit is **harness-judged, not self-reported**:
//! [`StrategyVerdict::judge`] re-verifies the proposed patch against the
//! given spec with a fresh full simulation, so a strategy that believes
//! it fixed the network but introduced a regression (MetaProv's known
//! failure mode) is scored by what its patch actually does.

use crate::engine::{RepairConfig, RepairEngine, RepairOutcome, RepairReport};
use acr_cfg::{NetworkConfig, Patch};
use acr_topo::Topology;
use acr_verify::{Spec, Verifier};
use std::time::Duration;

/// One strategy's attempt at one incident.
#[derive(Debug, Clone)]
pub struct StrategyVerdict {
    /// Whether the patched network passes every test of the given spec,
    /// as judged by an independent full simulation.
    pub resolved: bool,
    /// The proposed patch (`None` when the strategy produced nothing).
    pub patch: Option<Patch>,
    /// Failing tests of the given spec after applying the patch.
    pub residual_failures: usize,
    /// Concrete candidate simulations the strategy spent.
    pub validations: usize,
    /// Wall-clock time of the attempt (the strategy's own run, not the
    /// judging simulation).
    pub wall: Duration,
    /// The full engine report, when the strategy is the ACR engine.
    pub report: Option<Box<RepairReport>>,
}

impl StrategyVerdict {
    /// Judges a proposed patch: applies it to `broken` (an inapplicable
    /// patch counts as proposing nothing) and verifies the result
    /// against `spec` with a full concrete simulation.
    pub fn judge(
        topo: &Topology,
        spec: &Spec,
        broken: &NetworkConfig,
        patch: Option<Patch>,
        validations: usize,
        wall: Duration,
    ) -> Self {
        let patched = match &patch {
            Some(p) => p.apply_cloned(broken).ok(),
            None => None,
        };
        let judged = patched.as_ref().unwrap_or(broken);
        let (v, _) = Verifier::new(topo, spec).run_full(judged);
        let residual_failures = v.failed_count();
        StrategyVerdict {
            resolved: patch.is_some() && patched.is_some() && residual_failures == 0,
            patch,
            residual_failures,
            validations,
            wall,
            report: None,
        }
    }
}

/// A repair approach that can be scored on the scenario corpus.
pub trait RepairStrategy {
    /// Stable display name (used as the bench column key).
    fn name(&self) -> &str;

    /// Attempts to repair `broken` so that `spec` holds on `topo`.
    fn attempt(&self, topo: &Topology, spec: &Spec, broken: &NetworkConfig) -> StrategyVerdict;
}

/// The paper's localize–fix–validate engine behind the strategy
/// interface. The label names the configuration (e.g. `acr-beam` vs
/// `acr-single`), since one engine serves many search strategies.
pub struct AcrStrategy {
    label: String,
    config: RepairConfig,
}

impl AcrStrategy {
    pub fn new(label: impl Into<String>, config: RepairConfig) -> Self {
        AcrStrategy {
            label: label.into(),
            config,
        }
    }

    /// The underlying engine configuration.
    pub fn config(&self) -> &RepairConfig {
        &self.config
    }
}

impl RepairStrategy for AcrStrategy {
    fn name(&self) -> &str {
        &self.label
    }

    fn attempt(&self, topo: &Topology, spec: &Spec, broken: &NetworkConfig) -> StrategyVerdict {
        let engine = RepairEngine::new(topo, spec, self.config.clone());
        let report = engine.repair(broken);
        let patch = match &report.outcome {
            RepairOutcome::Fixed { patch, .. } => Some(patch.clone()),
            RepairOutcome::NoCandidates { best_patch, .. }
            | RepairOutcome::IterationLimit { best_patch, .. } => {
                (!best_patch.is_empty()).then(|| best_patch.clone())
            }
        };
        let mut verdict =
            StrategyVerdict::judge(topo, spec, broken, patch, report.validations, report.wall);
        verdict.report = Some(Box::new(report));
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::{Prefix, RouterId};
    use acr_verify::Property;

    #[test]
    fn judge_rejects_missing_and_inapplicable_patches() {
        // A two-router line with an empty config: the reachability
        // property fails, so nothing resolves without a patch.
        let mut b = acr_topo::TopologyBuilder::new();
        let a = b.router("a", acr_topo::Role::Backbone);
        let c = b.router("c", acr_topo::Role::Backbone);
        b.link(a, c);
        let topo = b.build();
        let spec = Spec::new().with(Property::reach(
            "p",
            RouterId(0),
            Prefix::DEFAULT,
            "10.0.0.0/16".parse::<Prefix>().unwrap(),
        ));
        let cfg = NetworkConfig::default();
        let none = StrategyVerdict::judge(&topo, &spec, &cfg, None, 0, Duration::ZERO);
        assert!(!none.resolved);
        assert!(none.residual_failures >= 1);
        // An inapplicable patch (deleting a line that does not exist)
        // must not panic and must not count as resolved.
        let bad = Patch::single(acr_cfg::Edit::Delete {
            router: RouterId(0),
            index: 99,
        });
        let v = StrategyVerdict::judge(&topo, &spec, &cfg, Some(bad), 0, Duration::ZERO);
        assert!(!v.resolved);
    }
}
