//! Search-space accounting (the paper's Figure 3).
//!
//! Three methods, three spaces:
//!
//! - **MetaProv** (Fig. 3a): the leaf nodes of the provenance tree —
//!   counted exactly via [`acr_prov::Provenance::leaves`] over the failed
//!   tests' derivation roots.
//! - **AED** (Fig. 3b): `2^(free variables)` of the whole-configuration
//!   delta encoding — one delta boolean per configuration line plus one
//!   value variable per symbolizable parameter. We report the *exponent*
//!   (the blow-up makes the count itself unrepresentable).
//! - **ACR** (Fig. 3c): the leaf nodes of the search forest — one leaf
//!   per (suspicious line, applicable template, instantiation) triple.

use crate::ctx::RepairCtx;
use crate::templates::{candidates_for_line, templates_for};
use acr_cfg::{NetworkConfig, Stmt};
use acr_prov::Provenance;
use acr_sim::DerivArena;
use acr_verify::Verification;

/// ACR's search space at one repair step: the number of candidate atomic
/// changes reachable from the currently suspicious lines (leaves of the
/// search forest, Fig. 3c). `pool` is the suspicious-line set the
/// localizer produced.
pub fn acr_space(ctx: &RepairCtx<'_>, pool: &[acr_cfg::LineId]) -> usize {
    pool.iter()
        .map(|l| candidates_for_line(*l, ctx).len())
        .sum()
}

/// An upper bound on ACR's *static* search space: every failure-covered
/// line times its template count (no instantiation/solving), useful when
/// comparing scaling trends without running the solver.
pub fn acr_space_static(ctx: &RepairCtx<'_>, verification: &Verification) -> usize {
    verification
        .matrix
        .failure_covered_lines()
        .iter()
        .filter_map(|l| ctx.stmt(*l))
        .map(|s| templates_for(s).len())
        .sum()
}

/// MetaProv's search space: leaf nodes of the provenance of the failed
/// tests (Fig. 3a).
pub fn metaprov_space(arena: &DerivArena, verification: &Verification) -> usize {
    let prov = Provenance::new(arena);
    let roots = verification
        .failures()
        .flat_map(|r| r.deriv_roots.iter().copied())
        .collect::<Vec<_>>();
    prov.leaves(roots).len()
}

/// AED's free-variable count (the exponent of Fig. 3b): one delta boolean
/// per line plus one value variable per symbolizable parameter.
pub fn aed_free_variables(cfg: &NetworkConfig) -> usize {
    let mut vars = 0usize;
    for (_, device) in cfg.devices() {
        for stmt in device.stmts() {
            vars += 1; // the delta (enabled/disabled) variable
            vars += symbolizable_params(stmt);
        }
    }
    vars
}

/// How many parameters of a statement a synthesis encoding would make
/// symbolic (prefixes, AS numbers, next hops, ports…).
pub fn symbolizable_params(stmt: &Stmt) -> usize {
    match stmt {
        Stmt::BgpProcess(_) => 1,
        Stmt::RouterId(_) => 1,
        Stmt::Network(_) => 1,
        Stmt::ImportRoute(_) => 1,
        Stmt::GroupDef(_) => 0,
        Stmt::PeerAs { .. } => 2,
        Stmt::PeerGroup { .. } => 1,
        Stmt::PeerPolicy { .. } => 1,
        Stmt::RoutePolicyDef { .. } => 1,
        Stmt::IfMatchPrefixList(_) => 1,
        Stmt::IfMatchCommunity(_) => 1,
        Stmt::ApplyAsPathOverwrite(_) => 1,
        Stmt::ApplyAsPathPrepend { .. } => 2,
        Stmt::ApplyLocalPref(_) | Stmt::ApplyMed(_) | Stmt::ApplyCommunity(_) => 1,
        Stmt::AclRule(_) => 4,
        Stmt::PbrRule { .. } => 2,
        Stmt::IpAddress { .. } => 2,
        Stmt::PrefixListEntry { .. } => 3,
        Stmt::StaticRoute { .. } => 2,
        Stmt::AclDef(_) | Stmt::PbrPolicyDef(_) | Stmt::Interface(_) => 0,
        Stmt::ApplyTrafficPolicy(_) => 1,
        Stmt::Remark(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::parse::parse_device;
    use acr_net_types::RouterId;

    #[test]
    fn aed_variables_grow_with_config() {
        let mut cfg = NetworkConfig::new();
        cfg.insert(
            RouterId(0),
            parse_device(
                "A",
                "bgp 65001\n network 10.0.0.0 16\nip route-static 20.0.0.0 16 NULL0\n",
            )
            .unwrap(),
        );
        let small = aed_free_variables(&cfg);
        // 3 lines: bgp (1+1), network (1+1), static (1+2) = 7.
        assert_eq!(small, 7);
        cfg.insert(
            RouterId(1),
            parse_device("B", "bgp 65002\n peer 10.0.0.1 as-number 65001\n").unwrap(),
        );
        assert!(aed_free_variables(&cfg) > small);
    }

    #[test]
    fn symbolizable_params_match_statement_shape() {
        assert_eq!(
            symbolizable_params(&Stmt::PrefixListEntry {
                list: "l".into(),
                index: 10,
                action: acr_cfg::PlAction::Permit,
                prefix: "10.0.0.0/8".parse().unwrap(),
                ge: None,
                le: None,
            }),
            3
        );
        assert_eq!(symbolizable_params(&Stmt::Remark("x".into())), 0);
    }
}
