//! The `acr-lint` hooks inside the repair loop: static findings boost
//! localization, and candidates that introduce a fresh lint error are
//! pruned before they reach the simulator.

use acr_core::{OperatorSet, RepairConfig, RepairEngine, RepairReport};
use acr_topo::gen;
use acr_workloads::{generate, try_inject, FaultType, GeneratedNetwork};

fn run(
    net: &GeneratedNetwork,
    broken: &acr_cfg::NetworkConfig,
    lint: bool,
    seed: u64,
) -> RepairReport {
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            seed,
            lint,
            operators: OperatorSet::Both,
            ..RepairConfig::default()
        },
    );
    engine.repair(broken)
}

/// The gate fires on a real incident: donor-copied edits that dangle are
/// rejected without a validation, and the repair still lands.
#[test]
fn lint_gate_prunes_candidates_and_repair_still_lands() {
    let net = generate(&gen::wan(4, 8));
    let incident = try_inject(FaultType::StaleRouteMap, &net, 0).expect("injectable");
    let on = run(&net, &incident.broken, true, 0);
    let off = run(&net, &incident.broken, false, 0);
    assert!(on.outcome.is_fixed() && off.outcome.is_fixed());
    let pruned: usize = on.iterations.iter().map(|s| s.lint_rejected).sum();
    assert!(pruned >= 1, "the static gate never fired");
    assert!(
        on.validations < off.validations,
        "lint-seeded repair used {} validations vs {} without",
        on.validations,
        off.validations
    );
    // With the gate off, nothing may ever be counted as lint-rejected.
    assert!(off.iterations.iter().all(|s| s.lint_rejected == 0));
}

/// Across a batch of incidents, lint seeding shrinks the total number of
/// candidate simulations without losing any repair.
#[test]
fn lint_seeding_cuts_the_validation_budget() {
    let net = generate(&gen::wan(4, 8));
    let (mut total_on, mut total_off) = (0usize, 0usize);
    for seed in 0..4u64 {
        let incident = try_inject(FaultType::MissingPeerGroup, &net, seed).expect("injectable");
        let on = run(&net, &incident.broken, true, 0);
        let off = run(&net, &incident.broken, false, 0);
        assert!(
            on.outcome.is_fixed(),
            "lint-on repair failed at seed {seed}"
        );
        assert!(
            off.outcome.is_fixed(),
            "lint-off repair failed at seed {seed}"
        );
        total_on += on.validations;
        total_off += off.validations;
    }
    assert!(
        total_on < total_off,
        "expected fewer simulations with lint seeding: {total_on} vs {total_off}"
    );
}
