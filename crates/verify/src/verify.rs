//! Full-network verification.
//!
//! [`Verifier::run_full`] simulates every originated prefix, walks every
//! test packet, classifies violations and assembles the coverage matrix.
//! The per-test coverage is the provenance closure of:
//!
//! - the derivations consulted by the forwarding walk (FIB entries, PBR
//!   rules), and
//! - the control-plane outcome of every simulated prefix covering the
//!   packet's destination (a test on a prefix "executes" the lines that
//!   propagated that prefix network-wide — NetCov-style semantics, which
//!   reproduces the coverage table of the paper's Figure 2b), and
//! - for *failed* tests, the session diagnostics (negative provenance: a
//!   down session is a candidate explanation for a missing route).

use crate::spec::{PropertyKind, Spec, TestCase};
use crate::violation::Violation;
use acr_cfg::NetworkConfig;
use acr_net_types::{Prefix, RouterId};
use acr_prov::{CoverageMatrix, TestCoverage, TestId};
use acr_sim::{
    forward, CompiledBase, DerivArena, DerivId, ForwardOutcome, PrefixOutcome, SessionDiag,
    SimOutcome, Simulator,
};
use acr_topo::Topology;
use std::borrow::Borrow;
use std::collections::BTreeMap;

/// One test's verification record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRecord {
    pub id: TestId,
    pub property: String,
    pub kind: PropertyKind,
    pub flow: acr_net_types::Flow,
    pub start: RouterId,
    pub passed: bool,
    pub violation: Option<Violation>,
    /// Routers visited by the walk (empty when the destination prefix was
    /// flapping and no walk was attempted).
    pub path: Vec<RouterId>,
    /// Derivation roots supporting this verdict (provenance entry points).
    pub deriv_roots: Vec<DerivId>,
}

/// The result of verifying one configuration against a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verification {
    pub records: Vec<TestRecord>,
    pub matrix: CoverageMatrix,
    /// Prefixes that failed to converge in this run.
    pub flapping: Vec<Prefix>,
    /// Configured-but-down peers (for peer-repair templates).
    pub session_diags: Vec<SessionDiag>,
}

impl Verification {
    /// Number of failed tests — the paper's fitness function (§5).
    pub fn failed_count(&self) -> usize {
        self.records.iter().filter(|r| !r.passed).count()
    }

    /// Whether every test passed.
    pub fn all_passed(&self) -> bool {
        self.failed_count() == 0
    }

    /// The failed records.
    pub fn failures(&self) -> impl Iterator<Item = &TestRecord> {
        self.records.iter().filter(|r| !r.passed)
    }
}

/// A verifier bound to a topology and specification; the test suite is
/// generated once and reused across candidate configurations so spectra
/// are comparable.
pub struct Verifier<'a> {
    topo: &'a Topology,
    spec: &'a Spec,
    tests: Vec<TestCase>,
}

impl<'a> Verifier<'a> {
    /// One sampled packet per property (the paper's default).
    pub fn new(topo: &'a Topology, spec: &'a Spec) -> Self {
        Self::with_samples(topo, spec, 1)
    }

    /// `samples` packets per property.
    pub fn with_samples(topo: &'a Topology, spec: &'a Spec, samples: u32) -> Self {
        Verifier {
            topo,
            spec,
            tests: spec.generate_tests(samples),
        }
    }

    /// The topology under verification.
    pub fn topo(&self) -> &'a Topology {
        self.topo
    }

    /// The specification.
    pub fn spec(&self) -> &'a Spec {
        self.spec
    }

    /// The generated test suite.
    pub fn tests(&self) -> &[TestCase] {
        &self.tests
    }

    /// A stable identity hash of this verifier's evaluation context:
    /// the topology plus the generated test suite (which pins the spec's
    /// properties and sampling). Two verifiers with equal context
    /// fingerprints produce identical verdicts for identical rendered
    /// configurations — the premise the simulation memo-cache
    /// ([`crate::SimCache`]) rests on.
    pub fn context_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.topo.fingerprint().hash(&mut h);
        self.spec.properties.hash(&mut h);
        self.tests.hash(&mut h);
        h.finish()
    }

    /// Full verification: simulate everything, evaluate every test.
    pub fn run_full(&self, cfg: &NetworkConfig) -> (Verification, SimOutcome) {
        let sim = Simulator::new(self.topo, cfg);
        self.run_with(&sim)
    }

    /// [`Verifier::run_full`] over a precompiled base: nothing is
    /// recompiled or re-established, only the per-prefix simulation runs.
    pub fn run_full_from(&self, base: &CompiledBase<'_>) -> (Verification, SimOutcome) {
        let sim = Simulator::from_base(base);
        self.run_with(&sim)
    }

    /// Shared tail of the full-verification entry points.
    fn run_with(&self, sim: &Simulator<'_>) -> (Verification, SimOutcome) {
        // Destructure instead of cloning: `evaluate` needs the outcome
        // maps by shared reference alongside the arena by mutable
        // reference, which field-level borrows provide for free.
        let SimOutcome {
            outcomes,
            fibs,
            mut arena,
            session_diags,
        } = sim.run();
        let verification = self.evaluate(sim, &outcomes, &fibs, &mut arena, &session_diags[..]);
        (
            verification,
            SimOutcome {
                outcomes,
                fibs,
                arena,
                session_diags,
            },
        )
    }

    /// [`Verifier::run_full`] through the memo-cache: an exact fingerprint
    /// hit returns a clone of the first computation (bit-identical, since
    /// the simulator is deterministic) without simulating anything.
    pub fn run_full_cached(
        &self,
        cfg: &NetworkConfig,
        cache: &crate::SimCache,
    ) -> (Verification, SimOutcome) {
        let key = (self.context_fingerprint(), cfg.fingerprint());
        if let Some(hit) = cache.peek_full(key) {
            return (hit.0.clone(), hit.1.clone());
        }
        let (verification, outcome) = self.run_full(cfg);
        cache.insert_full(key, (verification.clone(), outcome.clone()));
        (verification, outcome)
    }

    /// Evaluates the test suite against precomputed simulation state.
    /// Shared by the full and incremental paths. Generic over `Borrow` so
    /// the candidate-validation path can pass outcome *references* into
    /// the committed cache instead of cloning them.
    pub(crate) fn evaluate<O: Borrow<PrefixOutcome>>(
        &self,
        sim: &Simulator<'_>,
        outcomes: &BTreeMap<Prefix, O>,
        fibs: &[acr_sim::Fib],
        arena: &mut DerivArena,
        session_diags: &[SessionDiag],
    ) -> Verification {
        let mut records = Vec::with_capacity(self.tests.len());
        let mut matrix = CoverageMatrix::new();
        let flapping: Vec<Prefix> = outcomes
            .iter()
            .filter(|(_, o)| !Borrow::<PrefixOutcome>::borrow(*o).is_converged())
            .map(|(p, _)| *p)
            .collect();

        for test in &self.tests {
            let prop = &self.spec.properties[test.property];
            // Control-plane roots: every simulated prefix covering dst.
            let mut roots: Vec<DerivId> = Vec::new();
            let mut reject_roots: Vec<DerivId> = Vec::new();
            let mut flap_hit: Option<Prefix> = None;
            for (p, o) in outcomes {
                let o = o.borrow();
                if p.contains(test.flow.dst) {
                    roots.extend(o.deriv_roots());
                    reject_roots.extend_from_slice(o.rejection_roots());
                    if !o.is_converged() && flap_hit.is_none() {
                        flap_hit = Some(*p);
                    }
                }
            }

            let (passed, violation, path) = if let Some(p) = flap_hit {
                // A flapping destination fails every property kind: the
                // network has no stable behaviour to certify.
                (false, Some(Violation::Flapping(p)), Vec::new())
            } else {
                let res =
                    forward::walk(self.topo, sim.models(), fibs, test.start, &test.flow, arena);
                roots.extend(res.derivs.iter().copied());
                let (passed, violation) = judge(&prop.kind, &res);
                (passed, violation, res.path)
            };

            if !passed {
                // Negative provenance: rejected announcements of the
                // destination prefix are candidate explanations of the
                // failure (a deny-type fault leaves no positive trace).
                roots.extend(reject_roots);
            }
            let mut lines = arena.closure_lines(roots.iter().copied());
            if !passed {
                // Negative provenance (Y!-style): a failed test also
                // "covers" the candidate explanations for the missing
                // behaviour — down-session lines and the origination
                // statements of the destination's owner. Without this,
                // omission faults (e.g. a missing `import-route static`)
                // leave the failure covering nothing and SBFL blind.
                for d in session_diags {
                    lines.extend(d.lines.iter().copied());
                }
                lines.extend(negative_origin_lines(
                    self.topo,
                    sim.models(),
                    test.flow.dst,
                ));
                lines.sort_unstable();
                lines.dedup();
            }
            matrix.push(TestCoverage {
                test: test.id,
                passed,
                lines: lines.into_iter().collect(),
            });
            records.push(TestRecord {
                id: test.id,
                property: prop.name.clone(),
                kind: prop.kind.clone(),
                flow: test.flow,
                start: test.start,
                passed,
                violation,
                path,
                deriv_roots: roots,
            });
        }
        Verification {
            records,
            matrix,
            flapping,
            session_diags: session_diags.to_vec(),
        }
    }
}

/// Candidate origination lines for an unreachable destination: the BGP
/// process, matching static routes, matching `network` statements and the
/// redistribution statements on the router that owns the destination.
fn negative_origin_lines<M: Borrow<acr_cfg::DeviceModel>>(
    topo: &Topology,
    models: &[M],
    dst: acr_net_types::Ipv4Addr,
) -> Vec<acr_cfg::LineId> {
    let Some(owner) = topo.delivery_router(dst) else {
        return Vec::new();
    };
    let m = models[owner.index()].borrow();
    let mut lines = Vec::new();
    if let Some((_, l)) = m.asn {
        lines.push(acr_cfg::LineId::new(owner, l));
    }
    for sr in &m.static_routes {
        if sr.prefix.contains(dst) {
            lines.push(acr_cfg::LineId::new(owner, sr.line));
        }
    }
    for (p, l) in &m.networks {
        if p.contains(dst) {
            lines.push(acr_cfg::LineId::new(owner, *l));
        }
    }
    for (_, l) in &m.redistribute {
        lines.push(acr_cfg::LineId::new(owner, *l));
    }
    lines
}

/// Applies a property kind to a walk result.
fn judge(kind: &PropertyKind, res: &forward::ForwardResult) -> (bool, Option<Violation>) {
    match kind {
        PropertyKind::Reachability => match &res.outcome {
            ForwardOutcome::Delivered(_) => (true, None),
            ForwardOutcome::Loop(path) => (false, Some(Violation::ForwardingLoop(path.clone()))),
            ForwardOutcome::NoRoute(r) => (false, Some(Violation::Blackhole(*r))),
            ForwardOutcome::DroppedNull0(r)
            | ForwardOutcome::DroppedPbr(r)
            | ForwardOutcome::DroppedBadRedirect(r) => (false, Some(Violation::Dropped(*r))),
        },
        PropertyKind::Isolation => match &res.outcome {
            ForwardOutcome::Delivered(r) => (false, Some(Violation::UnexpectedDelivery(*r))),
            ForwardOutcome::Loop(path) => (false, Some(Violation::ForwardingLoop(path.clone()))),
            _ => (true, None),
        },
        PropertyKind::Waypoint(via) => match &res.outcome {
            ForwardOutcome::Delivered(_) if res.path.contains(via) => (true, None),
            ForwardOutcome::Delivered(_) => (false, Some(Violation::WaypointMissed(*via))),
            ForwardOutcome::Loop(path) => (false, Some(Violation::ForwardingLoop(path.clone()))),
            ForwardOutcome::NoRoute(r) => (false, Some(Violation::Blackhole(*r))),
            ForwardOutcome::DroppedNull0(r)
            | ForwardOutcome::DroppedPbr(r)
            | ForwardOutcome::DroppedBadRedirect(r) => (false, Some(Violation::Dropped(*r))),
        },
        PropertyKind::Avoids(banned) => match &res.outcome {
            ForwardOutcome::Delivered(_) if !res.path.contains(banned) => (true, None),
            ForwardOutcome::Delivered(_) => (false, Some(Violation::ForbiddenTransit(*banned))),
            ForwardOutcome::Loop(path) => (false, Some(Violation::ForwardingLoop(path.clone()))),
            ForwardOutcome::NoRoute(r) => (false, Some(Violation::Blackhole(*r))),
            ForwardOutcome::DroppedNull0(r)
            | ForwardOutcome::DroppedPbr(r)
            | ForwardOutcome::DroppedBadRedirect(r) => (false, Some(Violation::Dropped(*r))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Property;
    use acr_cfg::parse::parse_device;
    use acr_topo::gen;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// R0 — R1 — R2 with 10.0/16 at R0 and 10.2/16 at R2, full BGP.
    fn scenario() -> (Topology, NetworkConfig, Spec) {
        let topo = gen::line(3);
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n",
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
            "bgp 65002\n network 10.2.0.0 16\n peer 172.16.0.5 as-number 65001\n",
        ];
        let mut cfg = NetworkConfig::new();
        for (r, c) in topo.routers().iter().zip(cfgs) {
            cfg.insert(r.id, parse_device(r.name.clone(), c).unwrap());
        }
        let spec = Spec::new()
            .with(Property::reach(
                "r0->r2",
                RouterId(0),
                p("10.0.0.0/16"),
                p("10.2.0.0/16"),
            ))
            .with(Property::reach(
                "r2->r0",
                RouterId(2),
                p("10.2.0.0/16"),
                p("10.0.0.0/16"),
            ));
        (topo, cfg, spec)
    }

    #[test]
    fn healthy_network_passes_everything() {
        let (topo, cfg, spec) = scenario();
        let verifier = Verifier::new(&topo, &spec);
        let (v, _) = verifier.run_full(&cfg);
        assert!(v.all_passed(), "{:?}", v.records);
        assert_eq!(v.matrix.totals(), (2, 0));
        assert!(v.flapping.is_empty());
    }

    #[test]
    fn broken_session_fails_with_blackhole() {
        let (topo, mut cfg, spec) = scenario();
        // Break R1->R2 by mangling the AS number.
        cfg.insert(
            RouterId(1),
            parse_device(
                "R1",
                "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 64999\n",
            )
            .unwrap(),
        );
        let verifier = Verifier::new(&topo, &spec);
        let (v, _) = verifier.run_full(&cfg);
        assert_eq!(v.failed_count(), 2);
        for rec in v.failures() {
            assert!(
                matches!(rec.violation, Some(Violation::Blackhole(_))),
                "{rec:?}"
            );
        }
        // Failed coverage includes the session-diag lines (the bad peer
        // statement on R1 is line 3).
        let failed_cov = v.matrix.failure_covered_lines();
        assert!(
            failed_cov.contains(&acr_cfg::LineId::new(RouterId(1), 3)),
            "{failed_cov:?}"
        );
    }

    #[test]
    fn isolation_property_inverts_verdict() {
        let (topo, cfg, _) = scenario();
        let spec = Spec::new().with(Property::isolate(
            "r0-x-r2",
            RouterId(0),
            p("10.0.0.0/16"),
            p("10.2.0.0/16"),
        ));
        let verifier = Verifier::new(&topo, &spec);
        let (v, _) = verifier.run_full(&cfg);
        assert_eq!(v.failed_count(), 1);
        assert!(matches!(
            v.records[0].violation,
            Some(Violation::UnexpectedDelivery(_))
        ));
    }

    #[test]
    fn waypoint_property_checks_path() {
        let (topo, cfg, _) = scenario();
        let via_r1 = Spec::new().with(Property {
            name: "via-r1".into(),
            hs: acr_net_types::HeaderSpace::between(p("10.0.0.0/16"), p("10.2.0.0/16")),
            start: RouterId(0),
            kind: PropertyKind::Waypoint(RouterId(1)),
        });
        let verifier = Verifier::new(&topo, &via_r1);
        let (v, _) = verifier.run_full(&cfg);
        assert!(v.all_passed());

        let via_r9 = Spec::new().with(Property {
            name: "via-missing".into(),
            hs: acr_net_types::HeaderSpace::between(p("10.0.0.0/16"), p("10.2.0.0/16")),
            start: RouterId(0),
            kind: PropertyKind::Waypoint(RouterId(0)),
        });
        // Waypoint = start router trivially holds; use an unreachable id
        // via a fresh spec instead.
        let verifier = Verifier::new(&topo, &via_r9);
        let (v, _) = verifier.run_full(&cfg);
        assert!(v.all_passed());
    }

    #[test]
    fn passed_coverage_reaches_remote_origin_lines() {
        let (topo, cfg, spec) = scenario();
        let verifier = Verifier::new(&topo, &spec);
        let (v, _) = verifier.run_full(&cfg);
        // Test 0 (R0 -> 10.2/16): coverage includes R2's network line (2).
        let cov = &v.matrix.tests()[0].lines;
        assert!(
            cov.contains(&acr_cfg::LineId::new(RouterId(2), 2)),
            "{cov:?}"
        );
        // ... and R1's transit peer lines.
        assert!(
            cov.contains(&acr_cfg::LineId::new(RouterId(1), 2)),
            "{cov:?}"
        );
    }

    #[test]
    fn records_carry_paths_and_roots() {
        let (topo, cfg, spec) = scenario();
        let verifier = Verifier::new(&topo, &spec);
        let (v, out) = verifier.run_full(&cfg);
        let rec = &v.records[0];
        assert_eq!(rec.path, vec![RouterId(0), RouterId(1), RouterId(2)]);
        assert!(!rec.deriv_roots.is_empty());
        // Roots are valid in the returned arena.
        let lines = out.arena.closure_lines(rec.deriv_roots.iter().copied());
        assert!(!lines.is_empty());
    }
}
