//! The intent specification language and test generation.

use acr_net_types::{Flow, HeaderSpace, Prefix, RouterId};
use acr_prov::TestId;
use std::fmt;

/// What a property asserts about its header space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropertyKind {
    /// Packets must be delivered to the destination network (and,
    /// implicitly, must not loop, blackhole, or ride a flapping prefix).
    Reachability,
    /// Packets must *not* reach the destination (dropped or unrouted is a
    /// pass; delivery — or a loop — is a violation).
    Isolation,
    /// Packets must be delivered and the forwarding path must visit the
    /// given router.
    Waypoint(RouterId),
    /// Packets must be delivered *without* transiting the given router
    /// (traffic-engineering intents: keep this flow off that box).
    Avoids(RouterId),
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyKind::Reachability => f.write_str("reachability"),
            PropertyKind::Isolation => f.write_str("isolation"),
            PropertyKind::Waypoint(r) => write!(f, "waypoint({r})"),
            PropertyKind::Avoids(r) => write!(f, "avoids({r})"),
        }
    }
}

/// One operator intent: a named assertion over a header space, evaluated
/// by injecting sampled packets at `start`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Property {
    pub name: String,
    pub hs: HeaderSpace,
    /// Injection router (where the traffic enters the network).
    pub start: RouterId,
    pub kind: PropertyKind,
}

impl Property {
    /// A reachability intent from `start` towards `dst`.
    pub fn reach(name: impl Into<String>, start: RouterId, src: Prefix, dst: Prefix) -> Self {
        Property {
            name: name.into(),
            hs: HeaderSpace::between(src, dst),
            start,
            kind: PropertyKind::Reachability,
        }
    }

    /// An isolation intent from `start` towards `dst`.
    pub fn isolate(name: impl Into<String>, start: RouterId, src: Prefix, dst: Prefix) -> Self {
        Property {
            name: name.into(),
            hs: HeaderSpace::between(src, dst),
            start,
            kind: PropertyKind::Isolation,
        }
    }
}

/// An operator specification: the list of intents the network must hold.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Spec {
    pub properties: Vec<Property>,
}

impl Spec {
    /// An empty specification.
    pub fn new() -> Self {
        Spec::default()
    }

    /// Adds a property (builder style).
    pub fn with(mut self, p: Property) -> Self {
        self.properties.push(p);
        self
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.properties.len()
    }

    /// Whether the spec is empty.
    pub fn is_empty(&self) -> bool {
        self.properties.is_empty()
    }

    /// Generates the concrete test suite: `samples_per_property` packets
    /// per property, deterministically drawn from each header space.
    pub fn generate_tests(&self, samples_per_property: u32) -> Vec<TestCase> {
        assert!(samples_per_property >= 1);
        let mut out = Vec::new();
        for (pi, prop) in self.properties.iter().enumerate() {
            for s in 0..samples_per_property {
                out.push(TestCase {
                    id: TestId(out.len() as u32),
                    property: pi,
                    flow: prop.hs.sample(s),
                    start: prop.start,
                });
            }
        }
        out
    }
}

/// One concrete test: a sampled packet evaluated against its property.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TestCase {
    pub id: TestId,
    /// Index into [`Spec::properties`].
    pub property: usize,
    pub flow: Flow,
    pub start: RouterId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn test_generation_is_deterministic_and_in_space() {
        let spec = Spec::new()
            .with(Property::reach(
                "a",
                RouterId(0),
                p("10.0.0.0/16"),
                p("10.1.0.0/16"),
            ))
            .with(Property::isolate(
                "b",
                RouterId(1),
                p("10.1.0.0/16"),
                p("10.2.0.0/16"),
            ));
        let t1 = spec.generate_tests(3);
        let t2 = spec.generate_tests(3);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 6);
        for t in &t1 {
            let prop = &spec.properties[t.property];
            assert!(
                prop.hs.contains(&t.flow),
                "{:?} outside {:?}",
                t.flow,
                prop.hs
            );
            assert_eq!(t.start, prop.start);
        }
        // Ids are dense and ordered.
        assert_eq!(
            t1.iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn single_sample_per_property() {
        let spec = Spec::new().with(Property::reach(
            "a",
            RouterId(0),
            Prefix::DEFAULT,
            p("10.0.0.0/8"),
        ));
        assert_eq!(spec.generate_tests(1).len(), 1);
        assert_eq!(spec.len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_samples_rejected() {
        Spec::new().generate_tests(0);
    }
}
