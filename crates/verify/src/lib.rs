//! # acr-verify
//!
//! The verification substrate of ACR:
//!
//! - [`spec`] — the intent language. Each [`Property`] quantifies over a
//!   header space and asserts reachability, isolation or waypointing; the
//!   test generator samples one (or more) concrete packets per property,
//!   exactly as the paper's §4.1 proposes ("for each property, we sample a
//!   packet from its header space as a test").
//! - [`mask`] — partial-observability masking: a deterministic
//!   [`ObsMask`] selects the subset of properties the verifier actually
//!   sees, modelling sampled-FIB / partial-intent diagnosis.
//! - [`verify`] — full verification: simulate, walk every test packet,
//!   classify violations (flapping, loops, blackholes, policy breaches)
//!   and extract per-test configuration-line coverage for SBFL.
//! - [`incremental`] — the DNA-style incremental verifier (§3.2
//!   observation (3)): it caches per-prefix control-plane outcomes in a
//!   persistent content-addressed arena and, given a candidate patch,
//!   re-simulates only the prefixes the patch can affect.
//! - [`testgen`] — automatic test-suite generation for networks without
//!   a specification (the paper's §6 open question): topology-derived
//!   reachability specs plus coverage-guided sample growth.

pub mod cache;
pub mod incremental;
pub mod mask;
pub mod spec;
pub mod testgen;
pub mod verify;
pub mod violation;

pub use cache::{make_entry, rebase_verification, CandidateEntry, CandidateKey, FullKey, SimCache};
pub use incremental::{CandidateValidator, IncrementalStats, IncrementalVerifier};
pub use mask::ObsMask;
pub use spec::{Property, PropertyKind, Spec, TestCase};
pub use testgen::{coverage_guided_suite, derive_spec, SuiteStats};
pub use verify::{TestRecord, Verification, Verifier};
pub use violation::Violation;
