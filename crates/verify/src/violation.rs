//! Intent violations.

use acr_net_types::{Prefix, RouterId};
use std::fmt;

/// Why a test failed its property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The destination prefix never converged (route flapping) — the
    /// failure mode of the paper's example incident.
    Flapping(Prefix),
    /// The packet revisited a router.
    ForwardingLoop(Vec<RouterId>),
    /// No route at this router (blackhole).
    Blackhole(RouterId),
    /// The packet was dropped (NULL0 / PBR) though the intent requires
    /// delivery.
    Dropped(RouterId),
    /// An isolation intent was breached: the packet was delivered.
    UnexpectedDelivery(RouterId),
    /// The waypoint router was bypassed.
    WaypointMissed(RouterId),
    /// The packet transited a router an `avoids` intent forbids.
    ForbiddenTransit(RouterId),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Flapping(p) => write!(f, "route flapping for {p}"),
            Violation::ForwardingLoop(path) => {
                write!(f, "forwarding loop:")?;
                for r in path {
                    write!(f, " {r}")?;
                }
                Ok(())
            }
            Violation::Blackhole(r) => write!(f, "blackhole at {r}"),
            Violation::Dropped(r) => write!(f, "dropped at {r}"),
            Violation::UnexpectedDelivery(r) => write!(f, "unexpected delivery at {r}"),
            Violation::WaypointMissed(w) => write!(f, "waypoint {w} bypassed"),
            Violation::ForbiddenTransit(r) => write!(f, "forbidden transit through {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_operator_readable() {
        assert_eq!(
            Violation::Flapping("10.0.0.0/16".parse().unwrap()).to_string(),
            "route flapping for 10.0.0.0/16"
        );
        assert_eq!(
            Violation::ForwardingLoop(vec![RouterId(2), RouterId(3), RouterId(2)]).to_string(),
            "forwarding loop: r2 r3 r2"
        );
        assert_eq!(
            Violation::Blackhole(RouterId(1)).to_string(),
            "blackhole at r1"
        );
    }
}
