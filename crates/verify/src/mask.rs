//! Partial-observability masking.
//!
//! Production incidents are rarely diagnosed with a full view of the
//! network: the monitoring plane samples FIBs, probes a subset of flows,
//! and the operator's intent suite covers only the properties someone
//! thought to write down. An [`ObsMask`] models this by selecting a
//! deterministic subset of a [`Spec`]'s properties; [`ObsMask::restrict`]
//! produces the spec the verifier actually sees.
//!
//! Because every property's verdict is judged independently (a test
//! record depends only on its own sampled packet and the converged
//! state), masking is *sound by construction*: a property visible under
//! the mask receives exactly the verdict it would receive under full
//! observability. `tests/prop_scenarios.rs` pins that theorem with a
//! proptest; what masking changes is *completeness* — violations of
//! hidden properties are invisible, so a repair accepted under a mask may
//! leave hidden failures behind. The scenario harness measures exactly
//! that gap.

use crate::spec::Spec;
use acr_net_types::SplitMix64;
use std::collections::BTreeSet;

/// A deterministic subset of a spec's property indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObsMask {
    visible: BTreeSet<usize>,
    total: usize,
}

impl ObsMask {
    /// Full observability over a spec with `total` properties.
    pub fn full(total: usize) -> Self {
        ObsMask {
            visible: (0..total).collect(),
            total,
        }
    }

    /// Samples a mask keeping roughly `keep_percent`% of `spec`'s
    /// properties, deterministically from `seed`. At least one property
    /// is always kept (an all-blind verifier is not a scenario, it's an
    /// outage of the monitoring plane).
    pub fn sample(spec: &Spec, keep_percent: u32, seed: u64) -> Self {
        let total = spec.len();
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut visible = BTreeSet::new();
        for i in 0..total {
            if rng.next_f64() * 100.0 < keep_percent as f64 {
                visible.insert(i);
            }
        }
        if visible.is_empty() && total > 0 {
            visible.insert((seed as usize) % total);
        }
        ObsMask { visible, total }
    }

    /// Forces property `idx` to be visible (used by scenario generation
    /// to guarantee at least one *failing* property stays observable).
    pub fn ensure_visible(&mut self, idx: usize) {
        if idx < self.total {
            self.visible.insert(idx);
        }
    }

    /// Whether property `idx` of the full spec is visible.
    pub fn is_visible(&self, idx: usize) -> bool {
        self.visible.contains(&idx)
    }

    /// Visible property indices, ascending.
    pub fn visible(&self) -> impl Iterator<Item = usize> + '_ {
        self.visible.iter().copied()
    }

    /// Number of visible properties.
    pub fn visible_count(&self) -> usize {
        self.visible.len()
    }

    /// Number of hidden properties.
    pub fn hidden_count(&self) -> usize {
        self.total - self.visible.len()
    }

    /// Size of the full spec this mask was drawn over.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether the mask hides nothing.
    pub fn is_full(&self) -> bool {
        self.visible.len() == self.total
    }

    /// The spec the masked verifier sees: the visible properties of
    /// `spec`, in their original order.
    pub fn restrict(&self, spec: &Spec) -> Spec {
        let properties = spec
            .properties
            .iter()
            .enumerate()
            .filter(|(i, _)| self.visible.contains(i))
            .map(|(_, p)| p.clone())
            .collect();
        Spec { properties }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Property;
    use acr_net_types::{Prefix, RouterId};

    fn spec(n: usize) -> Spec {
        let mut s = Spec::new();
        for i in 0..n {
            s = s.with(Property::reach(
                format!("p{i}"),
                RouterId(0),
                Prefix::DEFAULT,
                format!("10.{i}.0.0/16").parse().unwrap(),
            ));
        }
        s
    }

    #[test]
    fn sampling_is_deterministic_and_nonempty() {
        let s = spec(10);
        for seed in 0..50u64 {
            let a = ObsMask::sample(&s, 50, seed);
            let b = ObsMask::sample(&s, 50, seed);
            assert_eq!(a, b);
            assert!(a.visible_count() >= 1, "seed {seed} produced a blind mask");
            assert_eq!(a.visible_count() + a.hidden_count(), 10);
        }
        // Different seeds eventually produce different masks.
        let distinct: std::collections::HashSet<_> = (0..50u64)
            .map(|seed| ObsMask::sample(&s, 50, seed))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn restrict_preserves_order_and_identity() {
        let s = spec(6);
        let mut m = ObsMask::sample(&s, 40, 7);
        m.ensure_visible(3);
        let restricted = m.restrict(&s);
        assert_eq!(restricted.len(), m.visible_count());
        let names: Vec<_> = restricted.properties.iter().map(|p| &p.name).collect();
        let expect: Vec<String> = m.visible().map(|i| format!("p{i}")).collect();
        assert_eq!(names, expect.iter().collect::<Vec<_>>());
        assert!(m.is_visible(3));
    }

    #[test]
    fn full_mask_is_identity() {
        let s = spec(4);
        let m = ObsMask::full(s.len());
        assert!(m.is_full());
        assert_eq!(m.restrict(&s), s);
        assert_eq!(m.hidden_count(), 0);
    }
}
