//! DNA-style incremental verification.
//!
//! The paper's observation (3): "incremental network verification … can
//! fast check the correctness of a configuration change for large networks
//! in seconds", which is what makes validating many candidate updates
//! affordable. Our incremental verifier exploits the simulator's
//! per-prefix decomposition:
//!
//! 1. per-prefix outcomes from the previous verification are cached, along
//!    with their configuration-line closures, in a **persistent
//!    content-addressed arena** (old derivation ids stay valid),
//! 2. a new configuration plus the patch that produced it yields the set
//!    of *affected prefixes*: those whose closure touches an edited region,
//!    those overlapping prefix literals in inserted/replaced statements,
//!    and those whose origination set changed,
//! 3. only affected prefixes are re-simulated; FIB assembly and packet
//!    walks (cheap) run on the merged state.
//!
//! Simulation state is held in a [`CompiledBase`] (`acr-sim`): candidate
//! simulators are delta-built from it, recompiling only patched devices
//! and re-establishing sessions only where establishment can change. The
//! base's delta analysis ([`acr_sim::DeltaInfo`]) also drives session
//! invalidation: instead of resetting the per-prefix cache on *every*
//! `bgp`/`peer`/`group`-shaped edit, only **structural** session changes
//! (a session or diagnostic appearing, disappearing, or changing its
//! endpoints or policy bindings) force a full reset; edits that merely
//! renumber lines are caught by the closure-region rule. Crucially, the
//! analysis runs whether or not delta *construction* is enabled, so
//! recompute/reuse decisions — and therefore repair reports — are
//! byte-identical with the optimisation on or off.

use crate::spec::Spec;
use crate::verify::{Verification, Verifier};
use acr_cfg::model::DeviceModel;
use acr_cfg::{Edit, LineId, NetworkConfig, Patch, Stmt};
use acr_net_types::{Prefix, RouterId};
use acr_obs::metrics::Counter;
use acr_sim::{
    bgp_fragment, CompiledBase, DeltaInfo, DerivArena, Fib, FibEntry, PolicyMemo, PrefixOutcome,
    RunOptions, SessionDelta, ShardMode, Simulator,
};
use acr_topo::Topology;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

static PREFIXES_RECOMPUTED: Counter = Counter::new("verify.prefixes_recomputed");
static PREFIXES_REUSED: Counter = Counter::new("verify.prefixes_reused");
// Invalidation breadth (prefixes re-simulated) by why the cache missed:
// cold = no memo yet, structural/lines_only/unchanged = the candidate
// patch's session-delta class, full = full reset without a delta analysis.
static INV_COLD: Counter = Counter::new("verify.invalidated.cold");
static INV_FULL: Counter = Counter::new("verify.invalidated.full");
static INV_STRUCTURAL: Counter = Counter::new("verify.invalidated.structural");
static INV_LINES_ONLY: Counter = Counter::new("verify.invalidated.lines_only");
static INV_UNCHANGED: Counter = Counter::new("verify.invalidated.unchanged");
// FIB-fragment reuse: per-router base FIBs (connected + static) are
// rebuilt only when the router's device model changed (delta builds share
// unpatched models by `Arc`), and per-prefix BGP fragments are re-derived
// only for freshly simulated prefixes.
static FIB_ROUTERS_REBUILT: Counter = Counter::new("verify.fib_routers_rebuilt");
static FIB_ROUTERS_REUSED: Counter = Counter::new("verify.fib_routers_reused");
static FIB_FRAGS_RECOMPUTED: Counter = Counter::new("verify.fib_frags_recomputed");
static FIB_FRAGS_REUSED: Counter = Counter::new("verify.fib_frags_reused");

/// Rebuilds, in place, the base FIB of exactly those routers whose device
/// model is not the `Arc` the cache was computed against; returns
/// `(rebuilt, reused)` counts. Skipped rebuilds are sound because a base
/// FIB is a pure function of (topology, device model), and skipped
/// derivation interns would have been dedup hits in the content-addressed
/// arena — so the arena stays byte-identical to assembling from scratch.
fn refresh_base_fibs(
    fibs: &mut [Fib],
    cached_models: &[Arc<DeviceModel>],
    sim: &Simulator,
    arena: &mut DerivArena,
) -> (u64, u64) {
    let (mut rebuilt, mut reused) = (0u64, 0u64);
    for (i, m) in sim.models().iter().enumerate() {
        if Arc::ptr_eq(m, &cached_models[i]) {
            reused += 1;
        } else {
            fibs[i] = sim.base_fib_of(RouterId(i as u32), arena);
            rebuilt += 1;
        }
    }
    (rebuilt, reused)
}

/// Attributes `n` invalidated prefixes to their session-delta class.
fn count_invalidated(n: u64, cold: bool, info: Option<&DeltaInfo>) {
    if !acr_obs::enabled(acr_obs::METRICS) {
        return;
    }
    let c = match (cold, info.map(|i| i.session_delta)) {
        (true, _) => &INV_COLD,
        (false, Some(SessionDelta::Structural)) => &INV_STRUCTURAL,
        (false, Some(SessionDelta::LinesOnly)) => &INV_LINES_ONLY,
        (false, Some(SessionDelta::Unchanged)) => &INV_UNCHANGED,
        (false, None) => &INV_FULL,
    };
    c.add(n);
}

/// Statistics of one incremental verification call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalStats {
    /// Prefixes re-simulated this call.
    pub recomputed: usize,
    /// Prefixes served from cache.
    pub reused: usize,
    /// Devices compiled to build this call's simulator (delta path:
    /// patched devices only).
    pub compiled_devices: usize,
    /// Routers whose session establishment was recomputed.
    pub established_routers: usize,
    /// Wall-clock compiling device models (and origin-index maintenance).
    pub compile: Duration,
    /// Wall-clock establishing BGP sessions.
    pub establish: Duration,
    /// Wall-clock simulating affected prefixes and assembling FIBs.
    pub simulate: Duration,
    /// Within `simulate`: wall-clock of per-prefix convergence alone
    /// (worklist iteration, warm probes) — excludes merging and FIBs.
    pub converge: Duration,
    /// Affected prefixes whose converged fixed point was warm-started
    /// from the committed base instead of re-iterated (still counted in
    /// `recomputed`, so recompute/reuse accounting is identical whether
    /// or not delta mode allows warm starts).
    pub warm_reused: usize,
}

/// A verifier that caches per-prefix results between calls.
pub struct IncrementalVerifier<'a> {
    verifier: Verifier<'a>,
    arena: DerivArena,
    cached: BTreeMap<Prefix, PrefixOutcome>,
    /// Closure lines per cached prefix, for invalidation tests.
    closures: BTreeMap<Prefix, BTreeSet<LineId>>,
    /// Compiled state of the most recently verified configuration — the
    /// base candidates are delta-built against.
    base: Option<CompiledBase<'a>>,
    /// Whether candidate simulators reuse the base (construction only;
    /// invalidation analysis is identical either way).
    delta: bool,
    /// Policy-transfer memo kept alive across the committed run and the
    /// sequential candidate loop. Entries reference the persistent
    /// `arena` (content-addressed, ids never invalidated); per-candidate
    /// staleness is handled by [`PolicyMemo::begin_run`], which drops
    /// entries on sessions adjacent to patched routers.
    memo: PolicyMemo,
    /// Per-router base FIBs (connected + static) of the committed
    /// configuration, and the device models they were computed against —
    /// a router's base FIB is reused while its model `Arc` is unchanged.
    fib_base: Vec<Fib>,
    fib_models: Vec<Arc<DeviceModel>>,
    /// Per-prefix BGP FIB fragments, keyed like the outcome cache: the
    /// install list `(router index, entry)` derived from each cached
    /// prefix's converged best routes.
    fib_frags: BTreeMap<Prefix, Vec<(usize, FibEntry)>>,
    /// Cumulative sharded-convergence accounting across committed
    /// verifications (candidate validation always runs unsharded),
    /// surfaced in the engine's `shard_summary` journal event.
    sharded_runs: u64,
    sharded_prefixes: u64,
    last_stats: IncrementalStats,
}

impl<'a> IncrementalVerifier<'a> {
    /// Creates an empty (cold) incremental verifier.
    pub fn new(topo: &'a Topology, spec: &'a Spec) -> Self {
        Self::with_samples(topo, spec, 1)
    }

    /// Like [`IncrementalVerifier::new`] with `samples` packets per
    /// property.
    pub fn with_samples(topo: &'a Topology, spec: &'a Spec, samples: u32) -> Self {
        IncrementalVerifier {
            verifier: Verifier::with_samples(topo, spec, samples),
            arena: DerivArena::new(),
            cached: BTreeMap::new(),
            closures: BTreeMap::new(),
            base: None,
            delta: true,
            memo: PolicyMemo::new(),
            fib_base: Vec::new(),
            fib_models: Vec::new(),
            fib_frags: BTreeMap::new(),
            sharded_runs: 0,
            sharded_prefixes: 0,
            last_stats: IncrementalStats::default(),
        }
    }

    /// The underlying (stateless) verifier.
    pub fn verifier(&self) -> &Verifier<'a> {
        &self.verifier
    }

    /// Enables or disables delta construction of candidate simulators.
    /// Off, every candidate compiles from scratch; the invalidation
    /// analysis (and thus every verdict and statistic except wall-clock)
    /// is unaffected.
    pub fn set_delta(&mut self, delta: bool) {
        self.delta = delta;
    }

    /// The compiled base of the most recently verified configuration.
    pub fn base(&self) -> Option<&CompiledBase<'a>> {
        self.base.as_ref()
    }

    /// Stats of the most recent call.
    pub fn last_stats(&self) -> IncrementalStats {
        self.last_stats
    }

    /// Cumulative `(sharded runs, prefixes run sharded)` across committed
    /// verifications — the engine's `shard_summary` journal event.
    pub fn shard_totals(&self) -> (u64, u64) {
        (self.sharded_runs, self.sharded_prefixes)
    }

    /// The persistent arena (derivation roots in returned records resolve
    /// here).
    pub fn arena(&self) -> &DerivArena {
        &self.arena
    }

    /// Verifies `cfg`. When `patch` describes how `cfg` differs from the
    /// previously verified configuration, only affected prefixes are
    /// re-simulated; with `None` (or on the first call) everything runs.
    pub fn verify(&mut self, cfg: &NetworkConfig, patch: Option<&Patch>) -> Verification {
        // Establish the compiled base. With a previous base and a patch
        // relating the two configurations, advance it (sharing untouched
        // state); otherwise compile from scratch. The delta analysis runs
        // either way so invalidation is toggle-independent.
        let (base, info) = match (self.base.take(), patch) {
            (Some(prev), Some(p)) if !self.cached.is_empty() => {
                if self.delta {
                    let (base, info) = prev.advance(cfg, p);
                    (base, Some(info))
                } else {
                    let info = prev.analyze(cfg, p);
                    (CompiledBase::new(self.verifier.topo(), cfg), Some(info))
                }
            }
            _ => (CompiledBase::new(self.verifier.topo(), cfg), None),
        };
        let build = match &info {
            Some(i) if self.delta => i.build,
            _ => base.build_stats(),
        };
        let sim = Simulator::from_base(&base);
        let universe = sim.universe();

        let cold = self.cached.is_empty();
        let affected: BTreeSet<Prefix> = match (&info, patch) {
            (Some(i), Some(p))
                if !self.cached.is_empty() && i.session_delta != SessionDelta::Structural =>
            {
                narrowed_affected(&self.closures, &self.cached, p, cfg, &universe, i)
            }
            _ => universe.clone(),
        };

        // Drop cache entries for prefixes that left the universe.
        self.cached.retain(|p, _| universe.contains(p));
        self.closures.retain(|p, _| universe.contains(p));
        self.fib_frags.retain(|p, _| universe.contains(p));

        let t = Instant::now();
        // The committed path never warm-starts: its outcomes seed the
        // cache (and the persistent arena), so they are always computed
        // cold against the new configuration. The policy memo is reset
        // (the committed models changed) and re-seeded by this run, so
        // the first candidate already finds the base's transfers.
        self.memo = PolicyMemo::new();
        self.memo.begin_run(sim.sessions_arc(), &[]);
        let (fresh, work) = sim.run_prefixes_with(
            &affected,
            &mut self.arena,
            &RunOptions::default(),
            &mut self.memo,
        );
        self.sharded_runs += work.sharded_runs;
        self.sharded_prefixes += work.sharded_prefixes;
        let converge = t.elapsed();
        PREFIXES_RECOMPUTED.add(fresh.len() as u64);
        PREFIXES_REUSED.add(universe.len().saturating_sub(fresh.len()) as u64);
        count_invalidated(fresh.len() as u64, cold, info.as_ref());
        self.last_stats = IncrementalStats {
            recomputed: fresh.len(),
            reused: universe.len().saturating_sub(fresh.len()),
            compiled_devices: build.compiled_devices,
            established_routers: build.established_routers,
            compile: build.compile,
            establish: build.establish,
            simulate: Duration::ZERO,
            converge,
            warm_reused: 0,
        };
        for (p, o) in fresh {
            // Closures include rejection roots: a prefix whose route was
            // *denied* by a statement depends on that statement too, and
            // must be invalidated when it is edited or deleted.
            let roots: Vec<_> = o
                .deriv_roots()
                .into_iter()
                .chain(o.rejection_roots().iter().copied())
                .collect();
            let closure: BTreeSet<LineId> = self.arena.closure_lines(roots).into_iter().collect();
            self.closures.insert(p, closure);
            self.fib_frags.insert(p, bgp_fragment(&o));
            self.cached.insert(p, o);
        }

        // FIB assembly from cached pieces: rebuild base FIBs only for
        // routers whose model changed, and BGP fragments only for the
        // prefixes just re-simulated (fragments of reused prefixes are
        // already cached). Identical output to `sim.fibs_for` — install
        // order across prefixes is irrelevant (distinct trie keys) and
        // base entries always precede BGP installs.
        let models = sim.models();
        if self.fib_base.len() != models.len() {
            self.fib_base = sim.base_fibs(&mut self.arena);
            FIB_ROUTERS_REBUILT.add(models.len() as u64);
        } else {
            let (rebuilt, reused) =
                refresh_base_fibs(&mut self.fib_base, &self.fib_models, &sim, &mut self.arena);
            FIB_ROUTERS_REBUILT.add(rebuilt);
            FIB_ROUTERS_REUSED.add(reused);
        }
        self.fib_models = models.to_vec();
        FIB_FRAGS_RECOMPUTED.add(self.last_stats.recomputed as u64);
        FIB_FRAGS_REUSED.add((self.fib_frags.len() - self.last_stats.recomputed) as u64);
        let mut fibs = self.fib_base.clone();
        for (prefix, frag) in &self.fib_frags {
            for (i, entry) in frag {
                fibs[*i].install(*prefix, entry.clone());
            }
        }
        self.last_stats.simulate = t.elapsed();
        self.base = Some(base);
        self.verifier.evaluate(
            &sim,
            &self.cached,
            &fibs,
            &mut self.arena,
            sim.session_diags(),
        )
    }

    /// Verifies a **candidate** configuration (`cfg` = committed base +
    /// `patch`, where `patch` is expressed relative to the committed base)
    /// *without* updating the cache — the repair engine's inner loop. The
    /// persistent arena still grows (content-addressed, so cached ids stay
    /// valid), but per-prefix results of the base remain authoritative.
    pub fn verify_candidate(&mut self, cfg: &NetworkConfig, patch: &Patch) -> Verification {
        let validator = CandidateValidator {
            verifier: &self.verifier,
            cached: &self.cached,
            closures: &self.closures,
            base: self.base.as_ref(),
            delta: self.delta,
            fib_base: &self.fib_base,
            fib_models: &self.fib_models,
            fib_frags: &self.fib_frags,
        };
        let (verification, stats) =
            validator.verify_candidate_with(cfg, patch, &mut self.arena, Some(&mut self.memo));
        self.last_stats = stats;
        verification
    }

    /// A read-only view for validating candidates against the committed
    /// base. Because it borrows the verifier's state immutably, any
    /// number of worker threads can share one validator; each supplies
    /// its own arena (seed it with a clone of
    /// [`IncrementalVerifier::arena`] so cached derivation ids resolve).
    pub fn validator(&self) -> CandidateValidator<'_, 'a> {
        CandidateValidator {
            verifier: &self.verifier,
            cached: &self.cached,
            closures: &self.closures,
            base: self.base.as_ref(),
            delta: self.delta,
            fib_base: &self.fib_base,
            fib_models: &self.fib_models,
            fib_frags: &self.fib_frags,
        }
    }

    /// Re-interns `v`'s derivation closures from `src` (a worker's
    /// private arena or a cache entry's pruned arena) into the
    /// persistent arena, returning a clone whose roots resolve here.
    pub fn absorb_verification(&mut self, v: &Verification, src: &DerivArena) -> Verification {
        crate::cache::rebase_verification(v, src, &mut self.arena)
    }

    /// Commits a new base configuration (e.g. after an iteration adopted a
    /// candidate): fully re-verifies and caches it.
    pub fn commit(&mut self, cfg: &NetworkConfig) -> Verification {
        self.cached.clear();
        self.closures.clear();
        self.verify(cfg, None)
    }
}

/// A shareable, read-only candidate validator: the immutable half of an
/// [`IncrementalVerifier`]. It never mutates the per-prefix memo, so a
/// candidate's verdict is a pure function of (committed base state,
/// candidate config, patch) — which is what lets the repair engine fan a
/// batch of candidates out over threads without any result depending on
/// scheduling.
pub struct CandidateValidator<'v, 'a> {
    verifier: &'v Verifier<'a>,
    cached: &'v BTreeMap<Prefix, PrefixOutcome>,
    closures: &'v BTreeMap<Prefix, BTreeSet<LineId>>,
    base: Option<&'v CompiledBase<'a>>,
    delta: bool,
    /// The committed base FIBs, their models, and per-prefix fragments
    /// (read-only views of the owning verifier's caches): candidates
    /// rebuild base FIBs only for routers the patch recompiled and reuse
    /// fragments of every prefix served from the outcome cache.
    fib_base: &'v [Fib],
    fib_models: &'v [Arc<DeviceModel>],
    fib_frags: &'v BTreeMap<Prefix, Vec<(usize, FibEntry)>>,
}

impl<'v, 'a> CandidateValidator<'v, 'a> {
    /// The underlying (stateless) verifier.
    pub fn verifier(&self) -> &'v Verifier<'a> {
        self.verifier
    }

    /// Verifies a candidate configuration against the committed base;
    /// see [`IncrementalVerifier::verify_candidate`]. Derivation roots of
    /// the returned records resolve in `arena`, which must contain the
    /// committed base's derivations (clone of the persistent arena).
    pub fn verify_candidate(
        &self,
        cfg: &NetworkConfig,
        patch: &Patch,
        arena: &mut DerivArena,
    ) -> (Verification, IncrementalStats) {
        self.verify_candidate_with(cfg, patch, arena, None)
    }

    /// [`CandidateValidator::verify_candidate`] with an optional
    /// **cross-candidate policy memo**. The memo's entries reference
    /// `arena` ids, so the same `(arena, memo)` pair must be threaded
    /// through every call (the sequential repair loop owns exactly one of
    /// each). Reuse is sound only while candidate simulators share the
    /// committed base's device models for unpatched routers — i.e. under
    /// delta construction — and [`PolicyMemo::begin_run`] drops entries
    /// on sessions adjacent to routers the patch (or the previous
    /// candidate's patch) touched, re-homing the rest by endpoint pair
    /// when the session list changed shape. What survives — unchanged
    /// `Arc`-shared device models evaluating pure transfer functions
    /// over content-identical sessions — is byte-exact to recomputing,
    /// so verdicts, derivations, and rejection records are unchanged.
    pub fn verify_candidate_with(
        &self,
        cfg: &NetworkConfig,
        patch: &Patch,
        arena: &mut DerivArena,
        memo: Option<&mut PolicyMemo>,
    ) -> (Verification, IncrementalStats) {
        // Build the candidate simulator: delta-compiled from the shared
        // base when enabled, from scratch otherwise. The delta *analysis*
        // runs in both modes so the affected-prefix set (and with it every
        // verdict and count) is identical.
        let (sim, info) = match self.base {
            Some(base) if self.delta => {
                let sim = Simulator::from_base_with_patch(base, cfg, patch);
                let info = sim.delta_info().cloned();
                (sim, info)
            }
            Some(base) => {
                let info = base.analyze(cfg, patch);
                (Simulator::new(self.verifier.topo(), cfg), Some(info))
            }
            None => (Simulator::new(self.verifier.topo(), cfg), None),
        };
        let build = sim.build_stats();
        let universe = sim.universe();
        let full_reset = self.cached.is_empty()
            || match &info {
                Some(i) => i.session_delta == SessionDelta::Structural,
                // No compiled base to analyze against: fall back to the
                // conservative statement-kind test.
                None => patch_resets_sessions(patch, cfg),
            };
        let affected: BTreeSet<Prefix> = if full_reset {
            universe.clone()
        } else {
            let mut set = affected_by(self.closures, patch, cfg, &universe);
            for p in &universe {
                if !self.cached.contains_key(p) {
                    set.insert(*p);
                }
            }
            if let Some(i) = &info {
                extend_with_delta_info(&mut set, &universe, i);
            }
            set
        };
        // Warm-start eligibility: only under delta mode, only when the
        // analysis proved the patch leaves the BGP dynamics unchanged
        // (`DeltaInfo::warm_eligible`), and never across a full reset.
        // Warm reuse is byte-exact (probe-verified fixed-point replay),
        // so verdicts and recompute/reuse counts are still identical with
        // delta mode off.
        let warm_ok = self.delta && !full_reset && info.as_ref().is_some_and(|i| i.warm_eligible);
        // The cross-candidate memo is sound exactly when this candidate
        // was delta-built: unchanged routers then hold the base's own
        // `Arc`'d models, so a memoized transfer between two unpatched
        // endpoints is pure in inputs the patch cannot reach. Structural
        // session changes are fine — `begin_run` re-homes surviving
        // slots by endpoint pair — so `full_reset` (a prefix-cache
        // concern) does not disqualify the memo.
        let memo_ok = self.delta && info.is_some();
        let mut local_memo = PolicyMemo::new();
        let memo = match memo {
            Some(m) if memo_ok => {
                let mut changed: Vec<RouterId> = patch.edits.iter().map(Edit::router).collect();
                changed.sort_unstable();
                changed.dedup();
                m.begin_run(sim.sessions_arc(), &changed);
                m
            }
            _ => &mut local_memo,
        };
        let t = Instant::now();
        // Candidates run unsharded, explicitly: the sharded runner starts
        // each worker from a fresh memo/arena (and skips warm starts), so
        // it would forfeit exactly the cross-candidate reuse this path is
        // built around — affected sets here are small by construction.
        let opts = RunOptions {
            warm: if warm_ok { Some(self.cached) } else { None },
            shard: ShardMode::Off,
            ..RunOptions::default()
        };
        let (fresh, work) = sim.run_prefixes_with(&affected, arena, &opts, memo);
        let converge = t.elapsed();
        PREFIXES_RECOMPUTED.add(fresh.len() as u64);
        PREFIXES_REUSED.add(universe.len().saturating_sub(fresh.len()) as u64);
        count_invalidated(fresh.len() as u64, self.cached.is_empty(), info.as_ref());
        let mut stats = IncrementalStats {
            recomputed: fresh.len(),
            reused: universe.len().saturating_sub(fresh.len()),
            compiled_devices: build.compiled_devices,
            established_routers: build.established_routers,
            compile: build.compile,
            establish: build.establish,
            simulate: Duration::ZERO,
            converge,
            warm_reused: work.warm_reused as usize,
        };
        // Merge: fresh results override the cache; prefixes outside the
        // candidate's universe are dropped. The map holds *references*
        // (cache entries are read-only here), so validating a candidate
        // never deep-clones the committed per-prefix state.
        let mut merged: BTreeMap<Prefix, &PrefixOutcome> = self
            .cached
            .iter()
            .filter(|(p, _)| universe.contains(*p))
            .map(|(p, o)| (*p, o))
            .collect();
        for (p, o) in &fresh {
            merged.insert(*p, o);
        }
        // Candidate FIB assembly mirrors the committed path: start from
        // the committed base FIBs (under delta construction, unpatched
        // routers still hold the committed model `Arc`s, so only patched
        // routers rebuild), install cached fragments for reused prefixes
        // and derive fragments only for re-simulated ones. A validator
        // with no committed FIB state falls back to full assembly.
        let fibs = if self.fib_base.len() == sim.models().len() {
            let mut fibs = self.fib_base.to_vec();
            let (rebuilt, reused) = refresh_base_fibs(&mut fibs, self.fib_models, &sim, arena);
            FIB_ROUTERS_REBUILT.add(rebuilt);
            FIB_ROUTERS_REUSED.add(reused);
            let (mut frags_fresh, mut frags_reused) = (0u64, 0u64);
            for (p, o) in &merged {
                match self.fib_frags.get(p) {
                    Some(frag) if !fresh.contains_key(p) => {
                        frags_reused += 1;
                        for (i, entry) in frag {
                            fibs[*i].install(*p, entry.clone());
                        }
                    }
                    _ => {
                        frags_fresh += 1;
                        for (i, entry) in bgp_fragment(o) {
                            fibs[i].install(*p, entry);
                        }
                    }
                }
            }
            FIB_FRAGS_RECOMPUTED.add(frags_fresh);
            FIB_FRAGS_REUSED.add(frags_reused);
            fibs
        } else {
            sim.fibs_for(&merged, arena)
        };
        stats.simulate = t.elapsed();
        let verification = self
            .verifier
            .evaluate(&sim, &merged, &fibs, arena, sim.session_diags());
        (verification, stats)
    }
}

/// Folds a delta analysis into an affected-prefix set: prefixes whose
/// origination changed, plus universe prefixes overlapping literals that a
/// `Delete` edit may have removed.
fn extend_with_delta_info(set: &mut BTreeSet<Prefix>, universe: &BTreeSet<Prefix>, i: &DeltaInfo) {
    for p in &i.changed_origin_prefixes {
        if universe.contains(p) {
            set.insert(*p);
        }
    }
    for lit in &i.delete_literals {
        for p in universe {
            if p.overlaps(*lit) {
                set.insert(*p);
            }
        }
    }
}

/// The narrowed affected set for [`IncrementalVerifier::verify`]: region
/// rule + literal overlap + universe newcomers + delta-analysis findings.
fn narrowed_affected(
    closures: &BTreeMap<Prefix, BTreeSet<LineId>>,
    cached: &BTreeMap<Prefix, PrefixOutcome>,
    patch: &Patch,
    cfg: &NetworkConfig,
    universe: &BTreeSet<Prefix>,
    info: &DeltaInfo,
) -> BTreeSet<Prefix> {
    let mut set = affected_by(closures, patch, cfg, universe);
    // Prefixes new to the universe must be simulated.
    for p in universe {
        if !cached.contains_key(p) {
            set.insert(*p);
        }
    }
    extend_with_delta_info(&mut set, universe, info);
    set
}

/// The prefixes a patch can affect, given the cached per-prefix closures
/// and the *new* configuration.
fn affected_by(
    closures: &BTreeMap<Prefix, BTreeSet<LineId>>,
    patch: &Patch,
    cfg: &NetworkConfig,
    universe: &BTreeSet<Prefix>,
) -> BTreeSet<Prefix> {
    // Lowest edited statement index per device: every line at or after
    // it may have shifted, so any cached closure touching that region
    // is stale.
    let mut min_line: BTreeMap<RouterId, u32> = BTreeMap::new();
    let mut literals: Vec<Prefix> = Vec::new();
    for edit in &patch.edits {
        let (router, index, stmt) = match edit {
            Edit::Insert {
                router,
                index,
                stmt,
            } => (*router, *index, Some(stmt)),
            Edit::Replace {
                router,
                index,
                stmt,
            } => (*router, *index, Some(stmt)),
            Edit::Delete { router, index } => (*router, *index, None),
        };
        let line = index as u32 + 1;
        min_line
            .entry(router)
            .and_modify(|m| *m = (*m).min(line))
            .or_insert(line);
        if let Some(stmt) = stmt {
            literals.extend(prefix_literals(stmt));
        }
        // A delete's statement is gone from `cfg`, but whatever it
        // mentioned is covered by the closure-region rule.
        let _ = cfg;
    }

    let mut out = BTreeSet::new();
    for (p, closure) in closures {
        let stale = closure
            .iter()
            .any(|l| min_line.get(&l.router).is_some_and(|m| l.line >= *m));
        if stale {
            out.insert(*p);
        }
    }
    for lit in &literals {
        for p in universe {
            if p.overlaps(*lit) {
                out.insert(*p);
            }
        }
    }
    out
}

/// Whether a patch touches session-shaping statements in the *new* config
/// or deletes anything (a deleted statement's kind is unknown here, so be
/// conservative).
fn patch_resets_sessions(patch: &Patch, _cfg: &NetworkConfig) -> bool {
    patch.edits.iter().any(|e| match e {
        Edit::Insert { stmt, .. } | Edit::Replace { stmt, .. } => is_session_shaping(stmt),
        Edit::Delete { .. } => true,
    })
}

fn is_session_shaping(stmt: &Stmt) -> bool {
    matches!(
        stmt,
        Stmt::BgpProcess(_)
            | Stmt::PeerAs { .. }
            | Stmt::PeerGroup { .. }
            | Stmt::PeerPolicy { .. }
            | Stmt::GroupDef(_)
            | Stmt::Interface(_)
            | Stmt::IpAddress { .. }
    )
}

/// Prefix literals mentioned by a statement (for overlap-based
/// invalidation).
fn prefix_literals(stmt: &Stmt) -> Vec<Prefix> {
    match stmt {
        Stmt::Network(p) => vec![*p],
        Stmt::StaticRoute { prefix, .. } => vec![*prefix],
        Stmt::PrefixListEntry { prefix, .. } => vec![*prefix],
        Stmt::AclRule(r) => vec![r.src, r.dst],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Property;
    use acr_cfg::ast::{NextHop, PlAction};
    use acr_cfg::parse::parse_device;
    use acr_topo::gen;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// A 5-router line where each end originates a prefix; edits at one end
    /// must not invalidate the other end's prefix.
    fn scenario() -> (Topology, NetworkConfig, Spec) {
        let topo = gen::line(5);
        // Link i: .1+4i / .2+4i between Ri and Ri+1.
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n".to_string(),
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n".to_string(),
            "bgp 65002\n peer 172.16.0.5 as-number 65001\n peer 172.16.0.10 as-number 65003\n".to_string(),
            "bgp 65003\n peer 172.16.0.9 as-number 65002\n peer 172.16.0.14 as-number 65004\n".to_string(),
            "bgp 65004\n network 10.4.0.0 16\n peer 172.16.0.13 as-number 65003\nip route-static 30.0.0.0 16 NULL0\n".to_string(),
        ];
        let mut cfg = NetworkConfig::new();
        for (r, c) in topo.routers().iter().zip(&cfgs) {
            cfg.insert(r.id, parse_device(r.name.clone(), c).unwrap());
        }
        let spec = Spec::new()
            .with(Property::reach(
                "to-east",
                RouterId(0),
                p("10.0.0.0/16"),
                p("10.4.0.0/16"),
            ))
            .with(Property::reach(
                "to-west",
                RouterId(4),
                p("10.4.0.0/16"),
                p("10.0.0.0/16"),
            ));
        (topo, cfg, spec)
    }

    #[test]
    fn cold_call_computes_everything() {
        let (topo, cfg, spec) = scenario();
        let mut iv = IncrementalVerifier::new(&topo, &spec);
        let v = iv.verify(&cfg, None);
        assert!(v.all_passed());
        assert_eq!(iv.last_stats().recomputed, 2);
        assert_eq!(iv.last_stats().reused, 0);
    }

    #[test]
    fn unrelated_edit_reuses_cache() {
        let (topo, cfg, spec) = scenario();
        let mut iv = IncrementalVerifier::new(&topo, &spec);
        iv.verify(&cfg, None);
        // Append an unrelated static route (99.0/16, NULL0) on R4: no
        // cached prefix closure touches it and it overlaps nothing cached —
        // but it *does* enter the universe (import-route? no, R4 has no
        // import-route static). So nothing is recomputed.
        let patch = Patch::single(Edit::Insert {
            router: RouterId(4),
            index: cfg.device(RouterId(4)).unwrap().len(),
            stmt: Stmt::StaticRoute {
                prefix: p("99.0.0.0/16"),
                next_hop: NextHop::Null0,
            },
        });
        let cfg2 = patch.apply_cloned(&cfg).unwrap();
        let v = iv.verify(&cfg2, Some(&patch));
        assert!(v.all_passed());
        assert_eq!(iv.last_stats().recomputed, 0, "{:?}", iv.last_stats());
        assert_eq!(iv.last_stats().reused, 2);
    }

    #[test]
    fn overlapping_literal_invalidates_prefix() {
        let (topo, cfg, spec) = scenario();
        let mut iv = IncrementalVerifier::new(&topo, &spec);
        iv.verify(&cfg, None);
        // A prefix-list entry mentioning 10.4/16 forces recomputation of
        // that prefix only.
        let patch = Patch::single(Edit::Insert {
            router: RouterId(2),
            index: cfg.device(RouterId(2)).unwrap().len(),
            stmt: Stmt::PrefixListEntry {
                list: "l".into(),
                index: 10,
                action: PlAction::Permit,
                prefix: p("10.4.0.0/16"),
                ge: None,
                le: None,
            },
        });
        let cfg2 = patch.apply_cloned(&cfg).unwrap();
        let v = iv.verify(&cfg2, Some(&patch));
        assert!(v.all_passed());
        assert_eq!(iv.last_stats().recomputed, 1);
        assert_eq!(iv.last_stats().reused, 1);
    }

    #[test]
    fn session_edit_invalidates_everything() {
        let (topo, cfg, spec) = scenario();
        let mut iv = IncrementalVerifier::new(&topo, &spec);
        iv.verify(&cfg, None);
        let patch = Patch::single(Edit::Replace {
            router: RouterId(2),
            index: 1,
            stmt: Stmt::PeerAs {
                peer: acr_cfg::PeerRef::Ip(acr_net_types::Ipv4Addr::new(172, 16, 0, 5)),
                asn: acr_net_types::Asn(64999),
            },
        });
        let cfg2 = patch.apply_cloned(&cfg).unwrap();
        let v = iv.verify(&cfg2, Some(&patch));
        assert_eq!(v.failed_count(), 2, "broken transit session fails both");
        assert_eq!(iv.last_stats().recomputed, 2);
    }

    #[test]
    fn incremental_matches_full_verification() {
        let (topo, cfg, spec) = scenario();
        let mut iv = IncrementalVerifier::new(&topo, &spec);
        iv.verify(&cfg, None);
        // Edit that shifts lines on R0 (insert at top region) and touches
        // 10.0/16's closure.
        let patch = Patch::single(Edit::Insert {
            router: RouterId(0),
            index: 2,
            stmt: Stmt::Network(p("10.9.0.0/16")),
        });
        let cfg2 = patch.apply_cloned(&cfg).unwrap();
        let v_inc = iv.verify(&cfg2, Some(&patch));

        let verifier = Verifier::new(&topo, &spec);
        let (v_full, _) = verifier.run_full(&cfg2);
        assert_eq!(v_inc.failed_count(), v_full.failed_count());
        let inc: Vec<bool> = v_inc.records.iter().map(|r| r.passed).collect();
        let full: Vec<bool> = v_full.records.iter().map(|r| r.passed).collect();
        assert_eq!(inc, full);
        // Coverage matrices agree on the lines of every test.
        for (a, b) in v_inc.matrix.tests().iter().zip(v_full.matrix.tests()) {
            assert_eq!(a.lines, b.lines, "coverage must match full verification");
        }
    }

    #[test]
    fn repeated_incremental_calls_accumulate_correctly() {
        let (topo, cfg, spec) = scenario();
        let mut iv = IncrementalVerifier::new(&topo, &spec);
        iv.verify(&cfg, None);
        let mut current = cfg.clone();
        // Three successive unrelated edits, all cache-friendly.
        for i in 0..3u8 {
            let patch = Patch::single(Edit::Insert {
                router: RouterId(4),
                index: current.device(RouterId(4)).unwrap().len(),
                stmt: Stmt::StaticRoute {
                    prefix: Prefix::from_octets(99, i, 0, 0, 16),
                    next_hop: NextHop::Null0,
                },
            });
            current = patch.apply_cloned(&current).unwrap();
            let v = iv.verify(&current, Some(&patch));
            assert!(v.all_passed());
            assert_eq!(iv.last_stats().recomputed, 0);
        }
    }
}
