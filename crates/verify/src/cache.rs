//! The simulation memo-cache shared across the repair pipeline.
//!
//! Candidate generation revisits configurations constantly — crossover
//! recombines population members into patches it already tried, baseline
//! searches re-walk neighbourhoods, and an A/B experiment verifies the
//! same network twice. Every such revisit pays a full or incremental
//! control-plane simulation today. [`SimCache`] memoizes verification
//! results behind a *stable config fingerprint*: the hash of the
//! canonical rendered configuration ([`NetworkConfig::fingerprint`])
//! together with the verifier's context fingerprint (topology identity +
//! generated test suite). Two lookups agree on a key exactly when the
//! simulator would be handed bit-identical inputs, so a hit can return
//! the memoized verdict verbatim.
//!
//! Two tables live behind one facade:
//!
//! - **candidates** — keyed `(context, base, candidate)`: the result of
//!   `verify_candidate` against a committed base. The entry carries a
//!   *pruned* private arena holding exactly the derivation closures of
//!   the verification's roots, so consumers can absorb provenance into
//!   their own arena (ids are arena-local and never portable).
//! - **full** — keyed `(context, config)`: whole `run_full` results, for
//!   the baselines and standalone verifications.
//!
//! Determinism: reads (`peek_*`) never mutate LRU recency — see
//! [`acr_sim::ShardedCache`]. Writers must call `insert_*`/`touch_*`
//! from one coordinating thread in a deterministic order; the repair
//! engine does so in candidate-index order.

use crate::verify::Verification;
use acr_obs::metrics::Counter;
use acr_sim::{CacheStats, DerivArena, ShardedCache, SimOutcome};
use std::collections::HashMap;
use std::sync::Arc;

static CAND_HITS: Counter = Counter::new("cache.candidate.hits");
static CAND_MISSES: Counter = Counter::new("cache.candidate.misses");
static FULL_HITS: Counter = Counter::new("cache.full.hits");
static FULL_MISSES: Counter = Counter::new("cache.full.misses");

/// Key of a memoized candidate validation:
/// `(verifier context, committed base config, candidate config)`.
pub type CandidateKey = (u64, u64, u64);

/// Key of a memoized full verification: `(verifier context, config)`.
pub type FullKey = (u64, u64);

/// A memoized candidate validation.
#[derive(Debug, Clone)]
pub struct CandidateEntry {
    /// The verdict; `deriv_roots` resolve in [`CandidateEntry::arena`].
    pub verification: Verification,
    /// Pruned arena holding exactly the closures of the verification's
    /// derivation roots.
    pub arena: DerivArena,
    /// Size of the candidate's prefix universe. A hit reports
    /// `recomputed: 0, reused: universe` — nothing was simulated and
    /// every per-prefix outcome was served from memo.
    pub universe: usize,
}

/// Builds a pruned [`CandidateEntry`] from a verification whose roots
/// live in `src`.
pub fn make_entry(v: &Verification, src: &DerivArena, universe: usize) -> CandidateEntry {
    let mut arena = DerivArena::new();
    let verification = rebase_verification(v, src, &mut arena);
    CandidateEntry {
        verification,
        arena,
        universe,
    }
}

/// Rebases `v` onto `dst`: every record's derivation closure is
/// re-interned from `src`, and the returned clone's roots resolve in
/// `dst`. Content-addressed interning makes this observationally
/// lossless — closures, coverage and verdicts are unchanged.
pub fn rebase_verification(
    v: &Verification,
    src: &DerivArena,
    dst: &mut DerivArena,
) -> Verification {
    let mut out = v.clone();
    let mut memo = HashMap::new();
    for rec in &mut out.records {
        rec.deriv_roots = dst.absorb(src, &rec.deriv_roots, &mut memo);
    }
    out
}

/// The shared simulation memo-cache. Cheap to clone the handle via
/// `Arc<SimCache>`; see the module docs for keying and the
/// determinism contract.
#[derive(Debug)]
pub struct SimCache {
    candidates: ShardedCache<CandidateKey, Arc<CandidateEntry>>,
    full: ShardedCache<FullKey, Arc<(Verification, SimOutcome)>>,
}

impl Default for SimCache {
    fn default() -> Self {
        SimCache::new(SimCache::DEFAULT_CAPACITY)
    }
}

impl SimCache {
    /// Default bound on entries per table.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A cache bounded to `capacity` entries per table.
    pub fn new(capacity: usize) -> Self {
        SimCache {
            candidates: ShardedCache::with_capacity(capacity),
            full: ShardedCache::with_capacity(capacity),
        }
    }

    /// Looks up a candidate validation without touching LRU recency.
    pub fn peek_candidate(&self, key: CandidateKey) -> Option<Arc<CandidateEntry>> {
        let hit = self.candidates.peek(&key);
        match hit {
            Some(_) => CAND_HITS.inc(),
            None => CAND_MISSES.inc(),
        }
        hit
    }

    /// Promotes a candidate entry (coordinator only, deterministic order).
    pub fn touch_candidate(&self, key: CandidateKey) {
        self.candidates.touch(&key)
    }

    /// Inserts a candidate entry (coordinator only, deterministic order).
    pub fn insert_candidate(&self, key: CandidateKey, entry: CandidateEntry) {
        self.candidates.insert(key, Arc::new(entry))
    }

    /// Looks up a full verification without touching LRU recency.
    pub fn peek_full(&self, key: FullKey) -> Option<Arc<(Verification, SimOutcome)>> {
        let hit = self.full.peek(&key);
        match hit {
            Some(_) => FULL_HITS.inc(),
            None => FULL_MISSES.inc(),
        }
        hit
    }

    /// Inserts a full verification result.
    pub fn insert_full(&self, key: FullKey, value: (Verification, SimOutcome)) {
        self.full.insert(key, Arc::new(value))
    }

    /// Counters aggregated over both tables.
    pub fn stats(&self) -> CacheStats {
        self.candidates.stats().merged(&self.full.stats())
    }

    /// Live entries across both tables.
    pub fn len(&self) -> usize {
        self.candidates.len() + self.full.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
