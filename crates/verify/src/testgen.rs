//! Automatic test-suite generation (the paper's §6 open question).
//!
//! Networks without an operator specification still need a test suite for
//! SBFL to work with. Two pieces:
//!
//! - [`derive_spec`] synthesizes a reachability specification directly
//!   from the topology: every attached (customer) prefix must be
//!   reachable from every *other* attachment owner, bounded to keep the
//!   suite quadratic-but-small.
//! - [`coverage_guided_suite`] grows the number of sampled packets per
//!   property until configuration-line coverage stops improving — the
//!   directed-test-generation intuition the paper cites from ASR
//!   [Artzi et al.], transplanted to header-space sampling.

use crate::spec::{Property, Spec};
use crate::verify::Verifier;
use acr_cfg::{LineId, NetworkConfig};
use acr_net_types::Prefix;
use acr_topo::Topology;
use std::collections::BTreeSet;

/// Derives an all-pairs reachability specification from the topology's
/// attachments. With more than `max_pairs` pairs, a deterministic
/// round-robin subset is kept.
pub fn derive_spec(topo: &Topology, max_pairs: usize) -> Spec {
    let attachments: Vec<(acr_net_types::RouterId, Prefix)> = topo.attachments().collect();
    let mut spec = Spec::new();
    let mut emitted = 0usize;
    let n = attachments.len();
    if n < 2 || max_pairs == 0 {
        return spec;
    }
    // Walk pair offsets round-robin (1, 2, …) so truncation keeps a
    // spread of distances rather than a prefix-ordered cluster.
    'outer: for offset in 1..n {
        for i in 0..n {
            let (start_owner, src) = attachments[i];
            let (_, dst) = attachments[(i + offset) % n];
            spec = spec.with(Property::reach(
                format!("auto-{}-{}", topo.router(start_owner).name, dst),
                start_owner,
                src,
                dst,
            ));
            emitted += 1;
            if emitted >= max_pairs {
                break 'outer;
            }
        }
    }
    spec
}

/// Statistics of a coverage-guided suite build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteStats {
    /// Samples per property the search settled on.
    pub samples_per_property: u32,
    /// Configuration lines covered by the final suite.
    pub covered_lines: usize,
    /// Total configuration lines in the network.
    pub total_lines: usize,
    /// Verification rounds spent growing the suite.
    pub rounds: u32,
}

/// Grows `samples_per_property` (1, 2, 4, …, up to `max_samples`) until
/// line coverage stops improving, and returns the chosen sampling level.
///
/// The suite is evaluated against `cfg`; growing it beyond the plateau
/// only adds redundant spectra (and validation cost) without helping
/// SBFL, which is why the paper cares about suite *quality* over size.
pub fn coverage_guided_suite(
    topo: &Topology,
    cfg: &NetworkConfig,
    spec: &Spec,
    max_samples: u32,
) -> SuiteStats {
    assert!(max_samples >= 1);
    let total_lines = cfg.total_lines();
    let mut best_cov: BTreeSet<LineId> = BTreeSet::new();
    let mut chosen = 1u32;
    let mut rounds = 0u32;
    let mut samples = 1u32;
    while samples <= max_samples {
        rounds += 1;
        let verifier = Verifier::with_samples(topo, spec, samples);
        let (v, _) = verifier.run_full(cfg);
        let cov = v.matrix.covered_lines();
        if cov.len() > best_cov.len() {
            best_cov = cov;
            chosen = samples;
        } else {
            break; // plateau: more packets cover nothing new
        }
        samples *= 2;
    }
    SuiteStats {
        samples_per_property: chosen,
        covered_lines: best_cov.len(),
        total_lines,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_topo::gen;

    #[test]
    fn derived_spec_covers_attachment_pairs() {
        let topo = gen::full_mesh(4);
        let spec = derive_spec(&topo, 100);
        // 4 attachments -> 4*3 = 12 ordered pairs.
        assert_eq!(spec.len(), 12);
        // Every destination prefix appears.
        for (_, p) in topo.attachments() {
            assert!(spec.properties.iter().any(|prop| prop.hs.dst == p));
        }
    }

    #[test]
    fn derived_spec_respects_pair_cap() {
        let topo = gen::full_mesh(6);
        let spec = derive_spec(&topo, 10);
        assert_eq!(spec.len(), 10);
        // The round-robin order spreads over distinct starts.
        let starts: BTreeSet<_> = spec.properties.iter().map(|p| p.start).collect();
        assert!(starts.len() >= 5, "{starts:?}");
    }

    #[test]
    fn degenerate_topologies_yield_empty_specs() {
        let topo = gen::line(2); // two attachments
        assert_eq!(derive_spec(&topo, 0).len(), 0);
        let mut b = acr_topo::TopologyBuilder::new();
        b.router("lonely", acr_topo::Role::Backbone);
        assert!(derive_spec(&b.build(), 10).is_empty());
    }

    #[test]
    fn coverage_plateaus_and_reports() {
        let topo = gen::wan(3, 3);
        let net = acr_workloads_stub(&topo);
        let spec = derive_spec(&topo, 30);
        let stats = coverage_guided_suite(&topo, &net, &spec, 8);
        assert!(stats.covered_lines > 0);
        assert!(stats.covered_lines <= stats.total_lines);
        assert!(stats.rounds >= 1);
        assert!(stats.samples_per_property <= 8);
        // Growing the suite to the chosen level reproduces the coverage.
        let verifier = Verifier::with_samples(&topo, &spec, stats.samples_per_property);
        let (v, _) = verifier.run_full(&net);
        assert_eq!(v.matrix.covered_lines().len(), stats.covered_lines);
    }

    /// Minimal in-crate network builder (the real generator lives in
    /// `acr-workloads`, which depends on this crate).
    fn acr_workloads_stub(topo: &Topology) -> NetworkConfig {
        use acr_cfg::parse::parse_device;
        use std::fmt::Write as _;
        let mut cfg = NetworkConfig::new();
        for info in topo.routers() {
            let mut text = String::new();
            let _ = writeln!(text, "bgp {}", 65000 + info.id.0);
            for p in &info.attached {
                let _ = writeln!(text, " network {} {}", p.addr(), p.len());
            }
            for (neighbor, link) in topo.neighbors(info.id) {
                let addr = link.peer_of(info.id).unwrap().addr;
                let _ = writeln!(text, " peer {} as-number {}", addr, 65000 + neighbor.0);
            }
            cfg.insert(info.id, parse_device(info.name.clone(), &text).unwrap());
        }
        cfg
    }
}
