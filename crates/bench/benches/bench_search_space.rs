//! Criterion: the cost of *measuring and traversing* each method's search
//! space (Figure 3's companion): SBFL localization, provenance leaf
//! enumeration, template instantiation, and the local SMT solve.

use acr_bench::standard_network;
use acr_core::ctx::RepairCtx;
use acr_core::engine::models_of;
use acr_core::templates::candidates_for_line;
use acr_localize::{cel_localize, localize, SbflFormula};
use acr_prov::Provenance;
use acr_verify::Verifier;
use acr_workloads::{try_inject, FaultType};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_spaces(c: &mut Criterion) {
    let net = standard_network();
    let incident = try_inject(FaultType::StaleRouteMap, &net, 1).expect("injectable");
    let verifier = Verifier::new(&net.topo, &net.spec);
    let (v, out) = verifier.run_full(&incident.broken);

    c.bench_function("sbfl_tarantula_localize", |b| {
        b.iter(|| std::hint::black_box(localize(&v.matrix, SbflFormula::Tarantula)))
    });

    c.bench_function("cel_maxsat_localize", |b| {
        b.iter(|| std::hint::black_box(cel_localize(&v.matrix)))
    });

    let roots: Vec<_> = v
        .failures()
        .flat_map(|r| r.deriv_roots.iter().copied())
        .collect();
    c.bench_function("provenance_leaf_enumeration", |b| {
        let prov = Provenance::new(&out.arena);
        b.iter(|| std::hint::black_box(prov.leaves(roots.iter().copied())))
    });

    let models = models_of(&net.topo, &incident.broken);
    let ctx = RepairCtx {
        topo: &net.topo,
        cfg: &incident.broken,
        verification: &v,
        arena: &out.arena,
        models: &models,
    };
    let ranking = localize(&v.matrix, SbflFormula::Tarantula);
    let top = ranking.top().expect("failures exist").0;
    c.bench_function("template_instantiation_with_smt", |b| {
        b.iter(|| std::hint::black_box(candidates_for_line(top, &ctx)))
    });
}

criterion_group!(benches, bench_spaces);
criterion_main!(benches);
