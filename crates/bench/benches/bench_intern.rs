//! Criterion: the hash-consed route arena's hot paths.
//!
//! The sparse engine leans on three interner operations per transfer:
//! re-interning a route it has seen before (a *hit* — hash, bucket scan,
//! full-content confirm), resolving ids back to routes / key ids, and
//! comparing candidates. The rows below pin each hit path against its
//! by-value twin so a regression in the arena shows up as a ratio shift,
//! not just absolute noise: id comparison must stay integer-cheap next
//! to full `Route` equality, and `select_best_id` must track
//! `select_best` minus the clone traffic.

use acr_net_types::{AsPath, Asn, Ipv4Addr, Prefix, RouterId};
use acr_sim::route::select_best;
use acr_sim::{select_best_id, Route, RouteId, RouteInterner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A synthetic-but-plausible route population: distinct AS paths, MEDs,
/// and next hops over a few hundred prefixes — the shape a wan(24,48)
/// run pushes through the memo, without coupling the bench to the sim.
fn population(n: usize) -> Vec<Route> {
    (0..n)
        .map(|i| {
            let hops: Vec<Asn> = (0..(i % 5 + 1))
                .map(|h| Asn(65000 + (i + h) as u32))
                .collect();
            Route {
                prefix: Prefix::from_octets(10, (i % 200) as u8, (i / 200) as u8, 0, 24),
                as_path: AsPath::from_hops(hops),
                local_pref: 100 + (i % 3) as u32 * 50,
                med: (i % 7) as u32,
                communities: vec![],
                next_hop: Ipv4Addr::new(172, 16, (i % 16) as u8, (i % 250) as u8 + 1),
                learned_from: Some(RouterId((i % 24) as u32)),
                deriv: acr_sim::DerivId(i as u32),
            }
        })
        .collect()
}

fn bench_intern(c: &mut Criterion) {
    let routes = population(1024);
    let mut it = RouteInterner::new();
    let ids: Vec<RouteId> = routes.iter().map(|r| it.intern(r)).collect();
    assert_eq!(it.len(), routes.len(), "population must be duplicate-free");

    let mut group = c.benchmark_group("route_interner");

    // Hit path: every route is already interned, so each call is
    // hash + bucket probe + one full-content confirm, no clone.
    group.bench_function("intern_hit_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in &routes {
                acc += it.intern(black_box(r)).0 as u64;
            }
            black_box(acc)
        })
    });

    // Lookup path: id -> route reference and id -> key id, the two
    // resolutions the engine does per candidate per round.
    group.bench_function("get_and_key_id_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids {
                acc += it.get(black_box(id)).local_pref as u64;
                acc += it.key_id(black_box(id)) as u64;
            }
            black_box(acc)
        })
    });

    // Compare path: interned-id equality vs full-route equality on the
    // worst case for by-value comparison — equal routes, where every
    // field (AS path included) must be walked before `==` returns.
    let clones: Vec<Route> = routes.clone();
    group.bench_function("compare_ids_1024", |b| {
        b.iter(|| {
            let mut eq = 0usize;
            for (a, b2) in ids.iter().zip(ids.iter()) {
                eq += usize::from(black_box(a) == black_box(b2));
            }
            black_box(eq)
        })
    });
    group.bench_function("compare_routes_1024", |b| {
        b.iter(|| {
            let mut eq = 0usize;
            for (a, b2) in routes.iter().zip(clones.iter()) {
                eq += usize::from(black_box(a) == black_box(b2));
            }
            black_box(eq)
        })
    });

    // Best-path selection over the full candidate set: the id variant
    // compares through the arena without cloning a single route.
    group.bench_function("select_best_id_1024", |b| {
        b.iter(|| black_box(select_best_id(&it, ids.iter().copied())))
    });
    group.bench_function("select_best_value_1024", |b| {
        b.iter(|| black_box(select_best(routes.iter().cloned())))
    });

    group.finish();
}

criterion_group!(benches, bench_intern);
criterion_main!(benches);
