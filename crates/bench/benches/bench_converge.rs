//! Criterion: per-prefix convergence — dense vs sparse engine.
//!
//! Pins `run_prefix` itself (no FIBs, no verification) on the hottest
//! prefix of the wan(24,48) substrate, under both engines via an
//! explicit [`RunOptions`] so the `ACR_SPARSE` toggle cannot skew the
//! comparison. The two rows measure identical work products — outcomes
//! and arenas are byte-equal by the sparse-exactness tests — so the gap
//! is pure scheduling + memoization win.

use acr_bench::scaled_network;
use acr_sim::{ConvergeEngine, DerivArena, RunOptions, ShardMode, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;

fn bench_converge_engines(c: &mut Criterion) {
    let net = scaled_network(24); // wan(24,48)
    let sim = Simulator::new(&net.topo, &net.cfg);
    let dense_only = RunOptions {
        engine: ConvergeEngine::Dense,
        warm: None,
        shard: ShardMode::Off,
    };
    // Hottest prefix = the one whose dense run recomputes the most
    // router-rounds; the worst case for the dense engine and the widest
    // contrast for the sparse one.
    let hot = sim
        .universe()
        .into_iter()
        .max_by_key(|p| {
            let mut arena = DerivArena::new();
            let one: BTreeSet<_> = [*p].into();
            sim.run_prefixes_opts(&one, &mut arena, &dense_only)
                .1
                .recomputed_routers
        })
        .expect("wan universe is non-empty");
    let one: BTreeSet<_> = [hot].into();

    let mut group = c.benchmark_group("converge_hot_prefix_wan24");
    for (name, engine) in [
        ("dense", ConvergeEngine::Dense),
        ("sparse", ConvergeEngine::Sparse),
    ] {
        let opts = RunOptions {
            engine,
            warm: None,
            shard: ShardMode::Off,
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut arena = DerivArena::new();
                std::hint::black_box(sim.run_prefixes_opts(&one, &mut arena, &opts))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_converge_engines);
criterion_main!(benches);
