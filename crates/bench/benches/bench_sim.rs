//! Criterion: raw control-plane simulation throughput.
//!
//! Benchmarks the substrate everything else pays for — full per-prefix
//! BGP simulation plus FIB assembly — across network sizes.

use acr_bench::scaled_network;
use acr_sim::Simulator;
use acr_verify::Verifier;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_full_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_full_network");
    for n_bb in [4usize, 8, 16] {
        let net = scaled_network(n_bb);
        group.bench_with_input(
            BenchmarkId::from_parameter(net.topo.len()),
            &net,
            |b, net| {
                b.iter(|| {
                    let sim = Simulator::new(&net.topo, &net.cfg);
                    std::hint::black_box(sim.run())
                })
            },
        );
    }
    group.finish();
}

fn bench_model_compilation(c: &mut Criterion) {
    let net = scaled_network(8);
    c.bench_function("compile_models_24_routers", |b| {
        b.iter(|| std::hint::black_box(Simulator::new(&net.topo, &net.cfg)))
    });
}

fn bench_single_prefix(c: &mut Criterion) {
    let net = scaled_network(8);
    let sim = Simulator::new(&net.topo, &net.cfg);
    let universe = sim.universe();
    let one: std::collections::BTreeSet<_> = universe.iter().take(1).copied().collect();
    c.bench_function("simulate_one_prefix_24_routers", |b| {
        b.iter(|| std::hint::black_box(sim.run_prefixes(&one)))
    });
}

fn bench_run_full(c: &mut Criterion) {
    let net = scaled_network(8);
    let verifier = Verifier::new(&net.topo, &net.spec);

    // Regression guard: `run_full` must hand back the *same* arena the
    // verification's derivation roots were interned into (it used to
    // clone the whole simulation outcome just to re-own the arena, and a
    // reintroduced clone would leave roots dangling or double the cost).
    let (v, out) = verifier.run_full(&net.cfg);
    let max_id = out.arena.len();
    for rec in &v.records {
        for root in &rec.deriv_roots {
            assert!(
                (root.0 as usize) < max_id,
                "deriv root {root:?} does not resolve in the returned arena"
            );
        }
    }
    assert!(
        !out.arena
            .closure_lines(v.records.iter().flat_map(|r| r.deriv_roots.iter().copied()))
            .is_empty(),
        "derivations of a verified network must touch at least one config line"
    );

    c.bench_function("run_full_24_routers", |b| {
        b.iter(|| std::hint::black_box(verifier.run_full(&net.cfg)))
    });
}

criterion_group!(
    benches,
    bench_full_simulation,
    bench_model_compilation,
    bench_single_prefix,
    bench_run_full
);
criterion_main!(benches);
