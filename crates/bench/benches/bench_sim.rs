//! Criterion: raw control-plane simulation throughput.
//!
//! Benchmarks the substrate everything else pays for — full per-prefix
//! BGP simulation plus FIB assembly — across network sizes.

use acr_bench::scaled_network;
use acr_sim::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_full_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_full_network");
    for n_bb in [4usize, 8, 16] {
        let net = scaled_network(n_bb);
        group.bench_with_input(
            BenchmarkId::from_parameter(net.topo.len()),
            &net,
            |b, net| {
                b.iter(|| {
                    let sim = Simulator::new(&net.topo, &net.cfg);
                    std::hint::black_box(sim.run())
                })
            },
        );
    }
    group.finish();
}

fn bench_model_compilation(c: &mut Criterion) {
    let net = scaled_network(8);
    c.bench_function("compile_models_24_routers", |b| {
        b.iter(|| std::hint::black_box(Simulator::new(&net.topo, &net.cfg)))
    });
}

fn bench_single_prefix(c: &mut Criterion) {
    let net = scaled_network(8);
    let sim = Simulator::new(&net.topo, &net.cfg);
    let universe = sim.universe();
    let one: std::collections::BTreeSet<_> = universe.iter().take(1).copied().collect();
    c.bench_function("simulate_one_prefix_24_routers", |b| {
        b.iter(|| std::hint::black_box(sim.run_prefixes(&one)))
    });
}

criterion_group!(
    benches,
    bench_full_simulation,
    bench_model_compilation,
    bench_single_prefix
);
criterion_main!(benches);
