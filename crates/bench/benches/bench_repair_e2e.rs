//! Criterion: end-to-end localize–fix–validate repair latency (feeds the
//! Figure 1 comparison — automatic resolving time).

use acr_bench::standard_network;
use acr_core::{RepairConfig, RepairEngine};
use acr_workloads::{fig2::fig2_incident, try_inject, FaultType};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2_repair(c: &mut Criterion) {
    let fig2 = fig2_incident();
    c.bench_function("repair_fig2_incident", |b| {
        b.iter(|| {
            let engine = RepairEngine::with_defaults(&fig2.topo, &fig2.spec);
            std::hint::black_box(engine.repair(&fig2.broken))
        })
    });
}

fn bench_incident_repairs(c: &mut Criterion) {
    let net = standard_network();
    let mut group = c.benchmark_group("repair_incident");
    group.sample_size(20);
    for fault in [
        FaultType::MissingRedistribution,
        FaultType::WrongOverrideAsn,
        FaultType::MissingPeerGroup,
    ] {
        let Some(incident) = try_inject(fault, &net, 0) else {
            continue;
        };
        group.bench_function(format!("{fault}"), |b| {
            b.iter(|| {
                let engine = RepairEngine::new(
                    &net.topo,
                    &net.spec,
                    RepairConfig {
                        seed: 11,
                        ..RepairConfig::default()
                    },
                );
                std::hint::black_box(engine.repair(&incident.broken))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_repair, bench_incident_repairs);
criterion_main!(benches);
