//! Criterion: repair latency as the network grows (extension S1's
//! companion series).

use acr_bench::scaled_network;
use acr_core::{RepairConfig, RepairEngine};
use acr_workloads::{try_inject, FaultType};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_repair_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_scaling");
    group.sample_size(10);
    for n_bb in [4usize, 8, 12] {
        let net = scaled_network(n_bb);
        let Some(incident) = try_inject(FaultType::MissingPrefixListItems, &net, 0) else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(net.topo.len()),
            &(net, incident),
            |b, (net, incident)| {
                b.iter(|| {
                    let engine = RepairEngine::new(&net.topo, &net.spec, RepairConfig::default());
                    std::hint::black_box(engine.repair(&incident.broken))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_repair_scaling);
criterion_main!(benches);
