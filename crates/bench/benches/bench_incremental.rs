//! Criterion: incremental (DNA-style) vs full candidate validation — the
//! quantitative basis of the paper's §3.2 observation (3).

use acr_bench::scaled_network;
use acr_cfg::{Edit, Patch, PlAction, Stmt};
use acr_net_types::RouterId;
use acr_verify::{IncrementalVerifier, Verifier};
use criterion::{criterion_group, criterion_main, Criterion};

fn local_candidate(net: &acr_workloads::GeneratedNetwork) -> (acr_cfg::NetworkConfig, Patch) {
    let patch = Patch::single(Edit::Insert {
        router: RouterId(0),
        index: net.cfg.device(RouterId(0)).unwrap().len(),
        stmt: Stmt::PrefixListEntry {
            list: "cust_space".into(),
            index: 90,
            action: PlAction::Permit,
            prefix: "10.9.0.0/16".parse().unwrap(),
            ge: None,
            le: None,
        },
    });
    (patch.apply_cloned(&net.cfg).unwrap(), patch)
}

fn bench_validation(c: &mut Criterion) {
    let net = scaled_network(12);
    let (candidate, patch) = local_candidate(&net);

    c.bench_function("validate_full_36_routers", |b| {
        let verifier = Verifier::new(&net.topo, &net.spec);
        b.iter(|| std::hint::black_box(verifier.run_full(&candidate)))
    });

    c.bench_function("validate_incremental_36_routers", |b| {
        let mut iv = IncrementalVerifier::new(&net.topo, &net.spec);
        iv.commit(&net.cfg);
        b.iter(|| std::hint::black_box(iv.verify_candidate(&candidate, &patch)))
    });
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
