//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Every `exp_*` binary regenerates one artifact of the paper (see
//! `EXPERIMENTS.md` at the workspace root for the index); this library
//! holds the corpus construction and table-formatting plumbing they
//! share.

use acr_core::{RepairConfig, RepairEngine, RepairReport};
use acr_topo::gen;
use acr_workloads::{generate, sample_incidents, GeneratedNetwork, Incident};
use std::time::Duration;

/// The standard experiment substrate: a 4-backbone / 8-customer WAN (12
/// routers, every backbone a cut vertex so injected faults are
/// observable).
pub fn standard_network() -> GeneratedNetwork {
    generate(&gen::wan(4, 8))
}

/// A WAN scaled to `n` backbone routers with two customers each.
pub fn scaled_network(n_bb: usize) -> GeneratedNetwork {
    generate(&gen::wan(n_bb, n_bb * 2))
}

/// Builds the incident corpus for the Table-1 / Figure-1 experiments.
pub fn corpus(net: &GeneratedNetwork, count: usize, seed: u64) -> Vec<Incident> {
    sample_incidents(net, count, seed)
}

/// Repairs one incident with the default engine configuration.
pub fn repair(net: &GeneratedNetwork, incident: &Incident, seed: u64) -> RepairReport {
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            seed,
            ..RepairConfig::default()
        },
    );
    engine.repair(&incident.broken)
}

/// Formats a duration as compact human-readable text.
pub fn fmt_duration(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 1.0 {
        format!("{:.0}us", ms * 1e3)
    } else if ms < 1000.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

/// Percentile of a sorted slice (nearest-rank).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// The workspace's single hand-rolled JSON implementation (emitter +
/// validating parser), re-exported from `acr-obs` for the
/// `BENCH_*.json` artifacts.
pub use acr_obs::json;

/// Schema tag every `BENCH_*.json` artifact carries.
pub const BENCH_SCHEMA: &str = "acr-bench/v1";

/// Renders an environment override as a JSON string, or `null` when the
/// variable is unset.
fn env_override(var: &str) -> String {
    std::env::var(var).map_or("null".into(), |v| format!("\"{}\"", json::escape(&v)))
}

/// Wraps a bench binary's payload in the shared artifact envelope and
/// writes it to `BENCH_<name>.json` in the working directory.
///
/// The envelope stamps the schema tag, the bench name, the host's
/// available parallelism, and the `ACR_THREADS` / `ACR_DELTA`
/// environment overrides in effect, so artifacts from different bench
/// binaries (and different runs) are comparable without knowing which
/// binary emitted them. `payload` extends the envelope object with the
/// bench-specific fields.
pub fn write_bench(name: &str, payload: impl FnOnce(json::Obj) -> json::Obj) -> String {
    let doc = payload(bench_envelope(name)).build();
    json::parse(&doc)
        .unwrap_or_else(|e| panic!("BENCH_{name}.json payload is not valid JSON: {e}"));
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, doc + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    path
}

/// The shared envelope fields alone — see [`write_bench`].
pub fn bench_envelope(name: &str) -> json::Obj {
    json::Obj::new()
        .str("schema", BENCH_SCHEMA)
        .str("bench", name)
        .int(
            "host_parallelism",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        )
        .raw("env_threads", &env_override("ACR_THREADS"))
        .raw("env_delta", &env_override("ACR_DELTA"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn bench_envelope_carries_shared_schema() {
        let doc = bench_envelope("unit").int("extra", 7).build();
        let v = json::parse(&doc).expect("envelope is valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));
        assert_eq!(v.get("bench").unwrap().as_str(), Some("unit"));
        assert!(v.get("host_parallelism").unwrap().as_num().unwrap() >= 1.0);
        assert!(v.get("env_threads").is_some());
        assert!(v.get("env_delta").is_some());
        assert_eq!(v.get("extra").unwrap().as_num(), Some(7.0));
    }

    #[test]
    fn standard_network_is_healthy_and_injectable() {
        let net = standard_network();
        let incidents = corpus(&net, 6, 1);
        assert!(incidents.len() >= 5);
    }
}
