//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Every `exp_*` binary regenerates one artifact of the paper (see
//! `EXPERIMENTS.md` at the workspace root for the index); this library
//! holds the corpus construction and table-formatting plumbing they
//! share.

use acr_core::{RepairConfig, RepairEngine, RepairReport};
use acr_topo::gen;
use acr_workloads::{generate, sample_incidents, GeneratedNetwork, Incident};
use std::time::Duration;

/// The standard experiment substrate: a 4-backbone / 8-customer WAN (12
/// routers, every backbone a cut vertex so injected faults are
/// observable).
pub fn standard_network() -> GeneratedNetwork {
    generate(&gen::wan(4, 8))
}

/// A WAN scaled to `n` backbone routers with two customers each.
pub fn scaled_network(n_bb: usize) -> GeneratedNetwork {
    generate(&gen::wan(n_bb, n_bb * 2))
}

/// Builds the incident corpus for the Table-1 / Figure-1 experiments.
pub fn corpus(net: &GeneratedNetwork, count: usize, seed: u64) -> Vec<Incident> {
    sample_incidents(net, count, seed)
}

/// Repairs one incident with the default engine configuration.
pub fn repair(net: &GeneratedNetwork, incident: &Incident, seed: u64) -> RepairReport {
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            seed,
            ..RepairConfig::default()
        },
    );
    engine.repair(&incident.broken)
}

/// Formats a duration as compact human-readable text.
pub fn fmt_duration(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 1.0 {
        format!("{:.0}us", ms * 1e3)
    } else if ms < 1000.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

/// Percentile of a sorted slice (nearest-rank).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Hand-rolled JSON emission for the machine-readable `BENCH_*.json`
/// artifacts (the hermetic workspace has no serde). Only what the bench
/// binaries need: objects of string/number/bool/raw fields and arrays.
pub mod json {
    /// Escapes a string for use inside a JSON string literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// An object under construction.
    #[derive(Default)]
    pub struct Obj {
        fields: Vec<String>,
    }

    impl Obj {
        pub fn new() -> Self {
            Obj::default()
        }

        pub fn str(mut self, k: &str, v: &str) -> Self {
            self.fields
                .push(format!("\"{}\":\"{}\"", escape(k), escape(v)));
            self
        }

        pub fn num(mut self, k: &str, v: f64) -> Self {
            // JSON has no NaN/Inf; encode them as null.
            let v = if v.is_finite() {
                format!("{v}")
            } else {
                "null".into()
            };
            self.fields.push(format!("\"{}\":{v}", escape(k)));
            self
        }

        pub fn int(self, k: &str, v: usize) -> Self {
            self.raw(k, &v.to_string())
        }

        pub fn bool(self, k: &str, v: bool) -> Self {
            self.raw(k, if v { "true" } else { "false" })
        }

        /// A pre-rendered JSON value (nested object or array).
        pub fn raw(mut self, k: &str, v: &str) -> Self {
            self.fields.push(format!("\"{}\":{v}", escape(k)));
            self
        }

        pub fn build(self) -> String {
            format!("{{{}}}", self.fields.join(","))
        }
    }

    /// Renders pre-rendered values as a JSON array.
    pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
        format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn standard_network_is_healthy_and_injectable() {
        let net = standard_network();
        let incidents = corpus(&net, 6, 1);
        assert!(incidents.len() >= 5);
    }
}
