//! **Parallel validation + simulation memo-cache** — what the concurrent
//! validate stage and the shared [`SimCache`] buy the repair loop,
//! measured over the 12-incident corpus.
//!
//! Part 1 sweeps `threads ∈ {1,2,4,8} × cache {off,on}` and prints wall
//! time, speedup against the legacy `threads=1, cache off` path, and the
//! cache hit-rate. Every cell repairs the same corpus with the same
//! seeds; outcomes are identical by construction (the differential
//! determinism test proves it), so the table is a pure cost comparison.
//! Cache-on rows run the corpus **twice against one cache** and report a
//! cold/warm pair: the cold walk pays cache population (historically
//! reported alone as a misleading sub-1x "speedup" at `threads=1`), the
//! warm walk is the steady state the cache exists for.
//! Part 2 breaks the hit-rate down per incident. Part 3 re-walks the
//! corpus against the already-warm cache — the A/B-experiment shape
//! where memoization approaches a 100% hit-rate. Part 4 shares one
//! cache between the engine and both baselines on a single incident.
//!
//! Thread scaling is honest: requested counts above the host's available
//! parallelism are clamped by the engine (oversubscription is pure
//! scheduling overhead for this CPU-bound stage), so sweep rows that
//! would duplicate an already-measured effective count are skipped and
//! annotated instead of being reported as a bogus scaling regression.
//! On a single-core host every row therefore runs sequentially and the
//! measured speedup column comes from memoization alone — which is why
//! every row (skipped ones included) also carries a host-independent
//! **work proxy**: from the baseline run's per-iteration batch sizes
//! `b_i`, a `t`-thread validate stage needs `Σ ceil(b_i/t)` sequential
//! simulation steps where one thread needs `Σ b_i`, so
//! `proxy = Σ b_i / Σ ceil(b_i/t)` is the scaling the batch structure
//! admits at the *requested* count, unclamped. Run on a multi-core host
//! to see the measured column approach it.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_parallel
//! ```

use acr_baselines::{aed_repair_cached, metaprov_repair_cached};
use acr_bench::{corpus, json, rule, standard_network, write_bench};
use acr_core::{OperatorSet, RepairConfig, RepairEngine, RepairReport, SimCache};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Cell {
    wall: Duration,
    validations: usize,
    cached: usize,
    fixed: usize,
    reports: Vec<RepairReport>,
}

fn hit_rate(cached: usize, simulated: usize) -> f64 {
    100.0 * cached as f64 / (cached + simulated).max(1) as f64
}

fn main() {
    let net = standard_network();
    let incidents = corpus(&net, 12, 77);
    println!(
        "substrate: {}-router WAN, {} config lines; corpus: {} incidents; host parallelism: {}\n",
        net.topo.len(),
        net.cfg.total_lines(),
        incidents.len(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let run_corpus = |threads: usize, cache: Option<&Arc<SimCache>>| -> Cell {
        let mut cell = Cell {
            wall: Duration::ZERO,
            validations: 0,
            cached: 0,
            fixed: 0,
            reports: Vec::new(),
        };
        for (i, incident) in incidents.iter().enumerate() {
            let engine = RepairEngine::new(
                &net.topo,
                &net.spec,
                RepairConfig {
                    seed: i as u64,
                    threads,
                    cache: cache.cloned(),
                    operators: OperatorSet::Both,
                    ..RepairConfig::default()
                },
            );
            let t = Instant::now();
            let report = engine.repair(&incident.broken);
            cell.wall += t.elapsed();
            cell.validations += report.validations;
            cell.cached += report.validations_cached;
            cell.fixed += usize::from(report.outcome.is_fixed());
            cell.reports.push(report);
        }
        cell
    };

    // ---- Part 1: threads × cache sweep --------------------------------
    let header = format!(
        "{:<10} {:<6} {:>9} {:>9} {:>9} {:>9} {:>7} {:>10} {:>9} {:>8} {:>6}",
        "Threads",
        "Cache",
        "Cold",
        "ColdSpd",
        "Warm",
        "WarmSpd",
        "Proxy",
        "Simulated",
        "Cached",
        "Hit-rate",
        "Fixed"
    );
    println!("{header}");
    rule(header.len());
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut baseline_wall = Duration::ZERO;
    // Per-iteration validation batch sizes of the baseline run — the
    // work-count scaling proxy is computed from these, so it reflects
    // the batch structure rather than the host's core count.
    let mut batches: Vec<usize> = Vec::new();
    let proxy_speedup = |batches: &[usize], t: usize| -> f64 {
        let units: usize = batches.iter().sum();
        let steps: usize = batches.iter().map(|b| b.div_ceil(t)).sum();
        units as f64 / steps.max(1) as f64
    };
    let mut sweep_rows: Vec<String> = Vec::new();
    let mut measured: Vec<(usize, bool)> = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        for cache_on in [false, true] {
            // The engine clamps `threads` to available parallelism, so an
            // oversubscribed row would re-measure an effective count the
            // sweep already covered — skip it and say so, instead of
            // printing what reads as a scaling regression.
            let effective = threads.min(avail);
            if threads > avail && measured.contains(&(effective, cache_on)) {
                println!(
                    "{:<10} {:<6} {:>9} {:>9} {:>6.2}x skipped: oversubscribed (clamped to {effective}, row above)",
                    threads,
                    if cache_on { "on" } else { "off" },
                    "-",
                    "-",
                    proxy_speedup(&batches, threads),
                );
                sweep_rows.push(
                    json::Obj::new()
                        .int("threads", threads)
                        .int("effective_threads", effective)
                        .bool("cache", cache_on)
                        .bool("skipped_oversubscribed", true)
                        .int("work_units", batches.iter().sum::<usize>())
                        .num("proxy_speedup", proxy_speedup(&batches, threads))
                        .build(),
                );
                continue;
            }
            measured.push((effective, cache_on));
            let cache = cache_on.then(|| Arc::new(SimCache::default()));
            let cell = run_corpus(threads, cache.as_ref());
            // Second walk against the now-populated cache: steady-state
            // cost without the population overhead the cold walk paid.
            let warm = cache_on.then(|| run_corpus(threads, cache.as_ref()));
            if threads == 1 && !cache_on {
                baseline_wall = cell.wall;
                batches = cell
                    .reports
                    .iter()
                    .flat_map(|r| r.iterations.iter().map(|s| s.validated))
                    .collect();
            }
            let speedup = |w: Duration| baseline_wall.as_secs_f64() / w.as_secs_f64().max(1e-9);
            println!(
                "{:<10} {:<6} {:>8.2}s {:>8.2}x {:>9} {:>9} {:>6.2}x {:>10} {:>9} {:>7.1}% {:>6}",
                threads,
                if cache_on { "on" } else { "off" },
                cell.wall.as_secs_f64(),
                speedup(cell.wall),
                warm.as_ref()
                    .map_or("-".into(), |w| format!("{:.2}s", w.wall.as_secs_f64())),
                warm.as_ref()
                    .map_or("-".into(), |w| format!("{:.2}x", speedup(w.wall))),
                proxy_speedup(&batches, threads),
                cell.validations,
                cell.cached,
                hit_rate(cell.cached, cell.validations),
                format!("{}/{}", cell.fixed, incidents.len()),
            );
            let mut row = json::Obj::new()
                .int("threads", threads)
                .int("effective_threads", effective)
                .bool("oversubscribed", threads > avail)
                .bool("cache", cache_on)
                .num("wall_cold_s", cell.wall.as_secs_f64())
                .num("speedup_cold", speedup(cell.wall))
                .int("work_units", batches.iter().sum::<usize>())
                .num("proxy_speedup", proxy_speedup(&batches, threads))
                .int("simulated", cell.validations)
                .int("cached", cell.cached)
                .int("fixed", cell.fixed);
            if let Some(w) = &warm {
                row = row
                    .num("wall_warm_s", w.wall.as_secs_f64())
                    .num("speedup_warm", speedup(w.wall))
                    .int("warm_simulated", w.validations)
                    .int("warm_cached", w.cached);
            }
            sweep_rows.push(row.build());
        }
    }
    rule(header.len());
    println!(
        "speedup is measured wall against the legacy threads=1, cache-off path; \
         cache-on rows list cold (population) and warm (steady-state) walks separately; \
         proxy = Σb_i / Σ⌈b_i/t⌉ over the baseline run's validation batches (host-independent)\n"
    );
    // ---- Part 1b: sharded convergence on the scale-frontier WAN -------
    // Worker sweep over the per-prefix sharded runner on wan(200,400) —
    // 600 routers, 600 prefixes. Outcome/arena byte-identity across
    // worker counts is asserted by `exp_converge` and `prop_shard_sim`;
    // this table is the cost curve (on a single-core host the >1 rows
    // measure honest thread overhead, not parallel speedup).
    let big = acr_bench::scaled_network(200);
    let sim = acr_sim::Simulator::new(&big.topo, &big.cfg);
    let universe = sim.universe();
    let mut shard_rows = Vec::new();
    println!(
        "sharded convergence, wan(200,400) ({} prefixes):",
        universe.len()
    );
    let mut shard_base = Duration::ZERO;
    for workers in [1usize, 2, 4] {
        let opts = acr_sim::RunOptions {
            engine: acr_sim::ConvergeEngine::Sparse,
            warm: None,
            shard: acr_sim::ShardMode::Workers(workers),
        };
        let mut arena = acr_sim::DerivArena::new();
        let t = Instant::now();
        let (_outcomes, work) = sim.run_prefixes_opts(&universe, &mut arena, &opts);
        let wall = t.elapsed();
        if workers == 1 {
            shard_base = wall;
        }
        println!(
            "  workers={workers}: {:>8.2}s ({:.2}x vs workers=1), {} policy evals",
            wall.as_secs_f64(),
            shard_base.as_secs_f64() / wall.as_secs_f64().max(1e-9),
            work.policy_evals,
        );
        shard_rows.push(
            json::Obj::new()
                .int("workers", workers)
                .int("prefixes", universe.len())
                .num("wall_s", wall.as_secs_f64())
                .int("policy_evals", work.policy_evals as usize)
                .int("sharded_runs", work.sharded_runs as usize)
                .int("sharded_prefixes", work.sharded_prefixes as usize)
                .build(),
        );
    }
    println!();

    let path = write_bench("parallel", |env| {
        env.int("incidents", incidents.len())
            .raw("sweep", &json::array(sweep_rows))
            .raw("shard_sweep", &json::array(shard_rows))
    });
    println!("wrote {path}\n");

    // ---- Part 2: per-incident hit-rate, cold and warm -----------------
    // One shared cache, two corpus walks. The cold walk hits on
    // crossover duplicates and cross-incident config overlap; the warm
    // walk is the A/B-experiment shape where every validation is served
    // from memo.
    let shared = Arc::new(SimCache::default());
    let cold = run_corpus(4, Some(&shared));
    let warm = run_corpus(4, Some(&shared));
    let header = format!(
        "{:<42} {:>15} {:>9} {:>15} {:>9}",
        "Incident (threads=4, shared cache)",
        "Cold sim/hit",
        "Hit-rate",
        "Warm sim/hit",
        "Hit-rate"
    );
    println!("{header}");
    rule(header.len());
    let mut cold_hit_incidents = 0usize;
    let mut warm_hit_incidents = 0usize;
    for (i, incident) in incidents.iter().enumerate() {
        let (c, w) = (&cold.reports[i], &warm.reports[i]);
        cold_hit_incidents += usize::from(c.validations_cached > 0);
        warm_hit_incidents += usize::from(w.validations_cached > 0);
        println!(
            "{:<42} {:>15} {:>8.1}% {:>15} {:>8.1}%",
            incident.fault.to_string(),
            format!("{}/{}", c.validations, c.validations_cached),
            hit_rate(c.validations_cached, c.validations),
            format!("{}/{}", w.validations, w.validations_cached),
            hit_rate(w.validations_cached, w.validations),
        );
    }
    rule(header.len());
    println!(
        "incidents with a nonzero hit-rate: {cold_hit_incidents}/{} cold, {warm_hit_incidents}/{} warm\n",
        incidents.len(),
        incidents.len()
    );

    // ---- Part 3: warm-cache re-walk -----------------------------------
    println!(
        "warm re-walk (threads=4, one shared cache, {} entries after the cold pass):",
        shared.len()
    );
    println!(
        "  cold: {:>8.2}s  {:>6} simulated  {:>6} cached ({:.1}%)",
        cold.wall.as_secs_f64(),
        cold.validations,
        cold.cached,
        hit_rate(cold.cached, cold.validations),
    );
    println!(
        "  warm: {:>8.2}s  {:>6} simulated  {:>6} cached ({:.1}%)  — {:.2}x over cold",
        warm.wall.as_secs_f64(),
        warm.validations,
        warm.cached,
        hit_rate(warm.cached, warm.validations),
        cold.wall.as_secs_f64() / warm.wall.as_secs_f64().max(1e-9),
    );
    println!();

    // ---- Part 4: one cache across engine + baselines ------------------
    let shared = Arc::new(SimCache::default());
    let incident = &incidents[0];
    let engine = RepairEngine::new(
        &net.topo,
        &net.spec,
        RepairConfig {
            seed: 0,
            threads: 4,
            cache: Some(shared.clone()),
            operators: OperatorSet::Both,
            ..RepairConfig::default()
        },
    );
    let t = Instant::now();
    let _ = engine.repair(&incident.broken);
    let engine_wall = t.elapsed();
    let t = Instant::now();
    let mp = metaprov_repair_cached(&net.topo, &net.spec, &incident.broken, Some(&shared));
    let mp_wall = t.elapsed();
    let t = Instant::now();
    let aed = aed_repair_cached(&net.topo, &net.spec, &incident.broken, 200, Some(&shared));
    let aed_wall = t.elapsed();
    let stats = shared.stats();
    println!(
        "shared cache across methods on '{}': engine {:.2}s, metaprov {:.2}s ({} tried), aed {:.2}s ({} validated)",
        incident.fault,
        engine_wall.as_secs_f64(),
        mp_wall.as_secs_f64(),
        mp.candidates_tried,
        aed_wall.as_secs_f64(),
        aed.validations,
    );
    println!(
        "  cache totals: {} hits / {} misses ({:.1}% hit-rate), {} insertions, {} evictions",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.insertions,
        stats.evictions,
    );
}
