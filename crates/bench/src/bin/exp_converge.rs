//! **Sparse event-driven convergence** — what dirty-set scheduling,
//! policy-eval memoization, and warm-started fixed points buy the
//! per-prefix BGP engine.
//!
//! Part 1 pits the two engines against each other on fixed workloads
//! (Figure 2, the 12-router WAN corpus, and the 72-router scaled WAN
//! outside `--smoke`), via explicit [`RunOptions`] so the `ACR_SPARSE`
//! toggle cannot skew the comparison. Outcomes and derivation arenas are
//! asserted field-for-field equal on every workload, and the sparse
//! engine is asserted to do **strictly less** router-recomputation work
//! on each one — the table is a pure work comparison, not a trust claim.
//!
//! Part 2 repairs the corpus end-to-end under the process-wide engine
//! (whatever `ACR_SPARSE` resolves to) and prints an FNV-1a digest of
//! the outcome signatures as `report_digest=<hex>`. `ci.sh` runs this
//! binary twice — default (sparse) and `ACR_SPARSE=0` (dense) — and
//! compares digests to prove both engines compute the very same repairs
//! in separate processes, the same pattern `exp_obs` uses for the
//! instrumentation-transparency guard.
//!
//! Results land in `BENCH_converge.json`. `--smoke` shrinks the corpus
//! for CI.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_converge [-- --smoke]
//! ```

use acr_bench::{corpus, fmt_duration, json, rule, scaled_network, standard_network, write_bench};
use acr_cfg::NetworkConfig;
use acr_core::{OperatorSet, RepairConfig, RepairEngine, RepairOutcome, RepairReport};
use acr_sim::{ConvergeEngine, ConvergeWork, DerivArena, RunOptions, Simulator};
use acr_topo::Topology;
use acr_workloads::fig2::fig2_incident;
use std::time::{Duration, Instant};

/// One simulation workload for the engine-vs-engine work table.
struct SimLoad {
    label: String,
    topo: Topology,
    cfg: NetworkConfig,
}

/// Work + wall of one engine over one workload's full universe.
struct EngineRun {
    work: ConvergeWork,
    wall: Duration,
}

fn run_engine(load: &SimLoad, engine: ConvergeEngine) -> (EngineRun, DerivArena, String) {
    let sim = Simulator::new(&load.topo, &load.cfg);
    let mut arena = DerivArena::new();
    let opts = RunOptions { engine, warm: None };
    let t = Instant::now();
    let (outcomes, work) = sim.run_prefixes_opts(&sim.universe(), &mut arena, &opts);
    let wall = t.elapsed();
    // A cheap structural fingerprint of the outcomes, so the equality
    // assertion below can print something useful on mismatch.
    let fp = format!("{outcomes:?}");
    (EngineRun { work, wall }, arena, fp)
}

fn sim_loads(smoke: bool) -> Vec<SimLoad> {
    let mut out = Vec::new();
    let fig2 = fig2_incident();
    out.push(SimLoad {
        label: "fig2 (flapping)".into(),
        topo: fig2.topo,
        cfg: fig2.broken,
    });
    let net = standard_network();
    for inc in corpus(&net, if smoke { 3 } else { 12 }, 77) {
        out.push(SimLoad {
            label: format!("wan(4,8)/{}", inc.fault),
            topo: net.topo.clone(),
            cfg: inc.broken,
        });
    }
    if !smoke {
        let big = scaled_network(24);
        out.push(SimLoad {
            label: "wan(24,48) healthy".into(),
            topo: big.topo,
            cfg: big.cfg,
        });
    }
    out
}

/// The report fields the engine choice must not perturb (same shape as
/// `exp_obs`'s signature: outcomes and per-iteration decisions, no
/// timings).
fn signature(label: &str, r: &RepairReport) -> String {
    let outcome = match &r.outcome {
        RepairOutcome::Fixed { patch, .. } => format!("fixed {patch}"),
        RepairOutcome::NoCandidates {
            best_patch,
            best_fitness,
        } => format!("no_candidates {best_fitness} {best_patch}"),
        RepairOutcome::IterationLimit {
            best_patch,
            best_fitness,
        } => format!("iteration_limit {best_fitness} {best_patch}"),
    };
    let iters: Vec<String> = r
        .iterations
        .iter()
        .map(|s| {
            format!(
                "{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
                s.iteration,
                s.fitness,
                s.best_fitness,
                s.generated,
                s.kept,
                s.recomputed_prefixes,
                s.reused_prefixes,
                s.lint_rejected,
                s.validated,
                s.cached,
                s.invalid
            )
        })
        .collect();
    format!(
        "{label} | {outcome} | init={} v={} vc={} | {}",
        r.initial_failed,
        r.validations,
        r.validations_cached,
        iters.join(";")
    )
}

/// FNV-1a 64 over the signature lines.
fn digest(signatures: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in signatures {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let engine = ConvergeEngine::from_env();

    // ---- Part 1: dense vs sparse round-work, per workload --------------
    let header = format!(
        "{:<34} {:>8} {:>7} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "Workload",
        "Prefixes",
        "Rounds",
        "Dense rc",
        "Sparse rc",
        "Skipped",
        "Evals d/s",
        "Memo hits"
    );
    println!("{header}");
    rule(header.len());
    let mut rows = Vec::new();
    for load in sim_loads(smoke) {
        let (dense, dense_arena, dense_fp) = run_engine(&load, ConvergeEngine::Dense);
        let (sparse, sparse_arena, sparse_fp) = run_engine(&load, ConvergeEngine::Sparse);
        assert_eq!(
            dense_fp, sparse_fp,
            "engines disagree on outcomes for '{}'",
            load.label
        );
        assert_eq!(
            dense_arena, sparse_arena,
            "engines disagree on the derivation arena for '{}'",
            load.label
        );
        assert_eq!(dense.work.rounds, sparse.work.rounds, "{}", load.label);
        assert!(
            sparse.work.recomputed_routers < dense.work.recomputed_routers,
            "acceptance: sparse must do strictly less router work on '{}' ({} vs {})",
            load.label,
            sparse.work.recomputed_routers,
            dense.work.recomputed_routers,
        );
        assert!(
            sparse.work.policy_evals <= dense.work.policy_evals,
            "sparse must never evaluate more policies ('{}')",
            load.label
        );
        println!(
            "{:<34} {:>8} {:>7} {:>9} {:>9} {:>8} {:>9} {:>9}",
            load.label,
            dense.work.prefixes,
            dense.work.rounds,
            dense.work.recomputed_routers,
            sparse.work.recomputed_routers,
            sparse.work.skipped_routers,
            format!("{}/{}", dense.work.policy_evals, sparse.work.policy_evals),
            sparse.work.memo_hits,
        );
        rows.push(
            json::Obj::new()
                .str("workload", &load.label)
                .int("prefixes", dense.work.prefixes as usize)
                .int("rounds", dense.work.rounds as usize)
                .int("dense_recomputed", dense.work.recomputed_routers as usize)
                .int("sparse_recomputed", sparse.work.recomputed_routers as usize)
                .int("sparse_skipped", sparse.work.skipped_routers as usize)
                .int("dense_policy_evals", dense.work.policy_evals as usize)
                .int("sparse_policy_evals", sparse.work.policy_evals as usize)
                .int("sparse_memo_hits", sparse.work.memo_hits as usize)
                .num("dense_wall_s", dense.wall.as_secs_f64())
                .num("sparse_wall_s", sparse.wall.as_secs_f64())
                .build(),
        );
    }
    rule(header.len());
    println!("outcomes + arenas asserted equal per workload; rc = router recomputations\n");

    // ---- Part 2: end-to-end repair under the ambient engine ------------
    let net = standard_network();
    let incidents = corpus(&net, if smoke { 3 } else { 12 }, 77);
    let mut signatures = Vec::new();
    let mut wall = Duration::ZERO;
    let mut converge = Duration::ZERO;
    let mut simulate = Duration::ZERO;
    let mut fixed = 0usize;
    for (i, inc) in incidents.iter().enumerate() {
        let engine = RepairEngine::new(
            &net.topo,
            &net.spec,
            RepairConfig {
                seed: i as u64,
                threads: 1,
                cache: None,
                operators: OperatorSet::Both,
                ..RepairConfig::default()
            },
        );
        let t = Instant::now();
        let report = engine.repair(&inc.broken);
        wall += t.elapsed();
        converge += report.stage.sim_converge;
        simulate += report.stage.sim_simulate;
        fixed += usize::from(report.outcome.is_fixed());
        signatures.push(signature(&format!("wan/{}", inc.fault), &report));
    }
    let d = digest(&signatures);
    println!(
        "repair: {} incidents, engine={engine:?}, {fixed} fixed; wall {} (simulate {}, converge {})",
        incidents.len(),
        fmt_duration(wall),
        fmt_duration(simulate),
        fmt_duration(converge),
    );
    // ci.sh compares this line between the default pass and ACR_SPARSE=0.
    println!("report_digest={d:016x}");

    let path = write_bench("converge", |env| {
        env.bool("smoke", smoke)
            .str("engine", &format!("{engine:?}"))
            .raw("workloads", &json::array(rows))
            .raw(
                "repair",
                &json::Obj::new()
                    .int("incidents", incidents.len())
                    .int("fixed", fixed)
                    .num("wall_s", wall.as_secs_f64())
                    .num("simulate_s", simulate.as_secs_f64())
                    .num("converge_s", converge.as_secs_f64())
                    .str("report_digest", &format!("{d:016x}"))
                    .build(),
            )
    });
    println!("wrote {path}");
}
