//! **Sparse event-driven convergence** — what dirty-set scheduling,
//! policy-eval memoization, and warm-started fixed points buy the
//! per-prefix BGP engine.
//!
//! Part 1 pits the two engines against each other on fixed workloads
//! (Figure 2, the 12-router WAN corpus, and the 72-router scaled WAN
//! outside `--smoke`), via explicit [`RunOptions`] so the `ACR_SPARSE`
//! toggle cannot skew the comparison. Outcomes and derivation arenas are
//! asserted field-for-field equal on every workload, and the sparse
//! engine is asserted to do **strictly less** router-recomputation work
//! on each one — the table is a pure work comparison, not a trust claim.
//!
//! Part 2 repairs the corpus end-to-end under the process-wide engine
//! (whatever `ACR_SPARSE` resolves to) and prints an FNV-1a digest of
//! the outcome signatures as `report_digest=<hex>`. `ci.sh` runs this
//! binary twice — default (sparse) and `ACR_SPARSE=0` (dense) — and
//! compares digests to prove both engines compute the very same repairs
//! in separate processes, the same pattern `exp_obs` uses for the
//! instrumentation-transparency guard.
//!
//! Results land in `BENCH_converge.json`. `--smoke` shrinks the corpus
//! for CI.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_converge [-- --smoke]
//! ```

use acr_bench::{corpus, fmt_duration, json, rule, scaled_network, standard_network, write_bench};
use acr_cfg::NetworkConfig;
use acr_core::{OperatorSet, RepairConfig, RepairEngine, RepairOutcome, RepairReport};
use acr_sim::{
    resolve_threads, ConvergeEngine, ConvergeWork, DerivArena, PolicyMemo, RunOptions, ShardMode,
    Simulator,
};
use acr_topo::{gen, Topology};
use acr_workloads::fig2::fig2_incident;
use acr_workloads::netgen;
use std::time::{Duration, Instant};

/// One simulation workload for the engine-vs-engine work table.
struct SimLoad {
    label: String,
    topo: Topology,
    cfg: NetworkConfig,
}

/// Work + wall of one engine over one workload's full universe.
struct EngineRun {
    work: ConvergeWork,
    wall: Duration,
}

fn run_engine(load: &SimLoad, engine: ConvergeEngine) -> (EngineRun, DerivArena, String) {
    let sim = Simulator::new(&load.topo, &load.cfg);
    let mut arena = DerivArena::new();
    // Sharding off: this table is a pure dense-vs-sparse engine
    // comparison; the sharded runner gets its own part below.
    let opts = RunOptions {
        engine,
        warm: None,
        shard: ShardMode::Off,
    };
    let t = Instant::now();
    let (outcomes, work) = sim.run_prefixes_opts(&sim.universe(), &mut arena, &opts);
    let wall = t.elapsed();
    // A cheap structural fingerprint of the outcomes, so the equality
    // assertion below can print something useful on mismatch.
    let fp = format!("{outcomes:?}");
    (EngineRun { work, wall }, arena, fp)
}

fn sim_loads(smoke: bool) -> Vec<SimLoad> {
    let mut out = Vec::new();
    let fig2 = fig2_incident();
    out.push(SimLoad {
        label: "fig2 (flapping)".into(),
        topo: fig2.topo,
        cfg: fig2.broken,
    });
    let net = standard_network();
    for inc in corpus(&net, if smoke { 3 } else { 12 }, 77) {
        out.push(SimLoad {
            label: format!("wan(4,8)/{}", inc.fault),
            topo: net.topo.clone(),
            cfg: inc.broken,
        });
    }
    if !smoke {
        let big = scaled_network(24);
        out.push(SimLoad {
            label: "wan(24,48) healthy".into(),
            topo: big.topo,
            cfg: big.cfg,
        });
    }
    out
}

/// Scale-frontier workloads: healthy (converging) networks sized for the
/// interning + sharding + memo-reuse comparison. Dense never runs here —
/// the 200-backbone WAN's line diameter alone makes it infeasible.
fn scale_loads(smoke: bool) -> Vec<SimLoad> {
    if smoke {
        let net = standard_network();
        let topo = gen::leaf_spine_multi(2, 4, 25);
        let cfg = netgen::generate_plain_cfg(&topo);
        vec![
            SimLoad {
                label: "wan(4,8) healthy".into(),
                topo: net.topo,
                cfg: net.cfg,
            },
            SimLoad {
                label: "leaf-spine 2x4, 100 pfx".into(),
                topo,
                cfg,
            },
        ]
    } else {
        let mid = scaled_network(24);
        let big = scaled_network(200);
        let dcn = gen::leaf_spine_multi(2, 5, 20_000);
        let dcn_cfg = netgen::generate_plain_cfg(&dcn);
        vec![
            SimLoad {
                label: "wan(24,48) healthy".into(),
                topo: mid.topo,
                cfg: mid.cfg,
            },
            SimLoad {
                label: "wan(200,400) healthy".into(),
                topo: big.topo,
                cfg: big.cfg,
            },
            SimLoad {
                label: "leaf-spine 2x5, 100k pfx".into(),
                topo: dcn,
                cfg: dcn_cfg,
            },
        ]
    }
}

/// The report fields the engine choice must not perturb (same shape as
/// `exp_obs`'s signature: outcomes and per-iteration decisions, no
/// timings).
fn signature(label: &str, r: &RepairReport) -> String {
    let outcome = match &r.outcome {
        RepairOutcome::Fixed { patch, .. } => format!("fixed {patch}"),
        RepairOutcome::NoCandidates {
            best_patch,
            best_fitness,
        } => format!("no_candidates {best_fitness} {best_patch}"),
        RepairOutcome::IterationLimit {
            best_patch,
            best_fitness,
        } => format!("iteration_limit {best_fitness} {best_patch}"),
    };
    let iters: Vec<String> = r
        .iterations
        .iter()
        .map(|s| {
            format!(
                "{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
                s.iteration,
                s.fitness,
                s.best_fitness,
                s.generated,
                s.kept,
                s.recomputed_prefixes,
                s.reused_prefixes,
                s.lint_rejected,
                s.validated,
                s.cached,
                s.invalid
            )
        })
        .collect();
    format!(
        "{label} | {outcome} | init={} v={} vc={} | {}",
        r.initial_failed,
        r.validations,
        r.validations_cached,
        iters.join(";")
    )
}

/// FNV-1a 64 over the signature lines.
fn digest(signatures: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in signatures {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let engine = ConvergeEngine::from_env();

    // ---- Part 1: dense vs sparse round-work, per workload --------------
    let header = format!(
        "{:<34} {:>8} {:>7} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "Workload",
        "Prefixes",
        "Rounds",
        "Dense rc",
        "Sparse rc",
        "Skipped",
        "Evals d/s",
        "Memo hits"
    );
    println!("{header}");
    rule(header.len());
    let mut rows = Vec::new();
    for load in sim_loads(smoke) {
        let (dense, dense_arena, dense_fp) = run_engine(&load, ConvergeEngine::Dense);
        let (sparse, sparse_arena, sparse_fp) = run_engine(&load, ConvergeEngine::Sparse);
        assert_eq!(
            dense_fp, sparse_fp,
            "engines disagree on outcomes for '{}'",
            load.label
        );
        assert_eq!(
            dense_arena, sparse_arena,
            "engines disagree on the derivation arena for '{}'",
            load.label
        );
        assert_eq!(dense.work.rounds, sparse.work.rounds, "{}", load.label);
        assert!(
            sparse.work.recomputed_routers < dense.work.recomputed_routers,
            "acceptance: sparse must do strictly less router work on '{}' ({} vs {})",
            load.label,
            sparse.work.recomputed_routers,
            dense.work.recomputed_routers,
        );
        assert!(
            sparse.work.policy_evals <= dense.work.policy_evals,
            "sparse must never evaluate more policies ('{}')",
            load.label
        );
        println!(
            "{:<34} {:>8} {:>7} {:>9} {:>9} {:>8} {:>9} {:>9}",
            load.label,
            dense.work.prefixes,
            dense.work.rounds,
            dense.work.recomputed_routers,
            sparse.work.recomputed_routers,
            sparse.work.skipped_routers,
            format!("{}/{}", dense.work.policy_evals, sparse.work.policy_evals),
            sparse.work.memo_hits,
        );
        rows.push(
            json::Obj::new()
                .str("workload", &load.label)
                .int("prefixes", dense.work.prefixes as usize)
                .int("rounds", dense.work.rounds as usize)
                .int("dense_recomputed", dense.work.recomputed_routers as usize)
                .int("sparse_recomputed", sparse.work.recomputed_routers as usize)
                .int("sparse_skipped", sparse.work.skipped_routers as usize)
                .int("dense_policy_evals", dense.work.policy_evals as usize)
                .int("sparse_policy_evals", sparse.work.policy_evals as usize)
                .int("sparse_memo_hits", sparse.work.memo_hits as usize)
                .num("dense_wall_s", dense.wall.as_secs_f64())
                .num("sparse_wall_s", sparse.wall.as_secs_f64())
                .build(),
        );
    }
    rule(header.len());
    println!("outcomes + arenas asserted equal per workload; rc = router recomputations\n");

    // ---- Part 1b: scale frontier — interning, sharding, memo reuse -----
    //
    // Three runs per workload, all sparse:
    //   cold    unsharded, fresh memo — exactly the PR 5 sparse engine's
    //           policy-eval count (interning changes representation, not
    //           which transfers are evaluated);
    //   shard   sharded cold run — asserted byte-identical in outcomes
    //           and arena, with the *same* eval count (workers start from
    //           fresh memos and no hit can cross a prefix);
    //   steady  unsharded, reusing the memo the sharded join merged back
    //           (`absorb_worker`) after a no-change `begin_run` — how the
    //           verifier actually revisits a committed base in the repair
    //           loop. Fewer evals and less wall than cold, asserted.
    let scale_header = format!(
        "{:<34} {:>8} {:>3} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "Scale workload",
        "Prefixes",
        "W",
        "Cold",
        "Shard",
        "Steady",
        "Evals c",
        "Evals st",
        "Hits st"
    );
    println!("{scale_header}");
    rule(scale_header.len());
    let workers = resolve_threads(0);
    let mut scale_rows = Vec::new();
    for load in scale_loads(smoke) {
        let sim = Simulator::new(&load.topo, &load.cfg);
        let universe = sim.universe();
        let off = RunOptions {
            engine: ConvergeEngine::Sparse,
            warm: None,
            shard: ShardMode::Off,
        };
        let sharded = RunOptions {
            engine: ConvergeEngine::Sparse,
            warm: None,
            // Explicit worker count: the scale comparison must exercise
            // the sharded runner even under a `ACR_SHARD=0` CI pass.
            shard: ShardMode::Workers(workers),
        };

        let mut arena_cold = DerivArena::new();
        let mut memo_cold = PolicyMemo::new();
        memo_cold.begin_run(sim.sessions_arc(), &[]);
        let t = Instant::now();
        let (out_cold, work_cold) =
            sim.run_prefixes_with(&universe, &mut arena_cold, &off, &mut memo_cold);
        let wall_cold = t.elapsed();
        drop(memo_cold);

        let mut arena_shard = DerivArena::new();
        let mut memo_shard = PolicyMemo::new();
        memo_shard.begin_run(sim.sessions_arc(), &[]);
        let t = Instant::now();
        let (out_shard, work_shard) =
            sim.run_prefixes_with(&universe, &mut arena_shard, &sharded, &mut memo_shard);
        let wall_shard = t.elapsed();
        assert_eq!(
            out_cold, out_shard,
            "sharded outcomes must be byte-identical ('{}')",
            load.label
        );
        assert_eq!(
            arena_cold, arena_shard,
            "sharded arena must be byte-identical ('{}')",
            load.label
        );
        assert_eq!(
            work_cold.policy_evals, work_shard.policy_evals,
            "sharding must not change which transfers are evaluated ('{}')",
            load.label
        );
        drop(out_shard);
        drop(arena_cold);

        // Steady state: the sharded join absorbed every worker memo, so
        // re-running unsharded against the same arena serves transfers
        // from the memo instead of re-evaluating policies.
        memo_shard.begin_run(sim.sessions_arc(), &[]);
        let t = Instant::now();
        let (out_steady, work_steady) =
            sim.run_prefixes_with(&universe, &mut arena_shard, &off, &mut memo_shard);
        let wall_steady = t.elapsed();
        assert_eq!(
            out_cold, out_steady,
            "memo reuse must not change outcomes ('{}')",
            load.label
        );
        assert!(
            work_steady.policy_evals < work_cold.policy_evals,
            "acceptance: steady state must evaluate fewer policies than the \
             cold sparse engine ('{}': {} vs {})",
            load.label,
            work_steady.policy_evals,
            work_cold.policy_evals,
        );
        if !smoke {
            assert!(
                wall_steady < wall_cold,
                "acceptance: steady state must take strictly less wall time \
                 than the cold sparse engine ('{}': {:?} vs {:?})",
                load.label,
                wall_steady,
                wall_cold,
            );
        }
        println!(
            "{:<34} {:>8} {:>3} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
            load.label,
            work_cold.prefixes,
            workers,
            fmt_duration(wall_cold),
            fmt_duration(wall_shard),
            fmt_duration(wall_steady),
            work_cold.policy_evals,
            work_steady.policy_evals,
            work_steady.memo_hits,
        );
        scale_rows.push(
            json::Obj::new()
                .str("workload", &load.label)
                .int("prefixes", work_cold.prefixes as usize)
                .int("workers", workers)
                .num("cold_wall_s", wall_cold.as_secs_f64())
                .num("shard_wall_s", wall_shard.as_secs_f64())
                .num("steady_wall_s", wall_steady.as_secs_f64())
                .int("cold_policy_evals", work_cold.policy_evals as usize)
                .int("shard_policy_evals", work_shard.policy_evals as usize)
                .int("steady_policy_evals", work_steady.policy_evals as usize)
                .int("steady_memo_hits", work_steady.memo_hits as usize)
                .int("sharded_runs", work_shard.sharded_runs as usize)
                .int("sharded_prefixes", work_shard.sharded_prefixes as usize)
                .build(),
        );
    }
    rule(scale_header.len());
    println!("sharded runs asserted byte-identical (outcomes, arena) with equal eval counts\n");

    // ---- Part 2: end-to-end repair under the ambient engine ------------
    let net = standard_network();
    let incidents = corpus(&net, if smoke { 3 } else { 12 }, 77);
    let mut signatures = Vec::new();
    let mut wall = Duration::ZERO;
    let mut converge = Duration::ZERO;
    let mut simulate = Duration::ZERO;
    let mut fixed = 0usize;
    for (i, inc) in incidents.iter().enumerate() {
        let engine = RepairEngine::new(
            &net.topo,
            &net.spec,
            RepairConfig {
                seed: i as u64,
                threads: 1,
                cache: None,
                operators: OperatorSet::Both,
                ..RepairConfig::default()
            },
        );
        let t = Instant::now();
        let report = engine.repair(&inc.broken);
        wall += t.elapsed();
        converge += report.stage.sim_converge;
        simulate += report.stage.sim_simulate;
        fixed += usize::from(report.outcome.is_fixed());
        signatures.push(signature(&format!("wan/{}", inc.fault), &report));
    }
    let d = digest(&signatures);
    println!(
        "repair: {} incidents, engine={engine:?}, {fixed} fixed; wall {} (simulate {}, converge {})",
        incidents.len(),
        fmt_duration(wall),
        fmt_duration(simulate),
        fmt_duration(converge),
    );
    // ci.sh compares this line between the default pass and ACR_SPARSE=0.
    println!("report_digest={d:016x}");

    let path = write_bench("converge", |env| {
        env.bool("smoke", smoke)
            .str("engine", &format!("{engine:?}"))
            .raw("workloads", &json::array(rows))
            .raw("scale", &json::array(scale_rows))
            .raw(
                "repair",
                &json::Obj::new()
                    .int("incidents", incidents.len())
                    .int("fixed", fixed)
                    .num("wall_s", wall.as_secs_f64())
                    .num("simulate_s", simulate.as_secs_f64())
                    .num("converge_s", converge.as_secs_f64())
                    .str("report_digest", &format!("{d:016x}"))
                    .build(),
            )
    });
    println!("wrote {path}");
}
