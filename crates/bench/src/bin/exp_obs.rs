//! **Observability validation** — the acr-obs subsystem exercised
//! end-to-end on the Figure 2 incident plus the 12-router WAN corpus.
//!
//! Three properties are asserted, per cell of a `threads × delta`
//! matrix:
//!
//! 1. **Schema** — every journal line parses as JSON and carries the
//!    fields its `event` kind promises (`acr-journal/v2`), and the
//!    exported trace is loadable Chrome trace-event JSON.
//! 2. **Determinism** — two identical runs produce byte-identical
//!    journals after timestamp scrubbing; journals across thread counts
//!    differ only in the `run_start` config line; the canonical trace is
//!    stable across repeat runs.
//! 3. **Transparency** — repair reports are identical with every obs
//!    facility on and with everything off: instrumentation records,
//!    never decides.
//!
//! A report digest (FNV-1a over the outcome signatures) is printed as
//! `report_digest=<hex>`; `ci.sh` compares it between an instrumented
//! pass and an `--disabled` pass of the same binary to prove the two
//! processes computed the very same repairs. `--smoke` shrinks the
//! matrix for CI; results land in `BENCH_obs.json` (enabled pass only).
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_obs [-- --smoke] [-- --disabled]
//! ```

use acr_bench::{corpus, json, rule, standard_network, write_bench};
use acr_core::{OperatorSet, RepairConfig, RepairEngine, RepairOutcome, RepairReport, SimCache};
use acr_obs::{journal, metrics, trace};
use acr_topo::Topology;
use acr_verify::Spec;
use acr_workloads::fig2::fig2_incident;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One repair workload: a broken network plus the spec to restore.
struct Workload {
    label: String,
    topo: Topology,
    spec: Spec,
    broken: acr_cfg::NetworkConfig,
    seed: u64,
}

/// One matrix cell's measured result.
struct CellResult {
    threads: usize,
    delta: bool,
    wall: Duration,
    journal_lines: usize,
    journal_bytes: usize,
    /// Scrubbed journal with the `run_start` line dropped — the part
    /// that must agree across thread counts and the delta toggle's
    /// construction-only changes.
    body: String,
    signatures: Vec<String>,
}

fn workloads(smoke: bool) -> Vec<Workload> {
    let mut out = Vec::new();
    let fig2 = fig2_incident();
    out.push(Workload {
        label: "fig2".into(),
        topo: fig2.topo,
        spec: fig2.spec,
        broken: fig2.broken,
        seed: 7,
    });
    let net = standard_network();
    let incidents = corpus(&net, if smoke { 3 } else { 12 }, 77);
    for (i, inc) in incidents.into_iter().enumerate() {
        out.push(Workload {
            label: format!("wan/{}", inc.fault),
            topo: net.topo.clone(),
            spec: net.spec.clone(),
            broken: inc.broken,
            seed: i as u64,
        });
    }
    out
}

/// The report fields instrumentation must not perturb, as one line per
/// workload. Stage/wall timings are excluded — they are measurements,
/// not decisions.
fn signature(label: &str, r: &RepairReport) -> String {
    let outcome = match &r.outcome {
        RepairOutcome::Fixed { patch, .. } => format!("fixed {patch}"),
        RepairOutcome::NoCandidates {
            best_patch,
            best_fitness,
        } => format!("no_candidates {best_fitness} {best_patch}"),
        RepairOutcome::IterationLimit {
            best_patch,
            best_fitness,
        } => format!("iteration_limit {best_fitness} {best_patch}"),
    };
    let iters: Vec<String> = r
        .iterations
        .iter()
        .map(|s| {
            format!(
                "{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
                s.iteration,
                s.fitness,
                s.best_fitness,
                s.generated,
                s.kept,
                s.recomputed_prefixes,
                s.reused_prefixes,
                s.lint_rejected,
                s.validated,
                s.cached,
                s.invalid
            )
        })
        .collect();
    format!(
        "{label} | {outcome} | init={} v={} vc={} | {}",
        r.initial_failed,
        r.validations,
        r.validations_cached,
        iters.join(";")
    )
}

/// FNV-1a 64 over the signature lines.
fn digest(signatures: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in signatures {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn repair_all(loads: &[Workload], threads: usize, delta: bool) -> Vec<RepairReport> {
    loads
        .iter()
        .map(|w| {
            let engine = RepairEngine::new(
                &w.topo,
                &w.spec,
                RepairConfig {
                    seed: w.seed,
                    threads,
                    delta,
                    cache: Some(Arc::new(SimCache::default())),
                    operators: OperatorSet::Both,
                    ..RepairConfig::default()
                },
            );
            engine.repair(&w.broken)
        })
        .collect()
}

/// Asserts one journal line satisfies the `acr-journal/v2` schema.
fn check_journal_line(line: &str) {
    let v = json::parse(line).unwrap_or_else(|e| panic!("journal line is not JSON ({e}): {line}"));
    let event = v
        .get("event")
        .and_then(|e| e.as_str())
        .unwrap_or_else(|| panic!("journal line lacks an event: {line}"));
    let need = |keys: &[&str]| {
        for k in keys {
            assert!(v.get(k).is_some(), "{event} record lacks '{k}': {line}");
        }
    };
    match event {
        "run_start" => {
            need(&["ts_us", "routers", "devices", "initial_failed", "config"]);
            assert_eq!(
                v.get("schema").and_then(|s| s.as_str()),
                Some(journal::SCHEMA),
                "run_start must stamp the schema: {line}"
            );
            let cfg = v.get("config").unwrap();
            for k in [
                "strategy", "seed", "threads", "cache", "delta", "lint", "flow", "tags",
            ] {
                assert!(cfg.get(k).is_some(), "run_start config lacks '{k}': {line}");
            }
        }
        "flow_summary" => need(&[
            "ts_us",
            "fixpoint_iterations",
            "facts",
            "prior_lines",
            "gate",
        ]),
        "iteration" => {
            need(&[
                "ts_us",
                "iteration",
                "fitness",
                "best_fitness",
                "generated",
                "kept",
                "lint_rejected",
                "validated",
                "cached",
                "invalid",
                "flow_skipped",
                "suspects",
                "candidates",
            ]);
            for c in v.get("candidates").unwrap().as_arr().unwrap() {
                assert!(
                    c.get("patch").is_some()
                        && c.get("outcome").is_some()
                        && c.get("segments").is_some()
                );
            }
        }
        "run_end" => {
            need(&[
                "ts_us",
                "outcome",
                "patch",
                "fitness",
                "iterations",
                "validations",
                "validations_cached",
                "validations_skipped",
                "attribution",
                "tags",
            ]);
            for seg in v.get("attribution").unwrap().as_arr().unwrap() {
                for k in ["iteration", "op", "edits"] {
                    assert!(seg.get(k).is_some(), "attribution segment lacks '{k}'");
                }
            }
        }
        "shard_summary" => need(&["ts_us", "sharded_runs", "sharded_prefixes"]),
        "baseline_run" => need(&["ts_us", "baseline"]),
        other => panic!("unknown journal event '{other}': {line}"),
    }
}

/// Asserts the Chrome trace export is loadable and well-formed.
fn check_trace(doc: &str) -> usize {
    let v = json::parse(doc).expect("trace export must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("trace must hold a traceEvents array");
    assert!(!events.is_empty(), "an instrumented repair must emit spans");
    for e in events {
        for k in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(e.get(k).is_some(), "trace event lacks '{k}'");
        }
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
    }
    events.len()
}

/// Drops the `run_start` lines (the only config-bearing records) from a
/// scrubbed journal, leaving the part comparable across configurations.
fn journal_body(scrubbed: &str) -> String {
    scrubbed
        .lines()
        .filter(|l| !l.contains("\"event\":\"run_start\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let disabled = std::env::args().any(|a| a == "--disabled");
    let loads = workloads(smoke);
    let thread_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 8] };
    let deltas = [true, false];

    if disabled {
        // The A/B partner pass: everything off, digest printed for ci.sh
        // to compare against the instrumented pass.
        acr_obs::disable_all();
        let mut signatures = Vec::new();
        for &threads in thread_counts {
            for &delta in &deltas {
                for (w, r) in loads.iter().zip(repair_all(&loads, threads, delta)) {
                    signatures.push(format!(
                        "t{threads} d{} {}",
                        delta as u8,
                        signature(&w.label, &r)
                    ));
                }
            }
        }
        println!(
            "obs disabled: {} workloads × {} thread counts × delta on/off",
            loads.len(),
            thread_counts.len()
        );
        println!("report_digest={:016x}", digest(&signatures));
        return;
    }

    println!(
        "workloads: fig2 + {}-incident WAN corpus; matrix: threads {:?} × delta on/off\n",
        loads.len() - 1,
        thread_counts
    );

    // ---- Instrumented matrix ------------------------------------------
    acr_obs::set_flags(acr_obs::ALL);
    let header = format!(
        "{:<8} {:<6} {:>9} {:>10} {:>12} {:>13} {:>9}",
        "Threads", "Delta", "Wall", "Journal", "Jrnl bytes", "Deterministic", "Fixed"
    );
    println!("{header}");
    rule(header.len());
    let mut cells: Vec<CellResult> = Vec::new();
    let mut all_signatures = Vec::new();
    for &threads in thread_counts {
        for &delta in &deltas {
            // Two identical runs; the scrubbed journals must agree byte
            // for byte.
            journal::capture_to_memory();
            let t = Instant::now();
            let reports = repair_all(&loads, threads, delta);
            let wall = t.elapsed();
            let raw = journal::take_captured();
            journal::capture_to_memory();
            let again = repair_all(&loads, threads, delta);
            let raw2 = journal::take_captured();
            let scrubbed = journal::scrub_timestamps(&raw);
            assert_eq!(
                scrubbed,
                journal::scrub_timestamps(&raw2),
                "journal must be byte-identical across identical runs (threads={threads}, delta={delta})"
            );
            for (a, b) in reports.iter().zip(&again) {
                assert_eq!(
                    signature("", a),
                    signature("", b),
                    "repeat run diverged (threads={threads}, delta={delta})"
                );
            }
            for line in raw.lines() {
                check_journal_line(line);
            }
            let signatures: Vec<String> = loads
                .iter()
                .zip(&reports)
                .map(|(w, r)| signature(&w.label, r))
                .collect();
            all_signatures.extend(
                signatures
                    .iter()
                    .map(|s| format!("t{threads} d{} {s}", delta as u8)),
            );
            let fixed = reports.iter().filter(|r| r.outcome.is_fixed()).count();
            println!(
                "{:<8} {:<6} {:>8.2}s {:>10} {:>12} {:>13} {:>9}",
                threads,
                if delta { "on" } else { "off" },
                wall.as_secs_f64(),
                format!("{} lines", raw.lines().count()),
                raw.len(),
                "yes",
                format!("{fixed}/{}", loads.len()),
            );
            cells.push(CellResult {
                threads,
                delta,
                wall,
                journal_lines: raw.lines().count(),
                journal_bytes: raw.len(),
                body: journal_body(&scrubbed),
                signatures,
            });
        }
    }
    rule(header.len());

    // Across thread counts (delta fixed), journals agree outside the
    // run_start config line: emission is coordinator-side and ordered.
    for delta in deltas {
        let bodies: Vec<&CellResult> = cells.iter().filter(|c| c.delta == delta).collect();
        for pair in bodies.windows(2) {
            assert_eq!(
                pair[0].body, pair[1].body,
                "journal body must not depend on the thread count (delta={delta}, threads {} vs {})",
                pair[0].threads, pair[1].threads
            );
        }
    }
    // And the reports themselves are thread-count- and delta-invariant.
    for pair in cells.windows(2) {
        assert_eq!(
            pair[0].signatures, pair[1].signatures,
            "reports must be identical across the matrix"
        );
    }
    println!(
        "journal bodies identical across thread counts; reports identical across the matrix\n"
    );

    // ---- Trace validity ------------------------------------------------
    let trace_events = check_trace(&trace::export_chrome());
    let canon_before = trace::canonical().len();
    println!("trace: {trace_events} events, loadable Chrome trace-event JSON ({canon_before} canonical lines)");

    // ---- On/off A/B ----------------------------------------------------
    acr_obs::disable_all();
    let t = Instant::now();
    let off_reports = repair_all(&loads, thread_counts[0], true);
    let wall_off = t.elapsed();
    let on_cell = cells
        .iter()
        .find(|c| c.threads == thread_counts[0] && c.delta)
        .unwrap();
    let off_signatures: Vec<String> = loads
        .iter()
        .zip(&off_reports)
        .map(|(w, r)| signature(&w.label, r))
        .collect();
    assert_eq!(
        on_cell.signatures, off_signatures,
        "instrumentation must not change what the engine computes"
    );
    println!(
        "on/off A/B (threads={}): reports identical; wall {:.2}s instrumented vs {:.2}s off\n",
        thread_counts[0],
        on_cell.wall.as_secs_f64(),
        wall_off.as_secs_f64(),
    );
    println!("report_digest={:016x}", digest(&all_signatures));

    // ---- Machine-readable artifact ------------------------------------
    let cell_rows = json::array(cells.iter().map(|c| {
        json::Obj::new()
            .int("threads", c.threads)
            .bool("delta", c.delta)
            .num("wall_s", c.wall.as_secs_f64())
            .int("journal_lines", c.journal_lines)
            .int("journal_bytes", c.journal_bytes)
            .build()
    }));
    let m = metrics::snapshot();
    let counter = |name: &str| match m.get(name) {
        Some(metrics::MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    let metrics_summary = json::Obj::new()
        .u64("engine_runs", counter("engine.runs"))
        .u64("engine_iterations", counter("engine.iterations"))
        .u64("sim_runs", counter("sim.runs"))
        .u64("cache_candidate_hits", counter("cache.candidate.hits"))
        .u64("lint_gate_rejected", counter("lint.gate.rejected"))
        .u64(
            "flow_fixpoint_iterations",
            counter("flow.fixpoint.iterations"),
        )
        .u64("flow_facts", counter("flow.facts"))
        .u64("flow_gate_skipped", counter("flow.gate.skipped"))
        .u64("dpll_solves", counter("smt.dpll.solves"))
        .u64("sim_shard_runs", counter("sim.shard_runs"))
        .u64("sim_shard_prefixes", counter("sim.shard_prefixes"))
        .build();
    let path = write_bench("obs", |env| {
        env.bool("smoke", smoke)
            .int("workloads", loads.len())
            .str(
                "report_digest",
                &format!("{:016x}", digest(&all_signatures)),
            )
            .bool("journal_deterministic", true)
            .bool("reports_identical_on_off", true)
            .int("trace_events", trace_events)
            .raw("cells", &cell_rows)
            .raw("metrics", &metrics_summary)
    });
    println!("wrote {path}");
}
