//! **Static-analysis coverage** — how much of Table 1 `acr-lint` sees
//! without running a single simulation, and what the lint gate saves the
//! full pipeline.
//!
//! Part 1 injects every Table-1 fault type across seeds and asks whether
//! the broken network lints differently from the clean one (a *new*
//! diagnostic key = statically detected). Part 2 repairs a slice of the
//! corpus twice — lint gate + boost on vs off — and compares candidate
//! validations.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_lint
//! ```

use acr_bench::{corpus, rule, standard_network};
use acr_core::{OperatorSet, RepairConfig, RepairEngine};
use acr_lint::lint_network;
use acr_workloads::{try_inject, FaultType, TABLE1};
use std::collections::BTreeSet;

fn main() {
    let seeds_per_fault: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let net = standard_network();
    let clean_keys = lint_network(&net.topo, &net.cfg).keys();
    println!(
        "substrate: {}-router WAN, {} config lines; clean network: {} lint findings\n",
        net.topo.len(),
        net.cfg.total_lines(),
        clean_keys.len()
    );

    // ---- Part 1: per-fault static detection ---------------------------
    let header = format!(
        "{:<42} {:>9} {:<44}",
        "Type", "Detected", "Rules that fired"
    );
    println!("{header}");
    rule(header.len());
    let mut detected_types = 0usize;
    for (fault, _) in TABLE1 {
        let mut injected = 0usize;
        let mut detected = 0usize;
        let mut rules: BTreeSet<String> = BTreeSet::new();
        for seed in 0..seeds_per_fault {
            let Some(incident) = try_inject(fault, &net, seed) else {
                continue;
            };
            injected += 1;
            let report = lint_network(&net.topo, &incident.broken);
            let fresh: Vec<_> = report
                .diagnostics
                .iter()
                .filter(|d| !clean_keys.contains(&d.key()))
                .collect();
            if !fresh.is_empty() {
                detected += 1;
                rules.extend(fresh.iter().map(|d| d.rule.to_string()));
            }
        }
        if detected > 0 {
            detected_types += 1;
        }
        let fired = if injected == 0 {
            "(no injections at these seeds)".to_string()
        } else if rules.is_empty() {
            "(semantic-only: needs simulation)".to_string()
        } else {
            rules.into_iter().collect::<Vec<_>>().join(", ")
        };
        println!(
            "{:<42} {:>9} {:<44}",
            fault.to_string(),
            format!("{detected}/{injected}"),
            fired
        );
        let _ = FaultType::MissingRedistribution; // anchor the import
    }
    rule(header.len());
    println!(
        "statically visible fault types: {detected_types}/{} (paper's pipeline needs\nsimulation for the rest — lint only narrows the search)\n",
        TABLE1.len()
    );

    // ---- Part 2: the lint gate inside the repair loop -----------------
    let incidents = corpus(&net, 12, 77);
    let run = |lint: bool, seed: u64, broken| {
        let engine = RepairEngine::new(
            &net.topo,
            &net.spec,
            RepairConfig {
                seed,
                lint,
                operators: OperatorSet::Both,
                ..RepairConfig::default()
            },
        );
        engine.repair(broken)
    };
    let header = format!(
        "{:<42} {:>9} {:>9} {:>9} {:>7}",
        "Incident", "Val(off)", "Val(on)", "Pruned", "Fixed"
    );
    println!("{header}");
    rule(header.len());
    let (mut tot_off, mut tot_on, mut tot_pruned) = (0usize, 0usize, 0usize);
    for (i, incident) in incidents.iter().enumerate() {
        let off = run(false, i as u64, &incident.broken);
        let on = run(true, i as u64, &incident.broken);
        let pruned: usize = on.iterations.iter().map(|s| s.lint_rejected).sum();
        tot_off += off.validations;
        tot_on += on.validations;
        tot_pruned += pruned;
        println!(
            "{:<42} {:>9} {:>9} {:>9} {:>7}",
            incident.fault.to_string(),
            off.validations,
            on.validations,
            pruned,
            match (off.outcome.is_fixed(), on.outcome.is_fixed()) {
                (true, true) => "both",
                (false, true) => "on",
                (true, false) => "off",
                (false, false) => "none",
            }
        );
    }
    rule(header.len());
    println!(
        "total candidate validations: {tot_off} (lint off) vs {tot_on} (lint on); {tot_pruned} candidates\nnever reached the simulator ({:.1}% of the lint-off budget)",
        100.0 * tot_pruned as f64 / tot_off.max(1) as f64
    );
}
