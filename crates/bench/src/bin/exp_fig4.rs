//! **Figure 4** — the localize–fix–validate workflow, traced.
//!
//! Runs the engine on a compound incident (two simultaneous faults) and
//! prints the per-iteration fitness trajectory — the evolution loop of
//! the paper's workflow figure — plus termination-condition statistics
//! over the corpus.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_fig4
//! ```

use acr_bench::{corpus, fmt_duration, repair, rule, standard_network};
use acr_core::{RepairConfig, RepairEngine, RepairOutcome};
use acr_workloads::{try_inject, FaultType};

fn main() {
    let net = standard_network();

    // ---- a compound incident: two independent faults at once ----------
    let a = try_inject(FaultType::MissingRedistribution, &net, 0).expect("injectable");
    let b = try_inject(FaultType::WrongOverrideAsn, &net, 1).expect("injectable");
    let compound = a.patch.concat(&b.patch);
    let broken = compound
        .apply_cloned(&net.cfg)
        .expect("independent faults compose");
    println!(
        "compound incident: [{}] + [{}]",
        a.description, b.description
    );

    let engine = RepairEngine::new(&net.topo, &net.spec, RepairConfig::default());
    let report = engine.repair(&broken);
    println!("\nfitness trajectory (fitness = number of failed tests, paper §5):");
    let header = format!(
        "{:>5} {:>8} {:>6} {:>10} {:>6} {:>11} {:>9}",
        "iter", "fitness", "best", "generated", "kept", "recomputed", "reused"
    );
    println!("{header}");
    rule(header.len());
    for it in &report.iterations {
        println!(
            "{:>5} {:>8} {:>6} {:>10} {:>6} {:>11} {:>9}",
            it.iteration,
            it.fitness,
            it.best_fitness,
            it.generated,
            it.kept,
            it.recomputed_prefixes,
            it.reused_prefixes
        );
    }
    rule(header.len());
    match &report.outcome {
        RepairOutcome::Fixed { patch, .. } => println!(
            "terminated: feasible update found (fitness 0) — {} edits in {}, {} validations",
            patch.len(),
            fmt_duration(report.wall),
            report.validations
        ),
        other => println!("terminated: {other:?}"),
    }

    // ---- termination-condition statistics over the corpus --------------
    let incidents = corpus(&net, 60, 99);
    let (mut fixed, mut no_candidates, mut iteration_limit) = (0, 0, 0);
    let mut iteration_counts: Vec<usize> = Vec::new();
    for (i, incident) in incidents.iter().enumerate() {
        let r = repair(&net, incident, i as u64);
        match r.outcome {
            RepairOutcome::Fixed { .. } => {
                fixed += 1;
                iteration_counts.push(r.iteration_count());
            }
            RepairOutcome::NoCandidates { .. } => no_candidates += 1,
            RepairOutcome::IterationLimit { .. } => iteration_limit += 1,
        }
    }
    iteration_counts.sort_unstable();
    println!(
        "\ntermination over {} incidents: fitness-0 {}, S=∅ {}, iteration-cap(500) {}",
        incidents.len(),
        fixed,
        no_candidates,
        iteration_limit
    );
    if !iteration_counts.is_empty() {
        println!(
            "iterations to repair: median {}, p90 {}, max {}",
            iteration_counts[iteration_counts.len() / 2],
            iteration_counts[(iteration_counts.len() * 9 / 10).min(iteration_counts.len() - 1)],
            iteration_counts.last().unwrap()
        );
    }
}
