//! **Scenario benchmark** — every repair strategy scored on the
//! compositional incident corpus, per family.
//!
//! The paper's Figure 1 measures resolving time over *single*-fault
//! incidents; production outages compose. This harness generates the
//! `acr-scenarios` corpus (multi-independent, interacting, cascading and
//! partial-observability families) and scores four pluggable
//! [`RepairStrategy`] implementations on every scenario:
//!
//! - `acr-beam` — ACR with the multi-patch beam search,
//! - `acr-single` — ACR restricted to single-site patches (ablation),
//! - `metaprov` — the provenance baseline,
//! - `aed` — the synthesis baseline (400-validation budget).
//!
//! Each strategy sees the scenario's *visible* spec (the mask's
//! restriction for partial-observability scenarios); every returned
//! patch is harness-judged with a fresh full simulation, and
//! partial-observability repairs are additionally re-judged under **full**
//! observability — what the mask hid is exactly what the `hidden_ok`
//! column measures. Per `(family, strategy)` the harness emits a
//! Figure-1-style resolve-time CDF (p50/p90/max over resolved
//! incidents) into `BENCH_scenarios.json`.
//!
//! **A/B acceptance**: at least one *interacting* scenario is resolved
//! by `acr-beam` and not by `acr-single` — the multi-patch search pays
//! for itself on exactly the incidents the paper's composed-fault
//! discussion predicts.
//!
//! Two digests are printed for `ci.sh`'s cross-process differencing:
//! `corpus_digest=` (the scenario corpus content) and `report_digest=`
//! (FNV-1a over the acr-beam reports' semantic signatures — identical
//! under `ACR_FLOW=0`, since the flow gate must not change any repair).
//! The corpus is already CI-sized, so `--smoke` is accepted but changes
//! nothing — truncating it would dodge the incidents the A/B acceptance
//! hinges on.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_scenarios [-- --smoke]
//! ```

use acr_baselines::{AedStrategy, MetaProvStrategy};
use acr_bench::{fmt_duration, json, percentile, rule, standard_network, write_bench};
use acr_cfg::NetworkConfig;
use acr_core::{AcrStrategy, RepairConfig, RepairStrategy, Strategy, StrategyVerdict};
use acr_scenarios::{corpus, corpus_digest, Scenario, ScenarioFamily};
use acr_topo::Topology;
use acr_verify::{Spec, Verifier};
use std::collections::BTreeMap;

/// Semantic signature of an ACR report (exp_flow's shape): what was
/// decided, not what it cost — stable across the flow toggle.
fn signature(label: &str, r: &acr_core::RepairReport) -> String {
    use acr_core::RepairOutcome;
    let outcome = match &r.outcome {
        RepairOutcome::Fixed { patch, .. } => format!("fixed {patch}"),
        RepairOutcome::NoCandidates {
            best_patch,
            best_fitness,
        } => format!("no_candidates {best_fitness} {best_patch}"),
        RepairOutcome::IterationLimit {
            best_patch,
            best_fitness,
        } => format!("iteration_limit {best_fitness} {best_patch}"),
    };
    let iters: Vec<String> = r
        .iterations
        .iter()
        .map(|s| {
            format!(
                "{}:{}:{}:{}:{}",
                s.iteration, s.fitness, s.best_fitness, s.generated, s.kept
            )
        })
        .collect();
    let attr: Vec<String> = r
        .attribution
        .iter()
        .map(|s| format!("{}@{}x{}", s.op, s.iteration, s.edits))
        .collect();
    format!(
        "{label} | {outcome} | init={} | {} | attr={}",
        r.initial_failed,
        iters.join(";"),
        attr.join(",")
    )
}

/// FNV-1a 64 over signature lines.
fn digest(signatures: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in signatures {
        for b in s.bytes().chain([b'\n']) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The ACR strategies, rebuilt per scenario so reports carry its tags.
fn acr_strategies(scenario: &Scenario) -> Vec<AcrStrategy> {
    let with = |label: &str, strategy: Strategy| {
        AcrStrategy::new(
            label,
            RepairConfig {
                seed: 11,
                strategy,
                tags: scenario.tags(),
                ..RepairConfig::default()
            },
        )
    };
    vec![
        with("acr-beam", Strategy::beam()),
        with("acr-single", Strategy::single_patch()),
    ]
}

/// One scored attempt.
struct Scored {
    strategy: String,
    verdict: StrategyVerdict,
    /// Whether the proposed patch also clears the *full* spec (equals
    /// `verdict.resolved` except for partial-observability scenarios).
    full_ok: bool,
}

fn judge_full(
    topo: &Topology,
    full: &Spec,
    broken: &NetworkConfig,
    verdict: &StrategyVerdict,
) -> bool {
    let Some(patch) = &verdict.patch else {
        return false;
    };
    let Ok(repaired) = patch.apply_cloned(broken) else {
        return false;
    };
    Verifier::new(topo, full).run_full(&repaired).0.all_passed()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The 2-per-family corpus is already CI-sized (seconds); `--smoke`
    // is accepted but must not truncate it — dropping scenarios would
    // dodge the interacting incident the A/B acceptance hinges on.
    let per_family = 2;
    let net = standard_network();
    let scenarios = corpus(&net, per_family, 2024);
    let ambient_flow = RepairConfig::default().flow;
    println!(
        "scenario corpus: {} scenarios ({per_family} per family), 12-router WAN; ambient ACR_FLOW -> {}",
        scenarios.len(),
        if ambient_flow { "on" } else { "off" }
    );
    println!("corpus_digest={:016x}\n", corpus_digest(&scenarios));

    let header = format!(
        "{:<26} {:<12} {:>8} {:>6} {:>6} {:>9} {:>8}",
        "Scenario", "Strategy", "Resolved", "Full", "Resid", "Valids", "Wall"
    );
    println!("{header}");
    rule(header.len());

    let mut scored: Vec<(usize, Scored)> = Vec::new();
    let mut beam_signatures: Vec<String> = Vec::new();
    let mut rows: Vec<String> = Vec::new();
    for (si, scenario) in scenarios.iter().enumerate() {
        let spec = scenario.visible_spec(&net.spec);
        let mut attempts: Vec<Scored> = Vec::new();
        for acr in acr_strategies(scenario) {
            let verdict = acr.attempt(&net.topo, &spec, &scenario.broken);
            let report = verdict.report.as_ref().expect("ACR verdicts carry reports");
            report
                .check_accounting()
                .unwrap_or_else(|e| panic!("{}: accounting violated: {e}", scenario.label));
            assert_eq!(
                report.tags,
                scenario.tags(),
                "{}: tags dropped",
                scenario.label
            );
            if acr.name() == "acr-beam" {
                beam_signatures.push(signature(&scenario.label, report));
            }
            attempts.push(Scored {
                strategy: acr.name().to_string(),
                full_ok: judge_full(&net.topo, &net.spec, &scenario.broken, &verdict),
                verdict,
            });
        }
        for baseline in [
            Box::new(MetaProvStrategy) as Box<dyn RepairStrategy>,
            Box::new(AedStrategy { budget: 400 }),
        ] {
            let verdict = baseline.attempt(&net.topo, &spec, &scenario.broken);
            attempts.push(Scored {
                strategy: baseline.name().to_string(),
                full_ok: judge_full(&net.topo, &net.spec, &scenario.broken, &verdict),
                verdict,
            });
        }
        for s in attempts {
            println!(
                "{:<26} {:<12} {:>8} {:>6} {:>6} {:>9} {:>8}",
                scenario.label,
                s.strategy,
                if s.verdict.resolved { "yes" } else { "no" },
                if s.full_ok { "yes" } else { "no" },
                s.verdict.residual_failures,
                s.verdict.validations,
                fmt_duration(s.verdict.wall),
            );
            rows.push(
                json::Obj::new()
                    .str("scenario", &scenario.label)
                    .str("family", scenario.family.tag())
                    .str("strategy", &s.strategy)
                    .bool("resolved", s.verdict.resolved)
                    .bool("full_observability_resolved", s.full_ok)
                    .int("residual_failures", s.verdict.residual_failures)
                    .int("validations", s.verdict.validations)
                    .num("wall_s", s.verdict.wall.as_secs_f64())
                    .build(),
            );
            scored.push((si, s));
        }
    }
    rule(header.len());

    // Per-(family, strategy) Figure-1-style resolve-time CDFs.
    let mut cdfs: Vec<String> = Vec::new();
    let mut by_key: BTreeMap<(String, String), Vec<(bool, f64)>> = BTreeMap::new();
    for (si, s) in &scored {
        by_key
            .entry((scenarios[*si].family.tag().to_string(), s.strategy.clone()))
            .or_default()
            .push((s.verdict.resolved, s.verdict.wall.as_secs_f64()));
    }
    println!("\nper-family resolve-time CDFs (resolved incidents; seconds)");
    let h2 = format!(
        "{:<24} {:<12} {:>9} {:>9} {:>9} {:>9}",
        "Family", "Strategy", "Resolved", "p50", "p90", "max"
    );
    println!("{h2}");
    rule(h2.len());
    for ((family, strategy), runs) in &by_key {
        let mut times: Vec<f64> = runs.iter().filter(|(ok, _)| *ok).map(|(_, t)| *t).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let frac = |p: f64| {
            if times.is_empty() {
                "-".to_string()
            } else {
                format!("{:.3}", percentile(&times, p))
            }
        };
        println!(
            "{:<24} {:<12} {:>5}/{:<3} {:>9} {:>9} {:>9}",
            family,
            strategy,
            times.len(),
            runs.len(),
            frac(50.0),
            frac(90.0),
            frac(100.0),
        );
        cdfs.push(
            json::Obj::new()
                .str("family", family)
                .str("strategy", strategy)
                .int("scenarios", runs.len())
                .int("resolved", times.len())
                .raw(
                    "resolve_times_s",
                    &json::array(times.iter().map(|t| format!("{t:.6}"))),
                )
                .num(
                    "p50_s",
                    if times.is_empty() {
                        -1.0
                    } else {
                        percentile(&times, 50.0)
                    },
                )
                .num(
                    "p90_s",
                    if times.is_empty() {
                        -1.0
                    } else {
                        percentile(&times, 90.0)
                    },
                )
                .build(),
        );
    }
    rule(h2.len());

    // A/B acceptance: beam resolves an interacting scenario single-patch
    // cannot.
    let resolved_by = |si: usize, name: &str| {
        scored
            .iter()
            .any(|(i, s)| *i == si && s.strategy == name && s.verdict.resolved)
    };
    let beam_only: Vec<&str> = scenarios
        .iter()
        .enumerate()
        .filter(|(_, sc)| sc.family == ScenarioFamily::Interacting)
        .filter(|(si, _)| resolved_by(*si, "acr-beam") && !resolved_by(*si, "acr-single"))
        .map(|(_, sc)| sc.label.as_str())
        .collect();
    assert!(
        !beam_only.is_empty(),
        "acceptance: no interacting scenario separates beam from single-patch"
    );
    println!(
        "A/B: multi-patch beam resolves {} interacting scenario(s) single-patch cannot: {}",
        beam_only.len(),
        beam_only.join(", ")
    );

    let families_covered = ScenarioFamily::ALL
        .iter()
        .filter(|f| scenarios.iter().any(|s| s.family == **f))
        .count();
    assert!(families_covered >= 4, "corpus must cover all four families");

    // ci.sh compares this line between the default pass and ACR_FLOW=0.
    println!("report_digest={:016x}", digest(&beam_signatures));

    let path = write_bench("scenarios", |env| {
        env.bool("smoke", smoke)
            .bool("ambient_flow", ambient_flow)
            .int("scenarios", scenarios.len())
            .int("per_family", per_family)
            .int("strategies", 4)
            .str(
                "corpus_digest",
                &format!("{:016x}", corpus_digest(&scenarios)),
            )
            .str(
                "report_digest",
                &format!("{:016x}", digest(&beam_signatures)),
            )
            .raw(
                "beam_only_interacting",
                &json::array(beam_only.iter().map(|l| format!("\"{}\"", json::escape(l)))),
            )
            .raw("cdfs", &json::array(cdfs))
            .raw("runs", &json::array(rows))
    });
    println!("wrote {path}");
}
