//! **Hypothesis validation** (§6 "Hypotheses for ACR").
//!
//! The plastic-surgery hypothesis transplanted to networks: *devices in
//! DCNs are grouped into several roles, and devices with the same role
//! often have similar configurations* — so repair material can be grafted
//! from siblings. This experiment measures it two ways:
//!
//! 1. **configuration similarity** within vs across roles (Jaccard over
//!    parameter-stripped statement shapes),
//! 2. **graftability**: the fraction of each device's statements whose
//!    shape appears verbatim on some same-role sibling — an upper bound
//!    on what donor-copy operators can supply.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_hypothesis
//! ```

use acr_bench::rule;
use acr_cfg::Stmt;
use acr_topo::gen;
use acr_workloads::generate;
use std::collections::{BTreeMap, BTreeSet};

/// A parameter-stripped statement shape: addresses, prefixes and numbers
/// removed so that role-structural similarity is visible.
fn shape(stmt: &Stmt) -> String {
    match stmt {
        Stmt::BgpProcess(_) => "bgp".into(),
        Stmt::RouterId(_) => "router-id".into(),
        Stmt::Network(_) => "network".into(),
        Stmt::ImportRoute(p) => format!("import-route {p}"),
        Stmt::GroupDef(g) => format!("group {g}"),
        Stmt::PeerAs { peer, .. } => match peer {
            acr_cfg::PeerRef::Group(g) => format!("peer-as group {g}"),
            acr_cfg::PeerRef::Ip(_) => "peer-as ip".into(),
        },
        Stmt::PeerGroup { group, .. } => format!("peer-group {group}"),
        Stmt::PeerPolicy { peer, policy, dir } => match peer {
            acr_cfg::PeerRef::Group(g) => format!("peer-policy group {g} {policy} {dir}"),
            acr_cfg::PeerRef::Ip(_) => format!("peer-policy ip {policy} {dir}"),
        },
        Stmt::RoutePolicyDef { name, action, .. } => format!("route-policy {name} {action}"),
        Stmt::IfMatchPrefixList(l) => format!("if-match {l}"),
        Stmt::IfMatchCommunity(_) => "if-match community".into(),
        Stmt::ApplyAsPathOverwrite(_) => "apply overwrite".into(),
        Stmt::ApplyAsPathPrepend { .. } => "apply prepend".into(),
        Stmt::ApplyLocalPref(_) => "apply local-pref".into(),
        Stmt::ApplyMed(_) => "apply med".into(),
        Stmt::ApplyCommunity(_) => "apply community".into(),
        Stmt::AclRule(_) => "acl-rule".into(),
        Stmt::PbrRule { action, .. } => format!(
            "pbr-rule {}",
            match action {
                acr_cfg::PbrAction::Permit => "permit",
                acr_cfg::PbrAction::Deny => "deny",
                acr_cfg::PbrAction::Redirect(_) => "redirect",
            }
        ),
        Stmt::IpAddress { .. } => "ip-address".into(),
        Stmt::PrefixListEntry { list, action, .. } => format!("prefix-list {list} {action}"),
        Stmt::StaticRoute { .. } => "static-route".into(),
        Stmt::AclDef(_) => "acl".into(),
        Stmt::PbrPolicyDef(n) => format!("traffic-policy {n}"),
        Stmt::ApplyTrafficPolicy(n) => format!("apply traffic-policy {n}"),
        Stmt::Interface(_) => "interface".into(),
        Stmt::Remark(_) => "description".into(),
    }
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

fn main() {
    for (name, topo) in [
        ("leaf-spine DCN (4x8)", gen::leaf_spine(4, 8)),
        ("WAN (6 bb, 12 customers)", gen::wan(6, 12)),
        ("full mesh (8)", gen::full_mesh(8)),
    ] {
        let net = generate(&topo);
        // Shape sets per device, grouped by role.
        let mut by_role: BTreeMap<String, Vec<BTreeSet<String>>> = BTreeMap::new();
        for info in topo.routers() {
            let shapes: BTreeSet<String> = net
                .cfg
                .device(info.id)
                .map(|d| d.stmts().iter().map(shape).collect())
                .unwrap_or_default();
            by_role
                .entry(info.role.to_string())
                .or_default()
                .push(shapes);
        }

        println!("=== {name} ===");
        let header = format!(
            "{:>10} {:>8} {:>14} {:>15} {:>13}",
            "role", "devices", "intra-Jaccard", "inter-Jaccard", "graftable"
        );
        println!("{header}");
        rule(header.len());
        for (role, devices) in &by_role {
            // Mean pairwise similarity inside the role.
            let mut intra = Vec::new();
            for i in 0..devices.len() {
                for j in (i + 1)..devices.len() {
                    intra.push(jaccard(&devices[i], &devices[j]));
                }
            }
            // Mean similarity against devices of other roles.
            let mut inter = Vec::new();
            for (other_role, others) in &by_role {
                if other_role == role {
                    continue;
                }
                for a in devices {
                    for b in others {
                        inter.push(jaccard(a, b));
                    }
                }
            }
            // Graftability: fraction of a device's shapes present on some
            // same-role sibling.
            let mut graftable = Vec::new();
            for (i, dev) in devices.iter().enumerate() {
                if devices.len() < 2 || dev.is_empty() {
                    continue;
                }
                let donors: BTreeSet<&String> = devices
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, d)| d.iter())
                    .collect();
                let hit = dev.iter().filter(|s| donors.contains(s)).count();
                graftable.push(hit as f64 / dev.len() as f64);
            }
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    f64::NAN
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            println!(
                "{:>10} {:>8} {:>14.2} {:>15.2} {:>12.0}%",
                role,
                devices.len(),
                mean(&intra),
                mean(&inter),
                mean(&graftable) * 100.0
            );
        }
        println!();
    }
    println!("reading: intra-role similarity far above inter-role similarity, with high");
    println!("graftability, is the plastic-surgery hypothesis the paper's §6 assumes for");
    println!("DCNs — and the reason donor-copy universal operators (and history-template");
    println!("reuse) have material to work with.");
}
