//! **Figure 3** — the search-space comparison.
//!
//! For the same incident at growing network sizes, counts each method's
//! search space exactly as the paper defines it:
//!
//! - MetaProv (3a): leaf nodes of the failure's provenance tree,
//! - AED (3b): `2^(free variables)` of the whole-config delta encoding
//!   (we print the exponent — the count itself overflows immediately),
//! - ACR (3c): leaf nodes of the search forest (candidate atomic changes
//!   reachable from the suspicious lines).
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_fig3
//! ```

use acr_bench::{rule, scaled_network};
use acr_core::ctx::RepairCtx;
use acr_core::engine::models_of;
use acr_core::space::{acr_space, aed_free_variables, metaprov_space};
use acr_localize::{localize, SbflFormula};
use acr_prov::Provenance;
use acr_verify::Verifier;
use acr_workloads::{try_inject, FaultType};

fn main() {
    let header = format!(
        "{:>4} {:>7} {:>7} | {:>10} {:>9} {:>10} | {:>16} | {:>7}",
        "bb", "routers", "lines", "prov nodes", "MProv N", "MProv 2^N", "AED N (=2^vars)", "ACR N"
    );
    println!("search spaces for the same injected fault (stale route map), growing WAN:\n");
    println!("{header}");
    rule(header.len());
    for n_bb in [2usize, 4, 8, 16, 24, 32] {
        let net = scaled_network(n_bb);
        let Some(incident) = try_inject(FaultType::StaleRouteMap, &net, 1) else {
            continue;
        };
        let verifier = Verifier::new(&net.topo, &net.spec);
        let (v, out) = verifier.run_full(&incident.broken);

        let metaprov = metaprov_space(&out.arena, &v);
        let prov_nodes = {
            let prov = Provenance::new(&out.arena);
            let roots: Vec<_> = v
                .failures()
                .flat_map(|r| r.deriv_roots.iter().copied())
                .collect();
            prov.node_count(roots)
        };
        let aed_vars = aed_free_variables(&incident.broken);
        let models = models_of(&net.topo, &incident.broken);
        let ctx = RepairCtx {
            topo: &net.topo,
            cfg: &incident.broken,
            verification: &v,
            arena: &out.arena,
            models: &models,
        };
        // ACR's pool: the suspicious lines a repair iteration expands
        // (tied top + runners-up, as the engine does).
        let ranking = localize(&v.matrix, SbflFormula::Tarantula);
        let mut pool = ranking.top_tied();
        for (line, score) in ranking.entries().iter().skip(pool.len()).take(15) {
            if *score <= 0.0 {
                break;
            }
            pool.push(*line);
        }
        let acr = acr_space(&ctx, &pool);

        println!(
            "{:>4} {:>7} {:>7} | {:>10} {:>9} {:>10} | {:>16} | {:>7}",
            n_bb,
            net.topo.len(),
            incident.broken.total_lines(),
            prov_nodes,
            metaprov,
            format!("2^{metaprov}"),
            format!("2^{aed_vars}"),
            acr,
        );
    }
    rule(header.len());
    println!("\npaper claims reproduced (§2.3 / Figure 3): MetaProv's *single-change* space is");
    println!("the provenance leaves — small, which is why it is efficient but misses multi-line");
    println!("repairs; extended to multi-change it becomes the power set 2^N. AED's delta");
    println!("encoding explodes with configuration size. ACR's search forest stays bounded");
    println!("because SBFL prunes to the suspicious lines and templates bound the edits.");
}
