//! **Ablations** (extension S2) — the design choices DESIGN.md calls out:
//!
//! 1. SBFL formula (the paper's §6 "computing suspiciousness scores"):
//!    EXAM score of the ground-truth faulty line and repair outcome per
//!    formula,
//! 2. generation strategy: brute force vs genetic,
//! 3. validation: incremental (DNA-style) vs full re-verification.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_ablation
//! ```

use acr_bench::{corpus, fmt_duration, rule, standard_network};
use acr_cfg::{Edit, LineId};
use acr_core::{RepairConfig, RepairEngine, Strategy};
use acr_localize::{localize, SbflFormula};
use acr_verify::{IncrementalVerifier, Verifier};
use acr_workloads::Incident;
use std::time::Instant;

/// Ground-truth faulty lines of an incident, when the fault *added* lines
/// (insert/replace faults have an identifiable culprit in the broken
/// config; omission faults do not).
fn ground_truth_lines(incident: &Incident) -> Vec<LineId> {
    incident
        .patch
        .edits
        .iter()
        .filter_map(|e| match e {
            Edit::Insert { router, index, .. } | Edit::Replace { router, index, .. } => {
                Some(LineId::new(*router, *index as u32 + 1))
            }
            Edit::Delete { .. } => None,
        })
        .collect()
}

fn main() {
    let net = standard_network();
    let incidents = corpus(&net, 60, 31);

    // ---- 1. SBFL formula comparison --------------------------------
    println!("=== SBFL formula ablation (§6 future work, implemented) ===\n");
    let header = format!(
        "{:>12} {:>10} {:>10} {:>10} {:>9}",
        "formula", "meanEXAM", "top1", "top5", "repaired"
    );
    println!("{header}");
    rule(header.len());
    for formula in [
        SbflFormula::Tarantula,
        SbflFormula::Ochiai,
        SbflFormula::Jaccard,
        SbflFormula::DStar(2),
    ] {
        let mut exams: Vec<f64> = Vec::new();
        let (mut top1, mut top5, mut localizable) = (0usize, 0usize, 0usize);
        let mut repaired = 0usize;
        for (i, incident) in incidents.iter().enumerate() {
            // Localization accuracy on addition-faults.
            let truth = ground_truth_lines(incident);
            if !truth.is_empty() {
                let verifier = Verifier::new(&net.topo, &net.spec);
                let (v, _) = verifier.run_full(&incident.broken);
                let ranking = localize(&v.matrix, formula);
                if let Some(best_rank) = truth.iter().filter_map(|l| ranking.rank_of(*l)).min() {
                    localizable += 1;
                    exams.push(best_rank as f64 / ranking.len().max(1) as f64);
                    if best_rank == 1 {
                        top1 += 1;
                    }
                    if best_rank <= 5 {
                        top5 += 1;
                    }
                }
            }
            // End-to-end repair with this formula.
            let engine = RepairEngine::new(
                &net.topo,
                &net.spec,
                RepairConfig {
                    formula,
                    seed: i as u64,
                    ..RepairConfig::default()
                },
            );
            if engine.repair(&incident.broken).outcome.is_fixed() {
                repaired += 1;
            }
        }
        let mean_exam = if exams.is_empty() {
            f64::NAN
        } else {
            exams.iter().sum::<f64>() / exams.len() as f64
        };
        println!(
            "{:>12} {:>10.3} {:>10} {:>10} {:>9}",
            formula.to_string(),
            mean_exam,
            format!("{top1}/{localizable}"),
            format!("{top5}/{localizable}"),
            format!("{repaired}/{}", incidents.len()),
        );
    }

    // ---- 2. strategy ablation ----------------------------------------
    println!("\n=== generation strategy ablation ===\n");
    let header = format!(
        "{:>12} {:>9} {:>9} {:>11} {:>10}",
        "strategy", "repaired", "medIter", "medValid", "medTime"
    );
    println!("{header}");
    rule(header.len());
    for (name, strategy) in [
        ("brute-force", Strategy::brute_force()),
        ("genetic", Strategy::default()),
    ] {
        let mut iters = Vec::new();
        let mut valids = Vec::new();
        let mut times = Vec::new();
        let mut repaired = 0usize;
        for (i, incident) in incidents.iter().enumerate() {
            let engine = RepairEngine::new(
                &net.topo,
                &net.spec,
                RepairConfig {
                    strategy: strategy.clone(),
                    seed: i as u64,
                    ..RepairConfig::default()
                },
            );
            let r = engine.repair(&incident.broken);
            if r.outcome.is_fixed() {
                repaired += 1;
                iters.push(r.iteration_count());
                valids.push(r.validations);
                times.push(r.wall);
            }
        }
        iters.sort_unstable();
        valids.sort_unstable();
        times.sort();
        let med = |v: &[usize]| v.get(v.len() / 2).copied().unwrap_or(0);
        println!(
            "{:>12} {:>9} {:>9} {:>11} {:>10}",
            name,
            format!("{repaired}/{}", incidents.len()),
            med(&iters),
            med(&valids),
            times
                .get(times.len() / 2)
                .map(|t| fmt_duration(*t))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // ---- 2b. operator-set ablation (§6 universal change operators) ----
    println!("\n=== operator-set ablation: curated templates vs §6 universal donors ===\n");
    let header = format!(
        "{:>10} {:>9} {:>11} {:>10}",
        "operators", "repaired", "medValid", "medTime"
    );
    println!("{header}");
    rule(header.len());
    for (name, ops) in [
        ("curated", acr_core::OperatorSet::Curated),
        ("universal", acr_core::OperatorSet::Universal),
        ("both", acr_core::OperatorSet::Both),
    ] {
        let mut valids = Vec::new();
        let mut times = Vec::new();
        let mut repaired = 0usize;
        for (i, incident) in incidents.iter().enumerate() {
            let engine = RepairEngine::new(
                &net.topo,
                &net.spec,
                RepairConfig {
                    operators: ops,
                    seed: i as u64,
                    ..RepairConfig::default()
                },
            );
            let r = engine.repair(&incident.broken);
            if r.outcome.is_fixed() {
                repaired += 1;
                valids.push(r.validations);
                times.push(r.wall);
            }
        }
        valids.sort_unstable();
        times.sort();
        println!(
            "{:>10} {:>9} {:>11} {:>10}",
            name,
            format!("{repaired}/{}", incidents.len()),
            valids.get(valids.len() / 2).copied().unwrap_or(0),
            times
                .get(times.len() / 2)
                .map(|t| fmt_duration(*t))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // ---- 3. incremental vs full validation -----------------------------
    println!("\n=== validation ablation: incremental (DNA-style) vs full ===\n");
    // A larger network so the per-prefix decomposition has room to pay
    // off; candidates of two shapes: a localized prefix-list edit (the
    // common template output) and a session-shaping edit (conservative
    // full invalidation).
    let big = acr_bench::scaled_network(12);
    let rounds = 20u32;
    let local_patch = acr_cfg::Patch::single(Edit::Insert {
        router: acr_net_types::RouterId(0),
        index: big.cfg.device(acr_net_types::RouterId(0)).unwrap().len(),
        stmt: acr_cfg::Stmt::PrefixListEntry {
            list: "cust_space".into(),
            index: 90,
            action: acr_cfg::PlAction::Permit,
            prefix: "10.12.0.0/16".parse().unwrap(),
            ge: None,
            le: None,
        },
    });
    let session_patch = acr_cfg::Patch::single(Edit::Delete {
        router: acr_net_types::RouterId(0),
        index: 2,
    });
    for (label, patch) in [
        ("prefix-list edit", &local_patch),
        ("session edit", &session_patch),
    ] {
        let candidate = patch.apply_cloned(&big.cfg).unwrap();
        let verifier = Verifier::new(&big.topo, &big.spec);
        let t = Instant::now();
        for _ in 0..rounds {
            let _ = verifier.run_full(&candidate);
        }
        let full = t.elapsed() / rounds;
        let mut iv = IncrementalVerifier::new(&big.topo, &big.spec);
        iv.commit(&big.cfg);
        let t = Instant::now();
        for _ in 0..rounds {
            let _ = iv.verify_candidate(&candidate, patch);
        }
        let incremental = t.elapsed() / rounds;
        println!(
            "{label:>18}: full {} vs incremental {} ({:.1}x; {} of {} prefixes reused)",
            fmt_duration(full),
            fmt_duration(incremental),
            full.as_secs_f64() / incremental.as_secs_f64(),
            iv.last_stats().reused,
            iv.last_stats().reused + iv.last_stats().recomputed,
        );
    }
}
