//! **Static relevance gate A/B** — what the `acr-flow` candidate-pruning
//! gate saves, and the proof that it changes nothing else.
//!
//! Every incident of the 12-router WAN corpus is repaired twice with an
//! *explicit* gate setting — `flow: true` and `flow: false` in
//! [`RepairConfig`], so the ambient `ACR_FLOW` toggle cannot skew the
//! comparison. Three things are asserted:
//!
//! 1. **Transparency** — the semantic report signature (outcome + patch,
//!    fitness trajectory, generation/keep decisions; *not* the
//!    validated/cached/skipped accounting, which is exactly what the
//!    gate is supposed to move) is identical gate-on vs gate-off, per
//!    incident.
//! 2. **The gate fires** — total `validations_skipped` across the
//!    corpus is > 0: at least one candidate was proven invisible and
//!    served the base verification without simulation.
//! 3. **Work goes down** — gate-on total candidate simulations stay
//!    under the 144 the PR 1 baseline spent on this corpus, and never
//!    exceed the gate-off count.
//!
//! An FNV-1a digest of the signatures is printed as
//! `report_digest=<hex>` — taken from the pass matching the *ambient*
//! `ACR_FLOW`, so when `ci.sh` runs this binary twice (default, then
//! `ACR_FLOW=0`) equal digests prove two separate processes, one gated
//! and one not, computed the very same repairs. The same cross-process
//! pattern `exp_converge` and `exp_obs` use.
//!
//! Results land in `BENCH_flow.json`. The corpus is already CI-sized,
//! so `--smoke` is accepted but changes nothing — truncating it would
//! dodge the incidents where the gate actually fires.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_flow [-- --smoke]
//! ```

use acr_bench::{corpus, fmt_duration, json, rule, standard_network, write_bench};
use acr_core::{OperatorSet, RepairConfig, RepairEngine, RepairOutcome, RepairReport};
use std::time::{Duration, Instant};

/// The report fields the gate must not perturb: what was decided, not
/// what it cost. Validation/cache/skip counters are deliberately
/// excluded — moving those is the gate's entire job.
fn signature(label: &str, r: &RepairReport) -> String {
    let outcome = match &r.outcome {
        RepairOutcome::Fixed { patch, .. } => format!("fixed {patch}"),
        RepairOutcome::NoCandidates {
            best_patch,
            best_fitness,
        } => format!("no_candidates {best_fitness} {best_patch}"),
        RepairOutcome::IterationLimit {
            best_patch,
            best_fitness,
        } => format!("iteration_limit {best_fitness} {best_patch}"),
    };
    let iters: Vec<String> = r
        .iterations
        .iter()
        .map(|s| {
            format!(
                "{}:{}:{}:{}:{}",
                s.iteration, s.fitness, s.best_fitness, s.generated, s.kept
            )
        })
        .collect();
    format!(
        "{label} | {outcome} | init={} | {}",
        r.initial_failed,
        iters.join(";")
    )
}

/// FNV-1a 64 over the signature lines.
fn digest(signatures: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in signatures {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let net = standard_network();
    let incidents = corpus(&net, 12, 77);
    // What `..RepairConfig::default()` would have picked — the pass the
    // printed digest reflects, so ci.sh's ACR_FLOW=0 partner process
    // digests the *ungated* reports.
    let ambient_flow = RepairConfig::default().flow;

    let run = |broken: &acr_cfg::NetworkConfig, seed: u64, flow: bool| {
        let engine = RepairEngine::new(
            &net.topo,
            &net.spec,
            RepairConfig {
                seed,
                flow,
                operators: OperatorSet::Both,
                ..RepairConfig::default()
            },
        );
        let t = Instant::now();
        let report = engine.repair(broken);
        (report, t.elapsed())
    };

    let header = format!(
        "{:<26} {:>4} {:>5} {:>7} {:>7} {:>7} {:>7} {:>6}",
        "Incident", "Init", "Iters", "Val off", "Val on", "Skipped", "Cached", "Fixed"
    );
    println!(
        "12-incident WAN corpus, gate on vs off (explicit RepairConfig.flow; ambient ACR_FLOW -> {})\n",
        if ambient_flow { "on" } else { "off" }
    );
    println!("{header}");
    rule(header.len());

    let mut sig_on = Vec::new();
    let mut sig_off = Vec::new();
    let mut rows = Vec::new();
    let (mut total_on, mut total_off, mut total_skipped) = (0usize, 0usize, 0usize);
    let (mut wall_on, mut wall_off) = (Duration::ZERO, Duration::ZERO);
    let mut fixed = 0usize;
    for (i, inc) in incidents.iter().enumerate() {
        let label = format!("wan/{}", inc.fault);
        let (on, w_on) = run(&inc.broken, i as u64, true);
        let (off, w_off) = run(&inc.broken, i as u64, false);
        let (s_on, s_off) = (signature(&label, &on), signature(&label, &off));
        assert_eq!(
            s_on, s_off,
            "gate changed the computed repair on incident {i} ({label})"
        );
        assert_eq!(
            off.validations_skipped, 0,
            "gate-off run must never skip a validation ({label})"
        );
        assert!(
            on.validations <= off.validations,
            "gate-on must not simulate more candidates ({label}: {} vs {})",
            on.validations,
            off.validations
        );
        assert_eq!(
            on.validations + on.validations_skipped,
            off.validations + off.validations_cached - on.validations_cached,
            "every gate-off validation must be accounted for on ({label})"
        );
        total_on += on.validations;
        total_off += off.validations;
        total_skipped += on.validations_skipped;
        wall_on += w_on;
        wall_off += w_off;
        fixed += usize::from(on.outcome.is_fixed());
        println!(
            "{:<26} {:>4} {:>5} {:>7} {:>7} {:>7} {:>7} {:>6}",
            label,
            on.initial_failed,
            on.iterations.len(),
            off.validations,
            on.validations,
            on.validations_skipped,
            on.validations_cached,
            if on.outcome.is_fixed() { "yes" } else { "no" },
        );
        rows.push(
            json::Obj::new()
                .str("incident", &label)
                .int("initial_failed", on.initial_failed)
                .int("iterations", on.iterations.len())
                .int("validations_off", off.validations)
                .int("validations_on", on.validations)
                .int("validations_skipped", on.validations_skipped)
                .int("validations_cached", on.validations_cached)
                .bool("fixed", on.outcome.is_fixed())
                .build(),
        );
        sig_on.push(s_on);
        sig_off.push(s_off);
    }
    rule(header.len());

    // Acceptance: the gate fires, and gated work lands under the PR 1
    // baseline's 144 simulations for this corpus.
    assert!(
        total_skipped > 0,
        "acceptance: the gate never fired across the corpus"
    );
    assert!(
        total_on < 144,
        "acceptance: gate-on simulations must undercut the 144 baseline (got {total_on})"
    );
    assert!(total_on <= total_off, "gate-on did more work than gate-off");
    println!(
        "totals: {total_off} simulations ungated -> {total_on} gated ({total_skipped} skipped), \
         {fixed}/{} fixed; wall {} on vs {} off",
        incidents.len(),
        fmt_duration(wall_on),
        fmt_duration(wall_off),
    );
    println!("reports identical gate on/off on every incident; gate-on under the 144 baseline");

    // ci.sh compares this line between the default pass and ACR_FLOW=0.
    let d = digest(if ambient_flow { &sig_on } else { &sig_off });
    println!("report_digest={d:016x}");

    let path = write_bench("flow", |env| {
        env.bool("smoke", smoke)
            .bool("ambient_flow", ambient_flow)
            .int("incidents", incidents.len())
            .int("fixed", fixed)
            .int("validations_off", total_off)
            .int("validations_on", total_on)
            .int("validations_skipped", total_skipped)
            .int("baseline_pr1", 144)
            .num("wall_on_s", wall_on.as_secs_f64())
            .num("wall_off_s", wall_off.as_secs_f64())
            .str("report_digest", &format!("{d:016x}"))
            .raw("incidents_detail", &json::array(rows))
    });
    println!("wrote {path}");
}
