//! **Delta-compiled simulation** — what patch-aware model/session reuse
//! buys candidate validation.
//!
//! Part 1 is a construction microbenchmark: for every corpus incident,
//! build the candidate simulator the legacy way (`Simulator::new`, full
//! recompile + re-establish) and the delta way
//! (`Simulator::from_base_with_patch` against a shared [`CompiledBase`]),
//! on the 12-router standard WAN and the 72-router scaled WAN. Outcomes
//! are asserted field-for-field equal on every sample, so the speedup
//! column is a pure cost comparison.
//!
//! Part 2 is the end-to-end A/B: repair the 12-incident corpus with delta
//! construction on and off (memo-cache disabled so construction cost is
//! not masked) and compare wall time plus the compile/establish/simulate
//! stage split. Reports are asserted identical — the delta toggle only
//! changes how simulators are built, never what they compute.
//!
//! Results land in `BENCH_delta.json` for trend tracking. `--smoke` runs
//! a reduced matrix and is wired into `ci.sh` as a regression guard for
//! the delta/full equivalence.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_delta [-- --smoke]
//! ```

use acr_bench::{corpus, fmt_duration, json, rule, scaled_network, standard_network, write_bench};
use acr_core::{RepairConfig, RepairEngine, RepairReport};
use acr_sim::{CompiledBase, Simulator};
use acr_workloads::{GeneratedNetwork, Incident};
use std::time::{Duration, Instant};

/// One network's construction-microbench aggregate.
struct ConstructionRow {
    label: String,
    routers: usize,
    samples: usize,
    full: Duration,
    delta: Duration,
}

impl ConstructionRow {
    fn speedup(&self) -> f64 {
        self.full.as_secs_f64() / self.delta.as_secs_f64().max(1e-12)
    }
}

/// Times full vs delta construction over every incident of `net`,
/// asserting outcome equality on each sample.
fn construction_bench(
    label: &str,
    net: &GeneratedNetwork,
    incidents: &[Incident],
    reps: usize,
) -> ConstructionRow {
    let base = CompiledBase::new(&net.topo, &net.cfg);
    let mut full = Duration::ZERO;
    let mut delta = Duration::ZERO;
    let mut samples = 0usize;
    for incident in incidents {
        // The incident's own injection patch is the candidate shape the
        // repair loop validates: a small edit against a committed base.
        for _ in 0..reps {
            let t = Instant::now();
            let fresh = Simulator::new(&net.topo, &incident.broken);
            full += t.elapsed();
            let t = Instant::now();
            let patched = Simulator::from_base_with_patch(&base, &incident.broken, &incident.patch);
            delta += t.elapsed();
            samples += 1;
            assert_eq!(
                fresh.run(),
                patched.run(),
                "delta-built simulator diverged from full build on '{}'",
                incident.description
            );
        }
    }
    ConstructionRow {
        label: label.to_string(),
        routers: net.topo.len(),
        samples,
        full,
        delta,
    }
}

/// Repairs the corpus with delta construction forced on or off.
fn repair_corpus(
    net: &GeneratedNetwork,
    incidents: &[Incident],
    delta: bool,
) -> (Duration, Vec<RepairReport>) {
    let mut wall = Duration::ZERO;
    let mut reports = Vec::new();
    for (i, incident) in incidents.iter().enumerate() {
        let engine = RepairEngine::new(
            &net.topo,
            &net.spec,
            RepairConfig {
                seed: i as u64,
                threads: 1,
                cache: None, // memoization would mask construction cost
                delta,
                ..RepairConfig::default()
            },
        );
        let t = Instant::now();
        let report = engine.repair(&incident.broken);
        wall += t.elapsed();
        reports.push(report);
    }
    (wall, reports)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (incident_count, reps, nets): (usize, usize, Vec<(String, GeneratedNetwork)>) = if smoke {
        (3, 1, vec![("wan(4,8)".into(), standard_network())])
    } else {
        (
            12,
            5,
            vec![
                ("wan(4,8)".into(), standard_network()),
                ("wan(24,48)".into(), scaled_network(24)),
            ],
        )
    };

    // ---- Part 1: construction microbenchmark --------------------------
    let header = format!(
        "{:<12} {:>8} {:>8} {:>12} {:>12} {:>9}",
        "Network", "Routers", "Samples", "Full build", "Delta build", "Speedup"
    );
    println!("{header}");
    rule(header.len());
    let mut rows = Vec::new();
    for (label, net) in &nets {
        let incidents = corpus(net, incident_count, 77);
        let row = construction_bench(label, net, &incidents, reps);
        println!(
            "{:<12} {:>8} {:>8} {:>12} {:>12} {:>8.2}x",
            row.label,
            row.routers,
            row.samples,
            fmt_duration(row.full / row.samples as u32),
            fmt_duration(row.delta / row.samples as u32),
            row.speedup(),
        );
        rows.push(row);
    }
    rule(header.len());
    println!("per-sample construction cost; every sample asserted outcome-equal\n");

    // ---- Part 2: end-to-end repair A/B --------------------------------
    let net = &nets[0].1;
    let incidents = corpus(net, incident_count, 77);
    let (wall_on, on) = repair_corpus(net, &incidents, true);
    let (wall_off, off) = repair_corpus(net, &incidents, false);
    for (a, b) in on.iter().zip(&off) {
        assert_eq!(a.iterations, b.iterations, "delta toggle changed a repair");
        assert_eq!(a.validations, b.validations);
        assert_eq!(a.outcome.is_fixed(), b.outcome.is_fixed());
    }
    let sum = |rs: &[RepairReport]| {
        rs.iter().fold(
            (
                Duration::ZERO,
                Duration::ZERO,
                Duration::ZERO,
                Duration::ZERO,
            ),
            |acc, r| {
                (
                    acc.0 + r.stage.sim_compile,
                    acc.1 + r.stage.sim_establish,
                    acc.2 + r.stage.sim_simulate,
                    acc.3 + r.stage.sim_converge,
                )
            },
        )
    };
    let (c_on, e_on, s_on, v_on) = sum(&on);
    let (c_off, e_off, s_off, v_off) = sum(&off);
    let fixed = on.iter().filter(|r| r.outcome.is_fixed()).count();
    println!(
        "repair A/B on {} ({} incidents, threads=1, cache off, {fixed} fixed; reports identical):",
        nets[0].0,
        incidents.len()
    );
    println!(
        "  delta on : wall {:>8}  compile {:>8}  establish {:>8}  simulate {:>8} (converge {:>8})",
        fmt_duration(wall_on),
        fmt_duration(c_on),
        fmt_duration(e_on),
        fmt_duration(s_on),
        fmt_duration(v_on),
    );
    println!(
        "  delta off: wall {:>8}  compile {:>8}  establish {:>8}  simulate {:>8} (converge {:>8})",
        fmt_duration(wall_off),
        fmt_duration(c_off),
        fmt_duration(e_off),
        fmt_duration(s_off),
        fmt_duration(v_off),
    );
    println!(
        "  compile+establish reduced {:.2}x; end-to-end {:.2}x",
        (c_off + e_off).as_secs_f64() / (c_on + e_on).as_secs_f64().max(1e-9),
        wall_off.as_secs_f64() / wall_on.as_secs_f64().max(1e-9),
    );

    // ---- Machine-readable artifact ------------------------------------
    let construction = json::array(rows.iter().map(|r| {
        json::Obj::new()
            .str("network", &r.label)
            .int("routers", r.routers)
            .int("samples", r.samples)
            .num(
                "full_us_per_sample",
                r.full.as_secs_f64() * 1e6 / r.samples as f64,
            )
            .num(
                "delta_us_per_sample",
                r.delta.as_secs_f64() * 1e6 / r.samples as f64,
            )
            .num("speedup", r.speedup())
            .build()
    }));
    let repair = json::Obj::new()
        .str("network", &nets[0].0)
        .int("incidents", incidents.len())
        .int("fixed", fixed)
        .bool("reports_identical", true)
        .num("wall_on_s", wall_on.as_secs_f64())
        .num("wall_off_s", wall_off.as_secs_f64())
        .num("compile_establish_on_s", (c_on + e_on).as_secs_f64())
        .num("compile_establish_off_s", (c_off + e_off).as_secs_f64())
        .num("simulate_on_s", s_on.as_secs_f64())
        .num("simulate_off_s", s_off.as_secs_f64())
        .num("converge_on_s", v_on.as_secs_f64())
        .num("converge_off_s", v_off.as_secs_f64())
        .build();
    let path = write_bench("delta", |env| {
        env.bool("smoke", smoke)
            .raw("construction", &construction)
            .raw("repair_ab", &repair)
    });
    println!("\nwrote {path}");

    if !smoke {
        let scaled = rows.iter().find(|r| r.routers > 12);
        if let Some(r) = scaled {
            assert!(
                r.speedup() >= 2.0,
                "acceptance: delta construction must be >= 2x cheaper on the scaled WAN (got {:.2}x)",
                r.speedup()
            );
        }
    }
}
