//! **Scalability** (extension S1) — repair time vs network size,
//! ACR vs the MetaProv-like and AED-like baselines.
//!
//! One injected fault per network size; each method gets the same
//! verifier. The paper's qualitative claim: provenance is fast but may
//! regress, synthesis is correct but explodes, localize–fix–validate
//! stays both correct and tractable.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_scale
//! ```

use acr_baselines::{aed_repair, metaprov_repair, AedOutcome};
use acr_bench::{fmt_duration, rule, scaled_network};
use acr_core::{RepairConfig, RepairEngine, RepairOutcome};
use acr_workloads::{try_inject, FaultType};
use std::time::Instant;

fn main() {
    // A single-line fault (where provenance methods shine) and a
    // multi-line omission fault (where they cannot help and synthesis
    // exhausts) — the two regimes of the paper's §2.3 comparison.
    run_sweep(
        "extra redirect rule in PBR (single-line)",
        FaultType::ExtraPbrRedirect,
    );
    println!();
    run_sweep(
        "missing peer group (multi-line omission)",
        FaultType::MissingPeerGroup,
    );
    println!("\nREGR = the accepted provenance fix broke previously passing intents (§2.3);");
    println!("EXHAUSTED = the synthesis sweep ran out of validation budget (Figure 3b's blow-up).");
}

fn run_sweep(title: &str, fault: FaultType) {
    let header = format!(
        "{:>4} {:>6} | {:>16} {:>9} | {:>14} {:>9} | {:>16} {:>9}",
        "bb", "lines", "ACR", "time", "MetaProv", "time", "AED(300 budget)", "time"
    );
    println!("one `{title}` incident per size:\n");
    println!("{header}");
    rule(header.len());

    for n_bb in [2usize, 4, 8, 12, 16, 24] {
        let net = scaled_network(n_bb);
        let Some(incident) = try_inject(fault, &net, 0) else {
            continue;
        };

        // ACR.
        let t = Instant::now();
        let engine = RepairEngine::new(&net.topo, &net.spec, RepairConfig::default());
        let acr_report = engine.repair(&incident.broken);
        let acr_time = t.elapsed();
        let acr_out = match &acr_report.outcome {
            RepairOutcome::Fixed { patch, .. } => format!("fixed ({} edits)", patch.len()),
            RepairOutcome::NoCandidates { .. } => "no-candidates".into(),
            RepairOutcome::IterationLimit { .. } => "iter-limit".into(),
        };

        // MetaProv.
        let t = Instant::now();
        let mp = metaprov_repair(&net.topo, &net.spec, &incident.broken);
        let mp_time = t.elapsed();
        let mp_out = if mp.fixed_target {
            if mp.regressions > 0 {
                format!("fixed+{}REGR", mp.regressions)
            } else {
                "fixed".into()
            }
        } else {
            "unfixed".into()
        };

        // AED with a budget.
        let t = Instant::now();
        let aed = aed_repair(&net.topo, &net.spec, &incident.broken, 300);
        let aed_time = t.elapsed();
        let aed_out = match aed.outcome {
            AedOutcome::Fixed { .. } => format!("fixed ({} val)", aed.validations),
            AedOutcome::BudgetExhausted => format!("EXHAUSTED@{}", aed.validations),
            AedOutcome::SpaceExhausted => "space-exhausted".into(),
        };

        println!(
            "{:>4} {:>6} | {:>16} {:>9} | {:>14} {:>9} | {:>16} {:>9}",
            n_bb,
            incident.broken.total_lines(),
            acr_out,
            fmt_duration(acr_time),
            mp_out,
            fmt_duration(mp_time),
            aed_out,
            fmt_duration(aed_time),
        );
    }
    rule(header.len());
}
