//! **Table 1** — the misconfiguration taxonomy, reproduced.
//!
//! Samples an incident corpus at the paper's reported ratios, repairs
//! every incident with localize–fix–validate, and prints the table with
//! our measured columns next to the paper's: type, single/multi-line,
//! target ratio, sampled ratio, and ACR repair success.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_table1
//! ```

use acr_bench::{corpus, repair, rule, standard_network};
use acr_workloads::{FaultType, TABLE1};
use std::collections::BTreeMap;

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let net = standard_network();
    println!(
        "corpus: {count} incidents over a {}-router WAN ({} config lines, {} intents)\n",
        net.topo.len(),
        net.cfg.total_lines(),
        net.spec.len()
    );
    let incidents = corpus(&net, count, 2024);

    #[derive(Default)]
    struct Row {
        injected: usize,
        fixed: usize,
        iterations: Vec<usize>,
        validations: Vec<usize>,
    }
    let mut rows: BTreeMap<String, Row> = BTreeMap::new();

    for (i, incident) in incidents.iter().enumerate() {
        let report = repair(&net, incident, i as u64);
        let row = rows.entry(incident.fault.to_string()).or_default();
        row.injected += 1;
        if report.outcome.is_fixed() {
            row.fixed += 1;
            row.iterations.push(report.iteration_count());
            row.validations.push(report.validations);
        }
    }

    let header = format!(
        "{:<8} {:<42} {:<5} {:>6} {:>8} {:>7} {:>7} {:>7}",
        "Category", "Type", "Lines", "Paper%", "Sampled%", "Fixed", "MedIter", "MedVal"
    );
    println!("{header}");
    rule(header.len());
    let total = incidents.len().max(1);
    for (fault, paper_ratio) in TABLE1 {
        let name = fault.to_string();
        let row = rows.get(&name);
        let injected = row.map(|r| r.injected).unwrap_or(0);
        let fixed = row.map(|r| r.fixed).unwrap_or(0);
        let med = |v: &[usize]| -> String {
            if v.is_empty() {
                "-".into()
            } else {
                let mut s = v.to_vec();
                s.sort_unstable();
                s[s.len() / 2].to_string()
            }
        };
        println!(
            "{:<8} {:<42} {:<5} {:>6.1} {:>8.1} {:>7} {:>7} {:>7}",
            fault.category(),
            name,
            if fault.is_multi_line() { "M" } else { "S" },
            paper_ratio,
            100.0 * injected as f64 / total as f64,
            format!("{fixed}/{injected}"),
            row.map(|r| med(&r.iterations))
                .unwrap_or_else(|| "-".into()),
            row.map(|r| med(&r.validations))
                .unwrap_or_else(|| "-".into()),
        );
        let _ = FaultType::MissingRedistribution; // anchor the import
    }
    rule(header.len());
    let fixed: usize = rows.values().map(|r| r.fixed).sum();
    println!(
        "overall: {fixed}/{} repaired ({:.1}%)",
        incidents.len(),
        100.0 * fixed as f64 / total as f64
    );
    println!("\npaper context: misconfiguration caused 35.4% of incidents (vs hardware 34.6%,");
    println!("software 25.3%, vendor-specific 4.7%); Table 1 splits the misconfigured ones.");
}
