//! **Figure 1** — resolving-time distribution.
//!
//! The paper measures how long *operators* took to localize and repair
//! misconfiguration incidents: 16.6 % exceeded 30 minutes, the worst
//! exceeded 5 hours. We reproduce the figure's axes over the injected
//! incident corpus with ACR's *automatic* resolving time (localize + fix
//! + validate, wall clock) — the claimed payoff of automation.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin exp_fig1
//! ```

use acr_bench::{corpus, fmt_duration, percentile, repair, rule, standard_network};
use std::time::Duration;

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let net = standard_network();
    let incidents = corpus(&net, count, 7);
    println!(
        "corpus: {} incidents; measuring automatic resolving time\n",
        incidents.len()
    );

    let mut times: Vec<f64> = Vec::new();
    let mut unfixed = 0usize;
    for (i, incident) in incidents.iter().enumerate() {
        let report = repair(&net, incident, i as u64);
        if report.outcome.is_fixed() {
            times.push(report.wall.as_secs_f64());
        } else {
            unfixed += 1;
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let header = format!(
        "{:>22} {:>10} {:>10}",
        "resolved within", "ACR", "manual (paper)"
    );
    println!("{header}");
    rule(header.len());
    // ACR CDF at sub-second granularity; the paper's manual curve at its
    // reported anchor points.
    for (label, secs) in [
        ("10 ms", 0.01),
        ("100 ms", 0.1),
        ("1 s", 1.0),
        ("10 s", 10.0),
        ("60 s", 60.0),
    ] {
        let frac = times.iter().filter(|t| **t <= secs).count() as f64
            / (times.len() + unfixed).max(1) as f64;
        println!("{label:>22} {:>9.1}% {:>10}", frac * 100.0, "-");
    }
    for (label, manual) in [("30 min", "83.4%"), ("5 h", "~100%")] {
        println!(
            "{label:>22} {:>9.1}% {:>10}",
            100.0 * times.len() as f64 / (times.len() + unfixed).max(1) as f64,
            manual
        );
    }
    rule(header.len());
    println!(
        "ACR: median {}, p90 {}, max {}; {} of {} incidents auto-repaired",
        fmt_duration(Duration::from_secs_f64(percentile(&times, 50.0))),
        fmt_duration(Duration::from_secs_f64(percentile(&times, 90.0))),
        fmt_duration(Duration::from_secs_f64(percentile(&times, 100.0))),
        times.len(),
        times.len() + unfixed
    );
    println!("paper (manual): 16.6% of cases exceeded 30 minutes; the longest exceeded 5 hours.");
    println!("shape claim reproduced: automatic resolution sits orders of magnitude below the");
    println!("manual distribution's 30-minute tail.");
}
