//! Golden corpus regression pins.
//!
//! The scenario corpus is the substrate every strategy is benchmarked
//! on; if its content drifts (a generator tweak, an injection-order
//! change, a hashing refactor), cross-run comparisons silently stop
//! being apples-to-apples. These pins turn any drift into an explicit
//! test diff: the fix is to *review* the new digests and re-pin, never
//! to loosen the assertion.

use acr_scenarios::{compose, corpus, corpus_digest, Scenario, ScenarioFamily};
use acr_topo::gen;
use acr_workloads::{generate, GeneratedNetwork};

fn wan48() -> GeneratedNetwork {
    generate(&gen::wan(4, 8))
}

const CORPUS_SEED: u64 = 2024;

/// Pinned per-scenario digests for `corpus(wan(4,8), 2, 2024)`.
const GOLDEN: &[(&str, u64)] = &[
    ("multi-independent/0", 0xea5d55b241fb2a24),
    ("multi-independent/1", 0x2e6937c54ca76189),
    ("interacting/0", 0x515dc7827b21df35),
    ("interacting/1", 0x2a50e7cb2b5deed0),
    ("cascading/0", 0xfe89a4e8d0ef5a6a),
    ("cascading/1", 0xf13317377263276f),
    ("partial-observability/0", 0x8326f9058d49d827),
    ("partial-observability/1", 0xfb487605ae1759e0),
];

const GOLDEN_CORPUS_DIGEST: u64 = 0xb1380ed19022fbaf;

#[test]
fn corpus_digests_match_golden_pins() {
    let net = wan48();
    let scenarios = corpus(&net, 2, CORPUS_SEED);
    let got: Vec<(String, u64)> = scenarios
        .iter()
        .map(|s| (s.label.clone(), s.digest))
        .collect();
    let want: Vec<(String, u64)> = GOLDEN.iter().map(|(l, d)| (l.to_string(), *d)).collect();
    assert_eq!(
        got, want,
        "scenario corpus drifted — review the change, then re-pin"
    );
    assert_eq!(corpus_digest(&scenarios), GOLDEN_CORPUS_DIGEST);
}

#[test]
fn corpus_covers_every_family_twice() {
    let net = wan48();
    let scenarios = corpus(&net, 2, CORPUS_SEED);
    for family in ScenarioFamily::ALL {
        assert_eq!(
            scenarios.iter().filter(|s| s.family == family).count(),
            2,
            "family {family} under-filled at seed {CORPUS_SEED}"
        );
    }
}

#[test]
fn compose_digest_is_a_pure_function_of_seed() {
    let net = wan48();
    for family in ScenarioFamily::ALL {
        let found: Vec<Scenario> = (0..64u64)
            .filter_map(|s| compose(family, &net, s))
            .take(3)
            .collect();
        assert!(!found.is_empty(), "{family}: no composition in 64 seeds");
        for s in &found {
            let again = compose(family, &net, s.seed).expect("seed replays");
            assert_eq!(s.digest, again.digest, "{family} seed {} drifted", s.seed);
            assert_eq!(
                s.broken.fingerprint(),
                again.broken.fingerprint(),
                "{family} seed {}: broken config drifted",
                s.seed
            );
        }
    }
}

#[test]
fn digests_are_distinct_across_the_corpus() {
    let net = wan48();
    let scenarios = corpus(&net, 2, CORPUS_SEED);
    let mut seen = std::collections::BTreeSet::new();
    for s in &scenarios {
        assert!(seen.insert(s.digest), "{}: duplicate digest", s.label);
    }
}
