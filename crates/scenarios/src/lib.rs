//! # acr-scenarios
//!
//! Compositional incident generation. Table 1 of the paper injects nine
//! *single*-fault classes; production incidents compose. This crate
//! extends `acr-workloads` with four scenario families:
//!
//! - **Multi-independent** — two Table-1 faults at disjoint routers,
//!   the second injected into the first's already-broken config, with
//!   the combined failure surface strictly larger than the first
//!   fault's (each fault is independently observable).
//! - **Interacting** — fault pairs whose combination misbehaves in a
//!   way the parts do not: one fault *masking* another's violations,
//!   *flap-inducing* pairs (the combination oscillates, neither fault
//!   alone does), or *overlapping* pairs (both faults implicate the
//!   same property, so no single-site patch can clear it).
//! - **Cascading** — the second fault is planted at a router chosen
//!   from the first fault's *converged degraded state*: a device newly
//!   carrying rerouted traffic, or still on a failing test's path. The
//!   cascade site is a function of the converged network, not of the
//!   topology alone.
//! - **Partial observability** — a (possibly multi-fault) incident
//!   paired with a deterministic [`ObsMask`]: the repairing verifier
//!   sees only a sampled subset of the intent properties, with at least
//!   one failing property kept visible. What the mask hides, the
//!   harness can still judge under full observability.
//!
//! Everything is deterministic and seed-addressable: `compose(family,
//! net, seed)` always yields the same scenario, and every scenario
//! carries a stable FNV-1a [`Scenario::digest`] over its family, seed,
//! faults, rendered broken configs and mask — pinned by the golden
//! corpus test so silent drift becomes an explicit diff.

use acr_cfg::NetworkConfig;
use acr_net_types::{RouterId, SplitMix64};
use acr_verify::{ObsMask, Spec, Verification, Verifier};
use acr_workloads::{
    inject_at, try_inject, try_inject_into, FaultType, GeneratedNetwork, Incident, TABLE1,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The four compositional scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    MultiIndependent,
    Interacting,
    Cascading,
    PartialObservability,
}

impl ScenarioFamily {
    /// Every family, in corpus order.
    pub const ALL: [ScenarioFamily; 4] = [
        ScenarioFamily::MultiIndependent,
        ScenarioFamily::Interacting,
        ScenarioFamily::Cascading,
        ScenarioFamily::PartialObservability,
    ];

    /// Stable short tag (bench keys, report tags, digests).
    pub fn tag(self) -> &'static str {
        match self {
            ScenarioFamily::MultiIndependent => "multi-independent",
            ScenarioFamily::Interacting => "interacting",
            ScenarioFamily::Cascading => "cascading",
            ScenarioFamily::PartialObservability => "partial-observability",
        }
    }
}

impl fmt::Display for ScenarioFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// How an interacting pair interacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interaction {
    /// The second fault hides at least one of the first's violations.
    Masking,
    /// The combination fails to converge; each fault alone converges.
    FlapInducing,
    /// Both faults (at disjoint routers) implicate a common property —
    /// no single-site patch can clear it.
    Overlapping,
}

impl Interaction {
    pub fn tag(self) -> &'static str {
        match self {
            Interaction::Masking => "masking",
            Interaction::FlapInducing => "flap-inducing",
            Interaction::Overlapping => "overlapping",
        }
    }
}

/// One composed incident scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub family: ScenarioFamily,
    /// The seed `compose` was called with — replaying it regenerates
    /// this exact scenario.
    pub seed: u64,
    /// Corpus label (`family/index`), assigned by [`corpus`].
    pub label: String,
    /// The injected fault classes, in injection order.
    pub faults: Vec<FaultType>,
    /// Per-injection human-readable summaries.
    pub descriptions: Vec<String>,
    /// The composed misconfigured network.
    pub broken: NetworkConfig,
    /// Properties failing under *full* observability.
    pub failing_properties: BTreeSet<String>,
    /// Failing tests visible to the scenario's verifier (masked count
    /// for partial-observability scenarios, full count otherwise).
    pub violations: usize,
    /// Set for the interacting family.
    pub interaction: Option<Interaction>,
    /// Set for the partial-observability family.
    pub mask: Option<ObsMask>,
    /// Stable FNV-1a digest of the scenario's content.
    pub digest: u64,
}

impl Scenario {
    /// The spec this scenario's repairing verifier sees: the mask's
    /// restriction for partial-observability scenarios, `full` otherwise.
    pub fn visible_spec(&self, full: &Spec) -> Spec {
        match &self.mask {
            Some(m) => m.restrict(full),
            None => full.clone(),
        }
    }

    /// The report tags a repair run on this scenario should carry.
    pub fn tags(&self) -> Vec<String> {
        let mut tags = vec![format!("family:{}", self.family.tag())];
        if let Some(i) = self.interaction {
            tags.push(format!("interaction:{}", i.tag()));
        }
        tags.push(format!("scenario:{}", self.label));
        tags
    }
}

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// Folds `bytes` into an FNV-1a 64 accumulator.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The stable digest of a scenario's content: family, seed, fault
/// classes, every rendered device config, the mask's visible indices
/// and the interaction kind. Rendered text (not fingerprints) so the
/// digest is a function of the artifact itself, stable across refactors
/// of internal hashing.
fn digest_of(
    family: ScenarioFamily,
    seed: u64,
    faults: &[FaultType],
    broken: &NetworkConfig,
    mask: Option<&ObsMask>,
    interaction: Option<Interaction>,
) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, family.tag().as_bytes());
    h = fnv1a(h, &seed.to_le_bytes());
    for f in faults {
        h = fnv1a(h, f.to_string().as_bytes());
    }
    for (r, d) in broken.devices() {
        h = fnv1a(h, &r.0.to_le_bytes());
        h = fnv1a(h, d.to_text().as_bytes());
    }
    if let Some(m) = mask {
        for i in m.visible() {
            h = fnv1a(h, &(i as u64).to_le_bytes());
        }
    }
    if let Some(i) = interaction {
        h = fnv1a(h, i.tag().as_bytes());
    }
    h
}

/// Full verification of `cfg` against the network's true spec.
fn verify(net: &GeneratedNetwork, cfg: &NetworkConfig) -> Verification {
    Verifier::new(&net.topo, &net.spec).run_full(cfg).0
}

/// Names of failing properties.
fn failing_props(v: &Verification) -> BTreeSet<String> {
    v.records
        .iter()
        .filter(|r| !r.passed)
        .map(|r| r.property.clone())
        .collect()
}

/// Indices (into `spec.properties`) of failing properties.
fn failing_indices(spec: &Spec, v: &Verification) -> BTreeSet<usize> {
    let by_name: BTreeMap<&str, usize> = spec
        .properties
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();
    v.records
        .iter()
        .filter(|r| !r.passed)
        .filter_map(|r| by_name.get(r.property.as_str()).copied())
        .collect()
}

/// Whether two incidents touch disjoint router sets.
fn disjoint(a: &Incident, b: &Incident) -> bool {
    let ra = a.patch.routers();
    b.patch.routers().iter().all(|r| !ra.contains(r))
}

/// A Table-1 fault class drawn uniformly.
fn pick_fault(rng: &mut SplitMix64) -> FaultType {
    TABLE1[rng.index(TABLE1.len())].0
}

#[allow(clippy::too_many_arguments)]
fn build(
    family: ScenarioFamily,
    seed: u64,
    faults: Vec<FaultType>,
    descriptions: Vec<String>,
    broken: NetworkConfig,
    full_verification: &Verification,
    visible_violations: usize,
    interaction: Option<Interaction>,
    mask: Option<ObsMask>,
) -> Scenario {
    let digest = digest_of(family, seed, &faults, &broken, mask.as_ref(), interaction);
    Scenario {
        family,
        seed,
        label: format!("{}/seed{seed:x}", family.tag()),
        faults,
        descriptions,
        broken,
        failing_properties: failing_props(full_verification),
        violations: visible_violations,
        interaction,
        mask,
        digest,
    }
}

/// Composes one scenario of `family` from `seed`. Deterministic; `None`
/// when the bounded site/fault search finds no composition satisfying
/// the family's acceptance criteria on this network.
pub fn compose(family: ScenarioFamily, net: &GeneratedNetwork, seed: u64) -> Option<Scenario> {
    match family {
        ScenarioFamily::MultiIndependent => multi_independent(net, seed),
        ScenarioFamily::Interacting => interacting(net, seed),
        ScenarioFamily::Cascading => cascading(net, seed),
        ScenarioFamily::PartialObservability => partial_observability(net, seed),
    }
}

/// Two faults at disjoint routers, the second injected into the first's
/// broken config, with a strictly larger failure surface than the first
/// fault alone (so neither fault is latent or masked).
fn multi_independent(net: &GeneratedNetwork, seed: u64) -> Option<Scenario> {
    let mut rng = SplitMix64::new(seed ^ 0x6d69); // "mi"
    for _ in 0..16 {
        let (fa, fb) = (pick_fault(&mut rng), pick_fault(&mut rng));
        let Some(a) = try_inject(fa, net, rng.next_u64()) else {
            continue;
        };
        let Some(b) = try_inject_into(fb, net, &a.broken, rng.next_u64()) else {
            continue;
        };
        if !disjoint(&a, &b) {
            continue;
        }
        let va = verify(net, &a.broken);
        let vb = verify(net, &b.broken);
        let (fail_a, fail_ab) = (failing_props(&va), failing_props(&vb));
        if !fail_a.is_subset(&fail_ab) || fail_ab.len() == fail_a.len() {
            continue; // the pair masks or adds nothing — not independent
        }
        let violations = vb.failed_count();
        return Some(build(
            ScenarioFamily::MultiIndependent,
            seed,
            vec![fa, fb],
            vec![a.description, b.description],
            b.broken,
            &vb,
            violations,
            None,
            None,
        ));
    }
    None
}

/// Fault pairs whose combination misbehaves in a way the parts do not:
/// flap-inducing, masking, or overlapping (see [`Interaction`]).
fn interacting(net: &GeneratedNetwork, seed: u64) -> Option<Scenario> {
    let mut rng = SplitMix64::new(seed ^ 0x6978); // "ix"
    for _ in 0..24 {
        let (fa, fb) = (pick_fault(&mut rng), pick_fault(&mut rng));
        let Some(a) = try_inject(fa, net, rng.next_u64()) else {
            continue;
        };
        let Some(b) = try_inject_into(fb, net, &a.broken, rng.next_u64()) else {
            continue;
        };
        let va = verify(net, &a.broken);
        let vb = verify(net, &b.broken);
        let (fail_a, fail_ab) = (failing_props(&va), failing_props(&vb));
        if fail_ab.is_empty() {
            continue;
        }
        let interaction = if va.flapping.is_empty() && !vb.flapping.is_empty() {
            Some(Interaction::FlapInducing)
        } else if fail_a.iter().any(|p| !fail_ab.contains(p)) {
            Some(Interaction::Masking)
        } else if disjoint(&a, &b) {
            // Overlapping: the second fault *alone* (same site, pristine
            // config) already implicates a property the first breaks —
            // clearing that property needs both sites patched.
            b.patch
                .routers()
                .first()
                .and_then(|r| inject_at(fb, net, &net.cfg, *r))
                .filter(|b_alone| {
                    let vba = verify(net, &b_alone.broken);
                    failing_props(&vba).intersection(&fail_a).next().is_some()
                })
                .map(|_| Interaction::Overlapping)
        } else {
            None
        };
        let Some(kind) = interaction else { continue };
        let violations = vb.failed_count();
        return Some(build(
            ScenarioFamily::Interacting,
            seed,
            vec![fa, fb],
            vec![a.description, b.description],
            b.broken,
            &vb,
            violations,
            Some(kind),
            None,
        ));
    }
    None
}

/// The second fault is planted where the first fault's *converged
/// degraded state* put traffic: a router newly on some test's forwarding
/// path (rerouted through it), or still on a failing test's path.
fn cascading(net: &GeneratedNetwork, seed: u64) -> Option<Scenario> {
    let mut rng = SplitMix64::new(seed ^ 0x6373); // "cs"
    let intended = verify(net, &net.cfg);
    for _ in 0..16 {
        let fa = pick_fault(&mut rng);
        let Some(a) = try_inject(fa, net, rng.next_u64()) else {
            continue;
        };
        let va = verify(net, &a.broken);
        // Cascade sites, discovery order: rerouted-through routers first
        // (per test, routers on the degraded path but not the intended
        // one), then routers still carrying failing traffic.
        let mut sites: Vec<RouterId> = Vec::new();
        for (db, di) in va.records.iter().zip(intended.records.iter()) {
            for r in &db.path {
                if !di.path.contains(r) && !sites.contains(r) {
                    sites.push(*r);
                }
            }
        }
        for rec in va.records.iter().filter(|r| !r.passed) {
            for r in &rec.path {
                if !sites.contains(r) {
                    sites.push(*r);
                }
            }
        }
        let first_sites: Vec<RouterId> = a.patch.routers();
        sites.retain(|r| !first_sites.contains(r));
        if sites.is_empty() {
            continue;
        }
        let fb = pick_fault(&mut rng);
        let fail_a = failing_props(&va);
        let start = rng.index(sites.len());
        for k in 0..sites.len() {
            let site = sites[(start + k) % sites.len()];
            let Some(b) = inject_at(fb, net, &a.broken, site) else {
                continue;
            };
            let vb = verify(net, &b.broken);
            if failing_props(&vb) == fail_a {
                continue; // the cascade must change the failure surface
            }
            let site_name = net.topo.router(site).name.clone();
            let violations = vb.failed_count();
            return Some(build(
                ScenarioFamily::Cascading,
                seed,
                vec![fa, fb],
                vec![
                    a.description,
                    format!(
                        "cascade at {site_name} (degraded-path router): {}",
                        b.description
                    ),
                ],
                b.broken,
                &vb,
                violations,
                None,
                None,
            ));
        }
    }
    None
}

/// A (possibly two-fault) incident under a deterministic observability
/// mask that hides at least one property while keeping at least one
/// *failing* property visible.
fn partial_observability(net: &GeneratedNetwork, seed: u64) -> Option<Scenario> {
    let mut rng = SplitMix64::new(seed ^ 0x706f); // "po"
    for _ in 0..16 {
        let fa = pick_fault(&mut rng);
        let Some(a) = try_inject(fa, net, rng.next_u64()) else {
            continue;
        };
        // Half the scenarios layer a second independent fault under the
        // mask — diagnosing *two* faults from a partial view.
        let fb = pick_fault(&mut rng);
        let second = if rng.next_u64().is_multiple_of(2) {
            try_inject_into(fb, net, &a.broken, rng.next_u64()).filter(|b| disjoint(&a, b))
        } else {
            None
        };
        let (broken, faults, descriptions) = match second {
            Some(b) => (
                b.broken,
                vec![a.fault, b.fault],
                vec![a.description, b.description],
            ),
            None => (a.broken, vec![a.fault], vec![a.description]),
        };
        let v = verify(net, &broken);
        let fail_idx = failing_indices(&net.spec, &v);
        let Some(&first_failing) = fail_idx.iter().next() else {
            continue;
        };
        let mut mask = ObsMask::sample(&net.spec, 60, rng.next_u64());
        mask.ensure_visible(first_failing);
        if mask.hidden_count() == 0 {
            continue; // degenerate draw — full observability is no scenario
        }
        // Visible violations: failing tests of visible properties only.
        let visible_spec = mask.restrict(&net.spec);
        let vv = Verifier::new(&net.topo, &visible_spec).run_full(&broken).0;
        let violations = vv.failed_count();
        if violations == 0 {
            continue;
        }
        return Some(build(
            ScenarioFamily::PartialObservability,
            seed,
            faults,
            descriptions,
            broken,
            &v,
            violations,
            None,
            Some(mask),
        ));
    }
    None
}

/// Derives the seed for a family's `sub`-th composition attempt.
fn scenario_seed(seed: u64, family: ScenarioFamily, sub: u64) -> u64 {
    let salt = fnv1a(FNV_OFFSET, family.tag().as_bytes());
    SplitMix64::new(seed ^ salt ^ sub.wrapping_mul(0x9e3779b97f4a7c15)).next_u64()
}

/// Generates a corpus of up to `per_family` scenarios for *each* family,
/// deterministically from `seed`, deduplicated by digest. Labels are
/// `family/index`.
pub fn corpus(net: &GeneratedNetwork, per_family: usize, seed: u64) -> Vec<Scenario> {
    let mut out = Vec::new();
    for family in ScenarioFamily::ALL {
        let mut digests = BTreeSet::new();
        let (mut found, mut sub) = (0usize, 0u64);
        while found < per_family && sub < per_family as u64 * 24 {
            let s = scenario_seed(seed, family, sub);
            sub += 1;
            let Some(mut sc) = compose(family, net, s) else {
                continue;
            };
            if !digests.insert(sc.digest) {
                continue;
            }
            sc.label = format!("{}/{found}", family.tag());
            out.push(sc);
            found += 1;
        }
    }
    out
}

/// A single digest over a whole corpus (labels + scenario digests) —
/// what `ci.sh` compares across processes and toggles.
pub fn corpus_digest(scenarios: &[Scenario]) -> u64 {
    let mut h = FNV_OFFSET;
    for s in scenarios {
        h = fnv1a(h, s.label.as_bytes());
        h = fnv1a(h, &s.digest.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_topo::gen;
    use acr_workloads::generate;

    fn wan48() -> GeneratedNetwork {
        generate(&gen::wan(4, 8))
    }

    #[test]
    fn every_family_composes_on_the_standard_wan() {
        let net = wan48();
        let corpus = corpus(&net, 2, 42);
        for family in ScenarioFamily::ALL {
            let n = corpus.iter().filter(|s| s.family == family).count();
            assert!(n >= 1, "family {family} produced no scenario");
        }
        for s in &corpus {
            assert!(s.violations >= 1, "{}: no visible violations", s.label);
            assert!(
                !s.failing_properties.is_empty(),
                "{}: no failing properties",
                s.label
            );
            assert!(!s.faults.is_empty());
            assert_eq!(s.faults.len(), s.descriptions.len());
        }
    }

    #[test]
    fn composition_is_deterministic() {
        let net = wan48();
        let a = corpus(&net, 2, 7);
        let b = corpus(&net, 2, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.digest, y.digest, "{} drifted", x.label);
            assert_eq!(x.label, y.label);
            assert_eq!(
                x.broken.fingerprint(),
                y.broken.fingerprint(),
                "{}: config drifted",
                x.label
            );
        }
        assert_eq!(corpus_digest(&a), corpus_digest(&b));
    }

    #[test]
    fn multi_independent_faults_are_disjoint_and_additive() {
        let net = wan48();
        let sc = (0..32u64)
            .find_map(|s| compose(ScenarioFamily::MultiIndependent, &net, s))
            .expect("some seed composes");
        assert_eq!(sc.faults.len(), 2);
        assert!(sc.failing_properties.len() >= 2 || sc.violations >= 2);
    }

    #[test]
    fn partial_observability_masks_but_keeps_a_failing_property() {
        let net = wan48();
        let sc = (0..32u64)
            .find_map(|s| compose(ScenarioFamily::PartialObservability, &net, s))
            .expect("some seed composes");
        let mask = sc.mask.as_ref().expect("po scenarios carry a mask");
        assert!(mask.hidden_count() >= 1);
        assert!(sc.violations >= 1, "a failing property must stay visible");
        let visible = sc.visible_spec(&net.spec);
        assert_eq!(visible.len(), mask.visible_count());
    }

    #[test]
    fn interacting_scenarios_carry_their_kind() {
        let net = wan48();
        let sc = (0..48u64)
            .find_map(|s| compose(ScenarioFamily::Interacting, &net, s))
            .expect("some seed composes");
        assert!(sc.interaction.is_some());
        assert!(sc.tags().iter().any(|t| t.starts_with("interaction:")));
    }
}
