//! Property-based tests for the foundation types.
//!
//! The trie is checked against a naive linear-scan longest-prefix-match
//! model, and prefixes/paths against their algebraic laws.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr_net_types::{AsPath, Asn, HeaderSpace, Ipv4Addr, Prefix, PrefixTrie};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(Ipv4Addr(addr), len))
}

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr)
}

/// Naive LPM over a list — the reference model for the trie.
fn naive_lpm(entries: &[(Prefix, u32)], addr: Ipv4Addr) -> Option<(Prefix, u32)> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .copied()
}

proptest! {
    #[test]
    fn prefix_parse_display_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_its_hosts(p in arb_prefix(), i in any::<u32>()) {
        prop_assert!(p.contains(p.host(i)));
    }

    #[test]
    fn covers_implies_contains_base(a in arb_prefix(), b in arb_prefix()) {
        if a.covers(b) {
            prop_assert!(a.contains(b.addr()));
            prop_assert!(a.len() <= b.len());
        }
    }

    #[test]
    fn parent_covers_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.covers(p));
        }
        if let Some((l, r)) = p.children() {
            prop_assert!(p.covers(l) && p.covers(r));
            prop_assert!(!l.overlaps(r));
        }
    }

    #[test]
    fn trie_matches_naive_lpm(
        entries in proptest::collection::vec((arb_prefix(), any::<u32>()), 0..40),
        addrs in proptest::collection::vec(arb_addr(), 1..20),
    ) {
        // Deduplicate by prefix: last writer wins in both models.
        let mut dedup: Vec<(Prefix, u32)> = Vec::new();
        for (p, v) in &entries {
            if let Some(slot) = dedup.iter_mut().find(|(q, _)| q == p) {
                slot.1 = *v;
            } else {
                dedup.push((*p, *v));
            }
        }
        let trie: PrefixTrie<u32> = dedup.iter().copied().collect();
        prop_assert_eq!(trie.len(), dedup.len());
        for addr in addrs {
            let got = trie.lookup(addr).map(|(p, v)| (p, *v));
            prop_assert_eq!(got, naive_lpm(&dedup, addr));
        }
    }

    #[test]
    fn trie_remove_restores_shadowed(
        a in arb_prefix(),
        addrs in proptest::collection::vec(arb_addr(), 1..10),
    ) {
        // Insert a prefix and its parent; removing the child must expose
        // the parent for every address the child used to win.
        if let Some(parent) = a.parent() {
            let mut trie = PrefixTrie::new();
            trie.insert(parent, 1u32);
            trie.insert(a, 2u32);
            trie.remove(a);
            for addr in addrs {
                if parent.contains(addr) {
                    prop_assert_eq!(trie.lookup(addr).map(|(_, v)| *v), Some(1));
                }
            }
        }
    }

    #[test]
    fn aspath_prepend_then_len(hops in proptest::collection::vec(1u32..65000, 0..8), local in 1u32..65000) {
        let path = AsPath::from_hops(hops.iter().copied().map(Asn));
        let out = path.prepend(Asn(local));
        prop_assert_eq!(out.len(), path.len() + 1);
        prop_assert!(out.contains(Asn(local)));
        prop_assert_eq!(out.hops()[0], Asn(local));
        // Overwrite always yields length 1 regardless of history.
        prop_assert_eq!(AsPath::overwrite(Asn(local)).len(), 1);
    }

    #[test]
    fn headerspace_samples_are_members(src in arb_prefix(), dst in arb_prefix(), i in any::<u32>()) {
        let hs = HeaderSpace::between(src, dst);
        let f = hs.sample(i);
        prop_assert!(hs.contains(&f));
    }
}
