//! A small deterministic PRNG (SplitMix64).
//!
//! The repair engine and workload injectors only need reproducible,
//! well-mixed draws keyed by an explicit `seed` field — not cryptographic
//! quality — so a vendored SplitMix64 keeps the workspace free of external
//! crates while preserving determinism: the same seed always yields the
//! same stream on every platform.

/// Deterministic 64-bit PRNG with the SplitMix64 update function.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the small ranges used here and determinism is all that matters.
        let x = self.next_u64() as u128;
        ((x * n as u128) >> 64) as usize
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits into the mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn index_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for n in 1usize..40 {
            for _ in 0..50 {
                assert!(r.index(n) < n);
            }
        }
        assert_eq!(r.index(0), 0);
    }

    #[test]
    fn index_covers_small_ranges() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
