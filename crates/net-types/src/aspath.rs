//! BGP AS numbers and AS paths.
//!
//! [`AsPath::overwrite`] models the vendor `apply as-path overwrite`
//! action from the paper's Figure 2b: it *replaces* the entire path with
//! the local AS number, shortening the path and thereby raising the
//! route's preference — the exact mechanism behind the flapping incident.

use std::fmt;
use std::sync::Arc;

/// A BGP autonomous-system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A BGP AS_PATH, most-recent hop first (index 0 is the neighbor that last
/// exported the route).
///
/// Paths are immutable once built (every "mutator" returns a new path), so
/// the hops live behind an `Arc`: cloning a path — which the simulator does
/// on every policy evaluation when it copies a route — is a refcount bump,
/// not a heap allocation. `Eq`/`Ord`/`Hash` all delegate to the hop slice,
/// so semantics are identical to a `Vec`-backed path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsPath(Arc<[Asn]>);

impl Default for AsPath {
    fn default() -> Self {
        AsPath::empty()
    }
}

impl AsPath {
    /// The empty path (a locally originated route).
    pub fn empty() -> Self {
        AsPath(Arc::from([]))
    }

    /// A path consisting of the single AS `asn`.
    pub fn origin(asn: Asn) -> Self {
        AsPath(Arc::from([asn]))
    }

    /// Builds a path from hops, most recent first.
    pub fn from_hops(hops: impl IntoIterator<Item = Asn>) -> Self {
        AsPath(hops.into_iter().collect())
    }

    /// Path length — the BGP best-path comparison key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for locally originated routes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `asn` appears anywhere in the path (BGP loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// The standard export action: prepend the local AS once.
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut hops = Vec::with_capacity(self.0.len() + 1);
        hops.push(asn);
        hops.extend_from_slice(&self.0);
        AsPath(hops.into())
    }

    /// Prepend the local AS `count` times (route-policy `as-path prepend`).
    pub fn prepend_n(&self, asn: Asn, count: usize) -> AsPath {
        let mut hops = Vec::with_capacity(self.0.len() + count);
        hops.extend(std::iter::repeat_n(asn, count));
        hops.extend_from_slice(&self.0);
        AsPath(hops.into())
    }

    /// The `as-path overwrite` action: replace the whole path with the
    /// local AS. This defeats AS-path loop prevention and shortens the
    /// path, which is what makes the Figure 2 incident possible.
    pub fn overwrite(asn: Asn) -> AsPath {
        AsPath(Arc::from([asn]))
    }

    /// The hops, most recent first.
    pub fn hops(&self) -> &[Asn] {
        &self.0
    }

    /// The originating AS (last hop), if any.
    pub fn origin_as(&self) -> Option<Asn> {
        self.0.last().copied()
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "[]");
        }
        write!(f, "[")?;
        for (i, hop) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", hop.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_grows_front() {
        let p = AsPath::origin(Asn(100)).prepend(Asn(200)).prepend(Asn(300));
        assert_eq!(p.hops(), &[Asn(300), Asn(200), Asn(100)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.origin_as(), Some(Asn(100)));
    }

    #[test]
    fn prepend_n_repeats() {
        let p = AsPath::origin(Asn(1)).prepend_n(Asn(2), 3);
        assert_eq!(p.hops(), &[Asn(2), Asn(2), Asn(2), Asn(1)]);
    }

    #[test]
    fn overwrite_discards_history() {
        let long = AsPath::from_hops([Asn(1), Asn(2), Asn(3)]);
        let short = AsPath::overwrite(Asn(9));
        assert_eq!(short.len(), 1);
        assert!(short.len() < long.len());
        assert!(
            !short.contains(Asn(1)),
            "overwrite must erase loop evidence"
        );
    }

    #[test]
    fn loop_detection_via_contains() {
        let p = AsPath::from_hops([Asn(10), Asn(20)]);
        assert!(p.contains(Asn(20)));
        assert!(!p.contains(Asn(30)));
    }

    #[test]
    fn empty_path_is_local() {
        let p = AsPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.origin_as(), None);
        assert_eq!(p.to_string(), "[]");
    }

    #[test]
    fn display_format() {
        assert_eq!(
            AsPath::from_hops([Asn(65001), Asn(65002)]).to_string(),
            "[65001 65002]"
        );
    }
}
