//! Test packets (flows).
//!
//! The paper's §4.1 generates the SBFL test suite by sampling one packet
//! per intent from that intent's header space; a [`Flow`] is that sampled
//! packet: a classic 5-tuple.

use crate::addr::Ipv4Addr;
use std::fmt;

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// Any protocol — used by specs that only constrain addresses.
    Any,
    Tcp,
    Udp,
    Icmp,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::Any => "any",
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
            Protocol::Icmp => "icmp",
        };
        f.write_str(s)
    }
}

/// A concrete test packet: the 5-tuple that the verifier injects and
/// forwards through simulated FIBs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flow {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub proto: Protocol,
    pub src_port: u16,
    pub dst_port: u16,
}

impl Flow {
    /// A flow constrained only by source and destination address.
    pub fn ip(src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        Flow {
            src,
            dst,
            proto: Protocol::Any,
            src_port: 0,
            dst_port: 0,
        }
    }

    /// A TCP flow with explicit ports.
    pub fn tcp(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16) -> Self {
        Flow {
            src,
            dst,
            proto: Protocol::Tcp,
            src_port,
            dst_port,
        }
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src, self.src_port, self.dst, self.dst_port, self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = Ipv4Addr::new(1, 1, 1, 1);
        let b = Ipv4Addr::new(2, 2, 2, 2);
        let f = Flow::ip(a, b);
        assert_eq!(f.proto, Protocol::Any);
        let t = Flow::tcp(a, 1234, b, 80);
        assert_eq!(t.proto, Protocol::Tcp);
        assert_eq!(t.dst_port, 80);
    }

    #[test]
    fn display_is_informative() {
        let f = Flow::tcp(Ipv4Addr::new(1, 1, 1, 1), 10, Ipv4Addr::new(2, 2, 2, 2), 80);
        assert_eq!(f.to_string(), "1.1.1.1:10 -> 2.2.2.2:80 (tcp)");
    }
}
