//! A binary prefix trie with longest-prefix-match lookup.
//!
//! This is the FIB data structure used by the simulator's forwarding walk
//! and by the verifier when it intersects header spaces with routing state.
//! The design goal is correctness and predictability rather than raw speed:
//! nodes are arena-allocated in a `Vec`, there is no `unsafe`, and removal
//! leaves tombstones that are reused on the next insert along the same path.

use crate::prefix::Prefix;
use crate::Ipv4Addr;

/// A map from [`Prefix`] to `T` supporting exact and longest-prefix-match
/// queries.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<(Prefix, T)>,
    children: [Option<usize>; 2],
}

impl<T> Node<T> {
    fn empty() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::empty()],
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` under `prefix`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let branch = prefix.bit(depth) as usize;
            node = match self.nodes[node].children[branch] {
                Some(child) => child,
                None => {
                    let child = self.nodes.len();
                    self.nodes.push(Node::empty());
                    self.nodes[node].children[branch] = Some(child);
                    child
                }
            };
        }
        let old = self.nodes[node].value.replace((prefix, value));
        if old.is_none() {
            self.len += 1;
        }
        old.map(|(_, v)| v)
    }

    /// Removes `prefix`, returning its value if present.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let node = self.locate(prefix)?;
        let old = self.nodes[node].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old.map(|(_, v)| v)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let node = self.locate(prefix)?;
        self.nodes[node].value.as_ref().map(|(_, v)| v)
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        let node = self.locate(prefix)?;
        self.nodes[node].value.as_mut().map(|(_, v)| v)
    }

    fn locate(&self, prefix: Prefix) -> Option<usize> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            node = self.nodes[node].children[prefix.bit(depth) as usize]?;
        }
        Some(node)
    }

    /// Longest-prefix-match: the most specific stored prefix containing
    /// `addr`, together with its value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Prefix, &T)> {
        let mut node = 0usize;
        let mut best: Option<(Prefix, &T)> = None;
        for depth in 0..=32u8 {
            if let Some((p, v)) = &self.nodes[node].value {
                best = Some((*p, v));
            }
            if depth == 32 {
                break;
            }
            let branch = ((addr.0 >> (31 - depth as u32)) & 1) as usize;
            match self.nodes[node].children[branch] {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// All stored prefixes covered by `prefix` (including itself),
    /// in trie order.
    pub fn covered_by(&self, prefix: Prefix) -> Vec<(Prefix, &T)> {
        let mut out = Vec::new();
        if let Some(root) = self.locate(prefix) {
            self.collect(root, &mut out);
        }
        out
    }

    fn collect<'a>(&'a self, node: usize, out: &mut Vec<(Prefix, &'a T)>) {
        if let Some((p, v)) = &self.nodes[node].value {
            out.push((*p, v));
        }
        for child in self.nodes[node].children.into_iter().flatten() {
            self.collect(child, out);
        }
    }

    /// Iterates over all `(prefix, value)` pairs in trie (DFS) order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        self.collect(0, &mut out);
        out.into_iter()
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&"b"));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some("b"));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let t: PrefixTrie<&str> = [
            (p("0.0.0.0/0"), "default"),
            (p("10.0.0.0/8"), "eight"),
            (p("10.0.0.0/16"), "sixteen"),
        ]
        .into_iter()
        .collect();
        let hit = |a: &str| t.lookup(a.parse().unwrap()).map(|(_, v)| *v);
        assert_eq!(hit("10.0.1.1"), Some("sixteen"));
        assert_eq!(hit("10.9.0.1"), Some("eight"));
        assert_eq!(hit("11.0.0.1"), Some("default"));
    }

    #[test]
    fn lpm_without_default_misses() {
        let t: PrefixTrie<u32> = [(p("10.0.0.0/8"), 1)].into_iter().collect();
        assert!(t.lookup("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn covered_by_returns_subtree() {
        let t: PrefixTrie<u32> = [
            (p("10.0.0.0/8"), 1),
            (p("10.1.0.0/16"), 2),
            (p("10.1.128.0/17"), 3),
            (p("11.0.0.0/8"), 4),
        ]
        .into_iter()
        .collect();
        let got: Vec<Prefix> = t
            .covered_by(p("10.1.0.0/16"))
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert!(got.contains(&p("10.1.0.0/16")));
        assert!(got.contains(&p("10.1.128.0/17")));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn host_route_lookup() {
        let t: PrefixTrie<u32> = [(p("1.2.3.4/32"), 9)].into_iter().collect();
        assert_eq!(
            t.lookup("1.2.3.4".parse().unwrap()).map(|(_, v)| *v),
            Some(9)
        );
        assert!(t.lookup("1.2.3.5".parse().unwrap()).is_none());
    }

    #[test]
    fn iter_yields_all() {
        let items = [
            (p("0.0.0.0/0"), 0),
            (p("10.0.0.0/8"), 1),
            (p("192.168.0.0/16"), 2),
        ];
        let t: PrefixTrie<u32> = items.into_iter().collect();
        let mut got: Vec<_> = t.iter().map(|(p, v)| (p, *v)).collect();
        got.sort();
        let mut want = items.to_vec();
        want.sort();
        assert_eq!(got, want);
    }
}
