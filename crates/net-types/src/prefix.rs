//! CIDR prefixes.
//!
//! A [`Prefix`] is always stored in canonical form: bits below the mask are
//! zero. Construction via [`Prefix::new`] canonicalizes, so two prefixes
//! that denote the same address block always compare equal — an invariant
//! the provenance and localization layers rely on when they use prefixes as
//! map keys.

use crate::addr::Ipv4Addr;
use std::fmt;
use std::str::FromStr;

/// An IPv4 CIDR prefix in canonical (host-bits-zeroed) form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix {
        addr: Ipv4Addr::UNSPECIFIED,
        len: 0,
    };

    /// Builds a prefix, zeroing any bits below the mask.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask_of(len)),
            len,
        }
    }

    /// Convenience constructor from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Prefix::new(Ipv4Addr::new(a, b, c, d), len)
    }

    /// The network address (canonical base address).
    pub fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits.
    // A /0 prefix is not "empty", so there is no `is_empty` counterpart.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True only for the default route `0.0.0.0/0`.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// The netmask corresponding to `len` bits.
    pub fn mask(self) -> u32 {
        Self::mask_of(self.len)
    }

    fn mask_of(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Number of addresses covered (saturating at `u32::MAX` for /0).
    pub fn size(self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len as u32)
        }
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        (addr.0 & self.mask()) == self.addr.0
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(self, other: Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The `i`-th host address inside the prefix (wrapping inside the block).
    ///
    /// Used to deterministically sample test packets from a header space.
    pub fn host(self, i: u32) -> Ipv4Addr {
        if self.len >= 32 {
            return self.addr;
        }
        let span = self.size();
        self.addr.offset(i % span)
    }

    /// The two halves of this prefix, or `None` for a /32.
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix::new(self.addr, self.len + 1);
        let bit = 1u32 << (32 - (self.len as u32 + 1));
        let right = Prefix::new(Ipv4Addr(self.addr.0 | bit), self.len + 1);
        Some((left, right))
    }

    /// The enclosing prefix one bit shorter, or `None` for /0.
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len - 1))
        }
    }

    /// The value of the `depth`-th bit of the network address (0 = MSB),
    /// used by the trie to pick a branch.
    pub fn bit(self, depth: u8) -> bool {
        debug_assert!(depth < 32);
        (self.addr.0 >> (31 - depth as u32)) & 1 == 1
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when a CIDR string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(pub String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    /// Parses `a.b.c.d/len`. Also accepts the vendor-config style
    /// `a.b.c.d len` (space-separated), as in `ip route-static 20.0.0.0 16`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .or_else(|| s.split_once(' '))
            .ok_or_else(|| ParsePrefixError(s.to_string()))?;
        let addr: Ipv4Addr = addr_s
            .trim()
            .parse()
            .map_err(|_| ParsePrefixError(s.to_string()))?;
        let len: u8 = len_s
            .trim()
            .parse()
            .map_err(|_| ParsePrefixError(s.to_string()))?;
        if len > 32 {
            return Err(ParsePrefixError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        assert_eq!(p("10.1.2.3/16"), p("10.1.0.0/16"));
        assert_eq!(p("10.1.2.3/16").addr(), Ipv4Addr::new(10, 1, 0, 0));
    }

    #[test]
    fn parses_both_separators() {
        assert_eq!(p("10.0.0.0/16"), "10.0.0.0 16".parse().unwrap());
        assert_eq!("0.0.0.0 0".parse::<Prefix>().unwrap(), Prefix::DEFAULT);
    }

    #[test]
    fn rejects_bad_cidr() {
        for s in ["10.0.0.0/33", "10.0.0.0", "junk/8", "10.0.0.0/x"] {
            assert!(s.parse::<Prefix>().is_err(), "{s}");
        }
    }

    #[test]
    fn containment() {
        assert!(p("10.0.0.0/8").covers(p("10.5.0.0/16")));
        assert!(!p("10.5.0.0/16").covers(p("10.0.0.0/8")));
        assert!(p("10.0.0.0/8").contains(Ipv4Addr::new(10, 255, 0, 1)));
        assert!(!p("10.0.0.0/8").contains(Ipv4Addr::new(11, 0, 0, 0)));
        assert!(Prefix::DEFAULT.covers(p("1.2.3.4/32")));
    }

    #[test]
    fn overlap_is_symmetric_nesting() {
        assert!(p("10.0.0.0/8").overlaps(p("10.1.0.0/16")));
        assert!(p("10.1.0.0/16").overlaps(p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/16").overlaps(p("10.1.0.0/16")));
    }

    #[test]
    fn children_partition_parent() {
        let parent = p("10.0.0.0/16");
        let (l, r) = parent.children().unwrap();
        assert_eq!(l, p("10.0.0.0/17"));
        assert_eq!(r, p("10.0.128.0/17"));
        assert!(parent.covers(l) && parent.covers(r));
        assert!(!l.overlaps(r));
        assert_eq!(l.parent(), Some(parent));
        assert_eq!(r.parent(), Some(parent));
        assert!(p("1.2.3.4/32").children().is_none());
        assert!(Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn host_sampling_stays_inside() {
        let pre = p("10.7.0.0/16");
        for i in [0u32, 1, 100, 65535, 65536, 1 << 30] {
            assert!(pre.contains(pre.host(i)), "host({i}) escaped {pre}");
        }
        assert_eq!(p("9.9.9.9/32").host(12345), Ipv4Addr::new(9, 9, 9, 9));
    }

    #[test]
    fn bit_extraction_matches_msb_order() {
        let pre = p("128.0.0.0/1");
        assert!(pre.bit(0));
        let pre = p("64.0.0.0/2");
        assert!(!pre.bit(0));
        assert!(pre.bit(1));
    }

    #[test]
    fn display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/16", "10.70.0.0/16", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }
}
