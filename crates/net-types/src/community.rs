//! BGP communities.

use std::fmt;
use std::str::FromStr;

/// A standard BGP community, displayed as `asn:value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Community {
    pub asn: u16,
    pub value: u16,
}

impl Community {
    /// Builds a community from its two 16-bit halves.
    pub const fn new(asn: u16, value: u16) -> Self {
        Community { asn, value }
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn, self.value)
    }
}

/// Error returned when a community string is not `u16:u16`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommunityError(pub String);

impl fmt::Display for ParseCommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid community: {}", self.0)
    }
}

impl std::error::Error for ParseCommunityError {}

impl FromStr for Community {
    type Err = ParseCommunityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, v) = s
            .split_once(':')
            .ok_or_else(|| ParseCommunityError(s.into()))?;
        Ok(Community {
            asn: a.parse().map_err(|_| ParseCommunityError(s.into()))?,
            value: v.parse().map_err(|_| ParseCommunityError(s.into()))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        let c: Community = "65001:300".parse().unwrap();
        assert_eq!(c, Community::new(65001, 300));
        assert_eq!(c.to_string(), "65001:300");
    }

    #[test]
    fn rejects_malformed() {
        for s in ["", "1", "1:2:3", "70000:1", "x:y"] {
            assert!(s.parse::<Community>().is_err(), "{s}");
        }
    }
}
