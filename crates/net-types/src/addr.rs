//! IPv4 addresses.
//!
//! We deliberately use our own thin wrapper over `u32` instead of
//! `std::net::Ipv4Addr` so that address arithmetic (masking, offsetting,
//! sampling inside a prefix) stays one-line and allocation-free, and so the
//! type can grow ACR-specific helpers without orphan-rule friction.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored in host byte order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);

    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets most-significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Address obtained by adding `offset` (wrapping) — used to enumerate
    /// hosts inside a prefix when sampling test packets.
    pub const fn offset(self, offset: u32) -> Self {
        Ipv4Addr(self.0.wrapping_add(offset))
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ipv4Addr {
    // Delegate to `Display` so simulator traces stay readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a dotted-quad address fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError(pub String);

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {}", self.0)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Ipv4Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split('.');
        let mut octets = [0u8; 4];
        for slot in octets.iter_mut() {
            let part = it.next().ok_or_else(|| ParseAddrError(s.to_string()))?;
            *slot = part
                .parse::<u8>()
                .map_err(|_| ParseAddrError(s.to_string()))?;
        }
        if it.next().is_some() {
            return Err(ParseAddrError(s.to_string()));
        }
        Ok(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display_parse() {
        for s in ["0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.200"] {
            let a: Ipv4Addr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"] {
            assert!(s.parse::<Ipv4Addr>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn octet_order_is_big_endian() {
        let a = Ipv4Addr::new(10, 20, 30, 40);
        assert_eq!(a.0, 0x0A14_1E28);
        assert_eq!(a.octets(), [10, 20, 30, 40]);
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(
            Ipv4Addr::new(255, 255, 255, 255).offset(1),
            Ipv4Addr::UNSPECIFIED
        );
        assert_eq!(
            Ipv4Addr::new(10, 0, 0, 0).offset(5),
            Ipv4Addr::new(10, 0, 0, 5)
        );
    }
}
