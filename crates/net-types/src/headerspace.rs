//! Header spaces.
//!
//! Each intent in the specification covers a *header space*: a rectangle
//! over (src prefix, dst prefix, protocol, port ranges). The paper's test
//! generation (§4.1) samples one packet per property from its header space;
//! [`HeaderSpace::sample`] implements that sampling deterministically so a
//! test suite is reproducible.

use crate::flow::{Flow, Protocol};
use crate::prefix::Prefix;
use std::fmt;
use std::ops::RangeInclusive;

/// A rectangle of packet headers: the 5-tuple space an intent quantifies
/// over.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeaderSpace {
    pub src: Prefix,
    pub dst: Prefix,
    pub proto: Protocol,
    pub src_ports: PortRange,
    pub dst_ports: PortRange,
}

/// An inclusive port range; `PortRange::ANY` covers 0..=65535.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRange {
    pub lo: u16,
    pub hi: u16,
}

impl PortRange {
    /// The full port range.
    pub const ANY: PortRange = PortRange {
        lo: 0,
        hi: u16::MAX,
    };

    /// A range covering exactly one port.
    pub const fn single(p: u16) -> Self {
        PortRange { lo: p, hi: p }
    }

    /// Builds a range; panics if `lo > hi`.
    pub fn new(lo: u16, hi: u16) -> Self {
        assert!(lo <= hi, "port range {lo}..={hi} is empty");
        PortRange { lo, hi }
    }

    /// Whether `p` is inside the range.
    pub fn contains(self, p: u16) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Number of ports covered.
    pub fn size(self) -> u32 {
        (self.hi - self.lo) as u32 + 1
    }

    /// The `i`-th port of the range, wrapping.
    pub fn pick(self, i: u32) -> u16 {
        self.lo + (i % self.size()) as u16
    }
}

impl From<RangeInclusive<u16>> for PortRange {
    fn from(r: RangeInclusive<u16>) -> Self {
        PortRange::new(*r.start(), *r.end())
    }
}

impl HeaderSpace {
    /// The space of all packets from `src` to `dst`, any protocol/ports.
    pub fn between(src: Prefix, dst: Prefix) -> Self {
        HeaderSpace {
            src,
            dst,
            proto: Protocol::Any,
            src_ports: PortRange::ANY,
            dst_ports: PortRange::ANY,
        }
    }

    /// The space of all packets destined to `dst`.
    pub fn to_dst(dst: Prefix) -> Self {
        HeaderSpace::between(Prefix::DEFAULT, dst)
    }

    /// Whether a concrete flow lies inside this space.
    pub fn contains(&self, flow: &Flow) -> bool {
        self.src.contains(flow.src)
            && self.dst.contains(flow.dst)
            && (self.proto == Protocol::Any || self.proto == flow.proto)
            && self.src_ports.contains(flow.src_port)
            && self.dst_ports.contains(flow.dst_port)
    }

    /// Deterministically samples the `i`-th packet of the space.
    ///
    /// Sampling is *total*: every `i` yields a member flow, and
    /// `sample(i) == sample(i)` across runs, which keeps the SBFL spectrum
    /// reproducible.
    pub fn sample(&self, i: u32) -> Flow {
        // Spread the index across dimensions with odd multipliers so
        // consecutive samples differ in every field.
        Flow {
            src: self.src.host(i.wrapping_mul(2654435761) >> 8),
            dst: self.dst.host(i),
            proto: self.proto,
            src_port: self.src_ports.pick(i.wrapping_mul(40503)),
            dst_port: self.dst_ports.pick(i),
        }
    }
}

impl fmt::Display for HeaderSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} ({})", self.src, self.dst, self.proto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn sample_is_member_and_deterministic() {
        let hs = HeaderSpace {
            src: p("10.1.0.0/16"),
            dst: p("10.2.0.0/16"),
            proto: Protocol::Tcp,
            src_ports: PortRange::ANY,
            dst_ports: PortRange::new(80, 443),
        };
        for i in [0u32, 1, 7, 1000, u32::MAX] {
            let f = hs.sample(i);
            assert!(hs.contains(&f), "sample({i}) = {f} escaped {hs}");
            assert_eq!(f, hs.sample(i), "sampling must be deterministic");
        }
    }

    #[test]
    fn distinct_indices_usually_differ() {
        let hs = HeaderSpace::between(p("10.0.0.0/8"), p("20.0.0.0/8"));
        assert_ne!(hs.sample(0), hs.sample(1));
    }

    #[test]
    fn contains_enforces_every_dimension() {
        let hs = HeaderSpace {
            src: p("10.0.0.0/8"),
            dst: p("20.0.0.0/8"),
            proto: Protocol::Udp,
            src_ports: PortRange::ANY,
            dst_ports: PortRange::single(53),
        };
        let good = Flow {
            src: Ipv4Addr::new(10, 1, 1, 1),
            dst: Ipv4Addr::new(20, 1, 1, 1),
            proto: Protocol::Udp,
            src_port: 999,
            dst_port: 53,
        };
        assert!(hs.contains(&good));
        assert!(!hs.contains(&Flow {
            dst_port: 54,
            ..good
        }));
        assert!(!hs.contains(&Flow {
            proto: Protocol::Tcp,
            ..good
        }));
        assert!(!hs.contains(&Flow {
            src: Ipv4Addr::new(11, 0, 0, 1),
            ..good
        }));
    }

    #[test]
    fn port_range_arithmetic() {
        let r = PortRange::new(10, 12);
        assert_eq!(r.size(), 3);
        assert_eq!(r.pick(0), 10);
        assert_eq!(r.pick(5), 12);
        assert!(r.contains(11));
        assert!(!r.contains(13));
        assert_eq!(PortRange::ANY.size(), 65536);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_port_range_panics() {
        PortRange::new(5, 4);
    }
}
