//! # acr-net-types
//!
//! Foundation network types shared by every ACR crate:
//!
//! - [`Ipv4Addr`] and [`Prefix`] — IPv4 addresses and CIDR prefixes with
//!   canonicalization, containment and parsing,
//! - [`PrefixTrie`] — a binary trie supporting longest-prefix-match lookup,
//! - [`AsPath`] / [`Asn`] — BGP AS paths, including the `overwrite`
//!   operation that drives the paper's Figure 2 incident,
//! - [`Flow`] and [`HeaderSpace`] — 5-tuple test packets and the header
//!   spaces that intents quantify over (§4.1 of the paper samples one
//!   packet per property's header space),
//! - [`RouterId`] / [`Community`] — miscellaneous identifiers.
//!
//! The crate is dependency-free and fully deterministic; all sampling takes
//! an explicit deterministic position rather than an RNG so that upper
//! layers control randomness.

pub mod addr;
pub mod aspath;
pub mod community;
pub mod flow;
pub mod headerspace;
pub mod prefix;
pub mod rng;
pub mod trie;

pub use addr::Ipv4Addr;
pub use aspath::{AsPath, Asn};
pub use community::Community;
pub use flow::{Flow, Protocol};
pub use headerspace::HeaderSpace;
pub use prefix::{ParsePrefixError, Prefix};
pub use rng::SplitMix64;
pub use trie::PrefixTrie;

/// Identifier of a router in a network, stable across simulation runs.
///
/// Router ids double as the BGP tiebreaker of last resort (lowest id wins),
/// mirroring the real protocol's router-id comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Returns the numeric index, useful for dense per-router tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RouterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_id_orders_numerically() {
        assert!(RouterId(3) < RouterId(10));
        assert_eq!(RouterId(7).index(), 7);
        assert_eq!(RouterId(7).to_string(), "r7");
    }
}
