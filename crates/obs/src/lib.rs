//! # acr-obs
//!
//! Zero-dependency observability for the repair pipeline: the single
//! instrumentation substrate every perf PR measures against (instead of
//! inventing new ad-hoc timers), and the audit trail Astragalus-style
//! production deployment needs ("*why* was this patch chosen?").
//!
//! Three facilities behind one on/off switch:
//!
//! - [`trace`] — span-based tracing with a guard API ([`span!`]),
//!   thread-aware so the deterministic worker pool produces correct
//!   per-thread timelines, exportable as Chrome trace-event JSON
//!   (`chrome://tracing`, Perfetto). Enabled by `ACR_TRACE=path`.
//! - [`metrics`] — a registry of counters, gauges and fixed-bucket
//!   histograms: simulator convergence rounds, memo-cache and lint-gate
//!   hits, invalidation breadth per session-delta class, DPLL
//!   propagations/backtracks, candidates generated/gated/validated.
//!   Enabled by `ACR_METRICS=1` or `ACR_METRICS=path` (snapshot file).
//! - [`journal`] — a JSONL run journal of repair iterations (ranked
//!   suspects, candidate patches, verdicts, fitness) that makes a repair
//!   run replayable and diffable. Enabled by `ACR_JOURNAL=path`.
//!
//! ## The no-op fast path
//!
//! Everything is **disabled by default**. Each instrumentation site costs
//! exactly one relaxed atomic load when its facility is off — see
//! [`enabled`] — so the pipeline's hot loops carry the hooks for free
//! (the `obs_overhead` guard test holds the disabled cost under 2% of
//! the simulation smoke path).
//!
//! ## Determinism
//!
//! Instrumentation only ever *records*: no engine decision reads an obs
//! value, so repair reports are byte-identical with every facility on or
//! off, at every worker-thread count (asserted by the determinism
//! harness). Journal lines are emitted from the coordinating thread in
//! iteration/candidate-index order, so journals are byte-identical
//! modulo timestamps at every thread count; trace timelines attribute
//! spans to whichever worker ran them, so their *canonical* form
//! ([`trace::canonical`], timestamps and thread ids scrubbed) is the
//! deterministic artifact.
//!
//! `ACR_OBS=0` force-disables every facility regardless of the other
//! variables.

pub mod journal;
pub mod json;
pub mod metrics;
pub mod stages;
pub mod trace;

pub use stages::Stages;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Flag bit: span tracing.
pub const TRACE: u8 = 1 << 0;
/// Flag bit: the metrics registry.
pub const METRICS: u8 = 1 << 1;
/// Flag bit: the run journal.
pub const JOURNAL: u8 = 1 << 2;
/// All facilities.
pub const ALL: u8 = TRACE | METRICS | JOURNAL;

/// Sentinel: flags not yet initialised from the environment.
const UNINIT: u8 = 0x80;

static FLAGS: AtomicU8 = AtomicU8::new(UNINIT);
static INIT_LOCK: Mutex<()> = Mutex::new(());

/// Whether a facility is enabled. **This is the per-site fast path**: one
/// relaxed atomic load once the process has initialised (lazily, from the
/// environment on the first query, or eagerly via the `enable_*` /
/// [`disable_all`] calls).
#[inline(always)]
pub fn enabled(bit: u8) -> bool {
    let f = FLAGS.load(Ordering::Relaxed);
    if f == UNINIT {
        return init_from_env() & bit != 0;
    }
    f & bit != 0
}

/// Current flag byte (initialising from the environment if needed).
pub fn flags() -> u8 {
    let f = FLAGS.load(Ordering::Relaxed);
    if f == UNINIT {
        init_from_env()
    } else {
        f
    }
}

/// One-time environment scan: `ACR_TRACE`/`ACR_JOURNAL`/`ACR_METRICS`
/// configure sinks, `ACR_OBS=0|false|off` vetoes everything.
fn init_from_env() -> u8 {
    let _guard = INIT_LOCK.lock().unwrap();
    init_locked()
}

/// The scan body; the caller holds `INIT_LOCK`.
fn init_locked() -> u8 {
    // Another thread may have initialised while we waited.
    let f = FLAGS.load(Ordering::Relaxed);
    if f != UNINIT {
        return f;
    }
    let vetoed = matches!(
        std::env::var("ACR_OBS").ok().as_deref(),
        Some("0") | Some("false") | Some("off")
    );
    let mut flags = 0u8;
    if !vetoed {
        if let Ok(path) = std::env::var("ACR_TRACE") {
            if !path.is_empty() {
                trace::set_path(&path);
                flags |= TRACE;
            }
        }
        if let Ok(path) = std::env::var("ACR_JOURNAL") {
            if !path.is_empty() {
                match journal::set_file(&path) {
                    Ok(()) => flags |= JOURNAL,
                    Err(e) => eprintln!("acr-obs: cannot open ACR_JOURNAL={path}: {e}"),
                }
            }
        }
        match std::env::var("ACR_METRICS").ok().as_deref() {
            None | Some("") | Some("0") => {}
            Some("1") | Some("true") | Some("on") => flags |= METRICS,
            Some(path) => {
                metrics::set_path(path);
                flags |= METRICS;
            }
        }
    }
    FLAGS.store(flags, Ordering::Relaxed);
    flags
}

/// Sets the flag byte directly (marks the process initialised). The
/// programmatic twin of the environment variables, for tests and tools.
pub fn set_flags(f: u8) {
    let _guard = INIT_LOCK.lock().unwrap();
    FLAGS.store(f & ALL, Ordering::Relaxed);
}

/// Turns one facility on without touching the others. On the first obs
/// call of the process this runs the environment scan first, so a
/// programmatic `enable` composes with (rather than preempts)
/// `ACR_TRACE`/`ACR_JOURNAL` sink configuration.
pub fn enable(bit: u8) {
    let _guard = INIT_LOCK.lock().unwrap();
    let cur = init_locked();
    FLAGS.store((cur | bit) & ALL, Ordering::Relaxed);
}

/// Turns every facility off (sinks are left configured).
pub fn disable_all() {
    set_flags(0);
}

/// Enables tracing with a Chrome trace-event file written on [`flush`].
pub fn enable_trace_to(path: &str) {
    trace::set_path(path);
    enable(TRACE);
}

/// Enables the journal, appending JSONL to `path`.
pub fn enable_journal_to(path: &str) -> std::io::Result<()> {
    journal::set_file(path)?;
    enable(JOURNAL);
    Ok(())
}

/// Enables the metrics registry (no snapshot file).
pub fn enable_metrics() {
    enable(METRICS);
}

/// Flushes every configured sink: writes the Chrome trace file and the
/// metrics snapshot (when paths are configured) and flushes the journal.
/// Cheap and idempotent when everything is disabled; the engine calls it
/// at the end of each repair run.
pub fn flush() {
    if enabled(TRACE) {
        trace::flush_to_path();
    }
    if enabled(METRICS) {
        metrics::flush_to_path();
    }
    if enabled(JOURNAL) {
        journal::flush();
    }
}

/// Opens a trace span: `span!("name")` or `span!("name", "category")`.
/// Returns a guard; the span closes when the guard drops. When tracing
/// is disabled the guard is inert and the call costs one atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name, "acr")
    };
    ($name:expr, $cat:expr) => {
        $crate::trace::span($name, $cat)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Flag-state tests share the process-global switch; keep them in one
    // test so cargo's parallel runner cannot interleave them.
    #[test]
    fn flag_lifecycle() {
        set_flags(0);
        assert!(!enabled(TRACE) && !enabled(METRICS) && !enabled(JOURNAL));
        enable(METRICS);
        assert!(enabled(METRICS) && !enabled(TRACE));
        enable(TRACE);
        assert!(enabled(METRICS) && enabled(TRACE));
        disable_all();
        assert_eq!(flags(), 0);
    }
}
