//! Per-run stage accounting: the single source the engine derives its
//! `StageTimes` report from.
//!
//! A [`Stages`] value is one run's accumulator. [`Stages::time`] returns
//! a guard that, on drop, adds the elapsed wall time under the stage
//! name *and* closes a trace span of the same name — so the coarse
//! stage totals in the repair report and the fine-grained trace timeline
//! come from the same clock reads. [`Stages::add`] folds in durations
//! measured elsewhere (e.g. the simulator's compile/establish/simulate
//! splits that `IncrementalStats` already carries).
//!
//! `Stages` is deliberately not `Sync`: one accumulator belongs to one
//! coordinating thread. Worker-side timing flows through trace spans and
//! metrics, which are thread-safe.

use crate::trace;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One run's stage-time accumulator.
pub struct Stages {
    start: Instant,
    acc: RefCell<BTreeMap<&'static str, Duration>>,
}

impl Default for Stages {
    fn default() -> Self {
        Self::new()
    }
}

impl Stages {
    /// Starts the run clock.
    pub fn new() -> Self {
        Stages {
            start: Instant::now(),
            acc: RefCell::new(BTreeMap::new()),
        }
    }

    /// Times a region: the returned guard adds the elapsed time under
    /// `name` when dropped, and spans the region in the trace under the
    /// same name.
    pub fn time<'a>(&'a self, name: &'static str, cat: &'static str) -> StageGuard<'a> {
        StageGuard {
            stages: self,
            name,
            start: Instant::now(),
            _span: trace::span(name, cat),
        }
    }

    /// Folds an externally measured duration into a stage.
    pub fn add(&self, name: &'static str, d: Duration) {
        *self.acc.borrow_mut().entry(name).or_default() += d;
    }

    /// Accumulated time for a stage (zero if it never ran).
    pub fn get(&self, name: &'static str) -> Duration {
        self.acc.borrow().get(name).copied().unwrap_or_default()
    }

    /// Wall time since the accumulator was created.
    pub fn wall(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Open timing region; folds its elapsed time into the [`Stages`] on
/// drop.
pub struct StageGuard<'a> {
    stages: &'a Stages,
    name: &'static str,
    start: Instant,
    _span: trace::Span,
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        self.stages.add(self.name, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_and_adds_accumulate() {
        let s = Stages::new();
        {
            let _g = s.time("engine.generate", "engine");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _g = s.time("engine.generate", "engine");
        }
        s.add("sim.compile", Duration::from_millis(5));
        s.add("sim.compile", Duration::from_millis(3));
        assert!(s.get("engine.generate") >= Duration::from_millis(2));
        assert_eq!(s.get("sim.compile"), Duration::from_millis(8));
        assert_eq!(s.get("never"), Duration::ZERO);
        assert!(s.wall() >= s.get("engine.generate"));
    }
}
