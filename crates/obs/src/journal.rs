//! The run journal: a JSONL audit trail of repair runs.
//!
//! One line per event, emitted by the *coordinating* thread in
//! iteration / candidate-index order, so a journal is byte-identical
//! across runs (and across worker-thread counts) once `"ts_us"` fields
//! are scrubbed — see [`scrub_timestamps`]. The schema
//! (`acr-journal/v2`) is what `exp_obs` validates in CI:
//!
//! - `run_start` — network shape, initial failures, the engine
//!   configuration under a `config` key (the only run-parameter-bearing
//!   field, so cross-configuration diffs scrub exactly one object);
//!   since v2 the config carries the run's scenario `tags`;
//! - `iteration` — ranked suspects (line + suspiciousness), the
//!   candidate patches of the iteration with their verdicts, fitness
//!   and (v2) provenance-segment counts, and the iteration counters;
//! - `run_end` — outcome, winning/best patch, totals; since v2 also the
//!   per-patch `attribution` array (iteration / operator / origin line /
//!   edit count per segment — the multi-patch audit trail) and the
//!   run's `tags`;
//! - `baseline_run` — one-line summaries from the MetaProv/AED
//!   baselines, so Figure-3 comparisons share the audit trail.
//!
//! Sinks: a file (`ACR_JOURNAL=path`, append within one process) or an
//! in-memory capture buffer for tests ([`capture_to_memory`] /
//! [`take_captured`]).

use std::fs::File;
use std::io::Write;
use std::sync::Mutex;

/// The journal schema version stamped into `run_start` records.
pub const SCHEMA: &str = "acr-journal/v2";

enum Sink {
    File(File),
    Memory(Vec<u8>),
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Sends journal lines to `path` (created/truncated now, appended for
/// the rest of the process).
pub fn set_file(path: &str) -> std::io::Result<()> {
    let f = File::create(path)?;
    *SINK.lock().unwrap() = Some(Sink::File(f));
    Ok(())
}

/// Sends journal lines to an in-memory buffer (tests).
pub fn capture_to_memory() {
    *SINK.lock().unwrap() = Some(Sink::Memory(Vec::new()));
}

/// Drains the in-memory buffer. Empty when the sink is a file.
pub fn take_captured() -> String {
    let mut g = SINK.lock().unwrap();
    match g.as_mut() {
        Some(Sink::Memory(buf)) => String::from_utf8(std::mem::take(buf)).unwrap_or_default(),
        _ => String::new(),
    }
}

/// Appends one JSONL line (the newline is added here). No-op unless the
/// journal facility is enabled *and* a sink is configured.
pub fn emit(line: &str) {
    if !crate::enabled(crate::JOURNAL) {
        return;
    }
    let mut g = SINK.lock().unwrap();
    let Some(sink) = g.as_mut() else { return };
    let res = match sink {
        Sink::File(f) => f
            .write_all(line.as_bytes())
            .and_then(|()| f.write_all(b"\n")),
        Sink::Memory(buf) => {
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            Ok(())
        }
    };
    if let Err(e) = res {
        eprintln!("acr-obs: journal write failed: {e}");
    }
}

/// Flushes a file sink.
pub fn flush() {
    if let Some(Sink::File(f)) = SINK.lock().unwrap().as_mut() {
        let _ = f.flush();
    }
}

/// Microseconds since the Unix epoch — the `ts_us` field of journal
/// records. Wall-clock, deliberately: journals are diffed after
/// scrubbing, and operators want real times in the raw artifact.
pub fn now_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Removes every `"ts_us":<digits>` value from a journal (replacing it
/// with `"ts_us":0`), making two runs of the same workload byte-
/// comparable.
pub fn scrub_timestamps(journal: &str) -> String {
    const KEY: &str = "\"ts_us\":";
    let mut out = String::with_capacity(journal.len());
    let mut rest = journal;
    while let Some(pos) = rest.find(KEY) {
        let after = pos + KEY.len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let digits = tail.bytes().take_while(|b| b.is_ascii_digit()).count();
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Single test: sink and enable flag are process-global.
    #[test]
    fn capture_emit_and_scrub() {
        crate::set_flags(crate::JOURNAL);
        capture_to_memory();
        emit(&format!("{{\"event\":\"x\",\"ts_us\":{}}}", now_us()));
        emit("{\"event\":\"y\",\"n\":3,\"ts_us\":17}");
        let raw = take_captured();
        assert_eq!(raw.lines().count(), 2);
        let scrubbed = scrub_timestamps(&raw);
        assert!(scrubbed.contains("\"ts_us\":0}"));
        assert!(!scrubbed.contains("\"ts_us\":17"));
        assert!(scrubbed.contains("\"n\":3"));

        // Disabled: nothing is recorded.
        crate::disable_all();
        capture_to_memory();
        emit("{\"event\":\"z\"}");
        assert!(take_captured().is_empty());
    }
}
