//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Handles are `const`-constructible statics; the backing cells are
//! allocated lazily in a process-global registry the first time a site
//! fires while metrics are enabled, so declaring a metric costs nothing.
//! Every mutation is a relaxed atomic op; every *disabled* mutation is a
//! single atomic load ([`crate::enabled`]).
//!
//! ```
//! use acr_obs::metrics::Counter;
//! static CANDIDATES: Counter = Counter::new("engine.candidates.generated");
//! CANDIDATES.add(12); // no-op unless acr_obs::METRICS is enabled
//! ```
//!
//! [`snapshot`] returns every registered metric's current value;
//! [`reset`] zeroes them (the values, not the registrations), which is
//! how benchmarks scope a measurement to one region.

use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

enum Cell {
    Counter(AtomicU64),
    Gauge(AtomicU64),
    Histogram(HistoCell),
}

struct HistoCell {
    /// Inclusive upper bounds; one overflow bucket follows.
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

static REGISTRY: Mutex<BTreeMap<&'static str, &'static Cell>> = Mutex::new(BTreeMap::new());
static PATH: Mutex<Option<String>> = Mutex::new(None);

/// Registers (or finds) the cell for `name`. The leak is deliberate:
/// metric cells are `'static`, bounded by the number of distinct sites.
fn cell_for(name: &'static str, make: impl FnOnce() -> Cell) -> &'static Cell {
    let mut reg = REGISTRY.lock().unwrap();
    reg.entry(name)
        .or_insert_with(|| Box::leak(Box::new(make())))
}

/// A monotonically increasing counter.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled(crate::METRICS) {
            return;
        }
        self.resolve().fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when the site never fired).
    pub fn get(&self) -> u64 {
        match self.cell.get() {
            Some(c) => c.load(Ordering::Relaxed),
            None => 0,
        }
    }

    fn resolve(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(
            || match cell_for(self.name, || Cell::Counter(AtomicU64::new(0))) {
                Cell::Counter(c) => c,
                _ => panic!("metric '{}' registered with a different type", self.name),
            },
        )
    }
}

/// A last-value gauge.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn set(&self, v: u64) {
        if !crate::enabled(crate::METRICS) {
            return;
        }
        self.resolve().store(v, Ordering::Relaxed);
    }

    fn resolve(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(
            || match cell_for(self.name, || Cell::Gauge(AtomicU64::new(0))) {
                Cell::Gauge(c) => c,
                _ => panic!("metric '{}' registered with a different type", self.name),
            },
        )
    }
}

/// A histogram over fixed, inclusive bucket upper bounds (plus an
/// implicit overflow bucket).
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    cell: OnceLock<&'static HistoCell>,
}

impl Histogram {
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        Histogram {
            name,
            bounds,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled(crate::METRICS) {
            return;
        }
        let h = self.resolve();
        let idx = h
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(h.bounds.len());
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn resolve(&self) -> &'static HistoCell {
        let bounds = self.bounds;
        self.cell.get_or_init(|| {
            match cell_for(self.name, || {
                Cell::Histogram(HistoCell {
                    bounds,
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                })
            }) {
                Cell::Histogram(h) => h,
                _ => panic!("metric '{}' registered with a different type", self.name),
            }
        })
    }
}

/// A snapshot value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histogram {
        /// `(inclusive upper bound, count)`; the final entry is the
        /// overflow bucket, rendered with bound `u64::MAX`.
        buckets: Vec<(u64, u64)>,
        count: u64,
        sum: u64,
    },
}

/// Snapshot of every registered metric.
pub fn snapshot() -> BTreeMap<String, MetricValue> {
    let reg = REGISTRY.lock().unwrap();
    reg.iter()
        .map(|(name, cell)| {
            let v = match cell {
                Cell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                Cell::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                Cell::Histogram(h) => MetricValue::Histogram {
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, b)| {
                            let bound = h.bounds.get(i).copied().unwrap_or(u64::MAX);
                            (bound, b.load(Ordering::Relaxed))
                        })
                        .collect(),
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                },
            };
            (name.to_string(), v)
        })
        .collect()
}

/// Zeroes every registered metric (registrations persist).
pub fn reset() {
    let reg = REGISTRY.lock().unwrap();
    for cell in reg.values() {
        match cell {
            Cell::Counter(c) | Cell::Gauge(c) => c.store(0, Ordering::Relaxed),
            Cell::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Renders the snapshot as one JSON object keyed by metric name.
pub fn render_json() -> String {
    let snap = snapshot();
    let mut o = json::Obj::new();
    for (name, v) in &snap {
        let rendered = match v {
            MetricValue::Counter(n) => json::Obj::new()
                .str("type", "counter")
                .u64("value", *n)
                .build(),
            MetricValue::Gauge(n) => json::Obj::new()
                .str("type", "gauge")
                .u64("value", *n)
                .build(),
            MetricValue::Histogram {
                buckets,
                count,
                sum,
            } => {
                let bs = json::array(buckets.iter().map(|(bound, c)| {
                    let mut b = json::Obj::new();
                    b = if *bound == u64::MAX {
                        b.str("le", "inf")
                    } else {
                        b.raw("le", &bound.to_string())
                    };
                    b.u64("count", *c).build()
                }));
                json::Obj::new()
                    .str("type", "histogram")
                    .u64("count", *count)
                    .u64("sum", *sum)
                    .raw("buckets", &bs)
                    .build()
            }
        };
        o = o.raw(name, &rendered);
    }
    o.build()
}

/// Renders the snapshot as an aligned text table (for CLI summaries).
pub fn render_text() -> String {
    let snap = snapshot();
    let width = snap.keys().map(|k| k.len()).max().unwrap_or(0).max(6);
    let mut out = String::new();
    for (name, v) in &snap {
        match v {
            MetricValue::Counter(n) => out.push_str(&format!("{name:<width$} {n}\n")),
            MetricValue::Gauge(n) => out.push_str(&format!("{name:<width$} {n} (gauge)\n")),
            MetricValue::Histogram { count, sum, .. } => {
                let mean = if *count > 0 {
                    *sum as f64 / *count as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{name:<width$} count={count} sum={sum} mean={mean:.2}\n"
                ));
            }
        }
    }
    out
}

/// Configures the snapshot file [`flush_to_path`] writes.
pub fn set_path(path: &str) {
    *PATH.lock().unwrap() = Some(path.to_string());
}

/// Writes the snapshot JSON to the configured path, if any.
pub fn flush_to_path() {
    let path = PATH.lock().unwrap().clone();
    if let Some(path) = path {
        if let Err(e) = std::fs::write(&path, render_json() + "\n") {
            eprintln!("acr-obs: cannot write metrics to {path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Single test: the registry and enable flag are process-global.
    #[test]
    fn counters_gauges_histograms_register_and_reset() {
        static HITS: Counter = Counter::new("test.hits");
        static DEPTH: Gauge = Gauge::new("test.depth");
        static ROUNDS: Histogram = Histogram::new("test.rounds", &[1, 2, 4]);

        crate::disable_all();
        HITS.add(5);
        assert_eq!(HITS.get(), 0, "disabled sites must not record");

        crate::set_flags(crate::METRICS);
        reset();
        HITS.add(2);
        HITS.inc();
        DEPTH.set(7);
        ROUNDS.observe(1);
        ROUNDS.observe(3);
        ROUNDS.observe(100); // overflow bucket

        let snap = snapshot();
        assert_eq!(snap["test.hits"], MetricValue::Counter(3));
        assert_eq!(snap["test.depth"], MetricValue::Gauge(7));
        match &snap["test.rounds"] {
            MetricValue::Histogram {
                buckets,
                count,
                sum,
            } => {
                assert_eq!(*count, 3);
                assert_eq!(*sum, 104);
                assert_eq!(buckets[0], (1, 1));
                assert_eq!(buckets[2], (4, 1));
                assert_eq!(buckets[3], (u64::MAX, 1));
            }
            other => panic!("expected histogram, got {other:?}"),
        }

        let doc = render_json();
        let v = json::parse(&doc).expect("metrics snapshot must be valid JSON");
        assert_eq!(
            v.get("test.hits").unwrap().get("value").unwrap().as_num(),
            Some(3.0)
        );
        assert!(!render_text().is_empty());

        reset();
        assert_eq!(HITS.get(), 0);
        crate::disable_all();
    }
}
