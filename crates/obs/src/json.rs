//! Hand-rolled JSON: an emitter for the trace/journal/bench artifacts
//! and a minimal recursive-descent parser for validating them.
//!
//! The hermetic workspace has no serde; this module is the single JSON
//! implementation every layer shares (`acr-bench` re-exports it for the
//! `BENCH_*.json` artifacts). The emitter covers objects of
//! string/number/bool/raw fields plus arrays; the parser covers the full
//! JSON grammar minus exotic number forms, enough to round-trip
//! everything the emitter produces and to schema-check journal lines and
//! Chrome traces in CI.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes a string for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An object under construction.
#[derive(Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    pub fn new() -> Self {
        Obj::default()
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(k), escape(v)));
        self
    }

    pub fn num(mut self, k: &str, v: f64) -> Self {
        // JSON has no NaN/Inf; encode them as null.
        let v = if v.is_finite() {
            format!("{v}")
        } else {
            "null".into()
        };
        self.fields.push(format!("\"{}\":{v}", escape(k)));
        self
    }

    pub fn int(self, k: &str, v: usize) -> Self {
        self.raw(k, &v.to_string())
    }

    pub fn u64(self, k: &str, v: u64) -> Self {
        self.raw(k, &v.to_string())
    }

    pub fn bool(self, k: &str, v: bool) -> Self {
        self.raw(k, if v { "true" } else { "false" })
    }

    /// A pre-rendered JSON value (nested object or array).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.fields.push(format!("\"{}\":{v}", escape(k)));
        self
    }

    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders pre-rendered values as a JSON array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object holding the key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub at: usize,
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing content (other than whitespace) is
/// an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> ParseError {
        ParseError {
            at: self.pos,
            what: what.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our emitter;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, of whatever width.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_round_trip() {
        let doc = Obj::new()
            .str("name", "a \"quoted\" value\n")
            .num("pi", 3.5)
            .int("n", 42)
            .bool("flag", true)
            .raw("arr", &array(["1".into(), "\"x\"".into()]))
            .build();
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("name").unwrap().as_str(),
            Some("a \"quoted\" value\n")
        );
        assert_eq!(v.get("pi").unwrap().as_num(), Some(3.5));
        assert_eq!(v.get("n").unwrap().as_num(), Some(42.0));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("arr").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parses_nested_structures_and_negatives() {
        let v = parse(r#"{"a":[{"b":-1.5e2},null,false],"c":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].get("b").unwrap().as_num(), Some(-150.0));
        assert_eq!(arr[1], Value::Null);
        assert!(v.get("c").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn nan_encodes_as_null() {
        let doc = Obj::new().num("x", f64::NAN).build();
        assert_eq!(parse(&doc).unwrap().get("x"), Some(&Value::Null));
    }
}
