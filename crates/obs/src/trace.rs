//! Span-based tracing with Chrome trace-event export.
//!
//! A span is opened with [`span`] (or the [`crate::span!`] macro) and
//! closed when its guard drops; the completed event records wall-clock
//! start/duration relative to the process trace epoch plus the logical
//! id of the thread that ran it (ids are assigned in first-span order,
//! so the engine's coordinator is `tid 1` and the scoped worker pool's
//! threads follow). [`export_chrome`] renders the buffer in the Chrome
//! trace-event format (`{"traceEvents":[{"ph":"X",...}]}`), loadable in
//! `chrome://tracing` or Perfetto.
//!
//! Scheduling is the only nondeterminism: *which* worker runs a span
//! varies run to run, but the multiset of spans does not (the validate
//! stage processes a deterministic batch). [`canonical`] is that
//! invariant artifact — events with timestamps and thread ids scrubbed,
//! sorted — and is what the determinism harness asserts on.

use crate::json;
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: &'static str,
    pub cat: &'static str,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
    pub dur_us: u64,
    /// Logical thread id (first-span order, 1-based).
    pub tid: u32,
    /// Optional argument, e.g. a batch size.
    pub arg: Option<(&'static str, u64)>,
}

static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static PATH: Mutex<Option<String>> = Mutex::new(None);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u32 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// An open span; the event is recorded when the guard drops. Inert when
/// tracing was disabled at open time.
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
    cat: &'static str,
    arg: Option<(&'static str, u64)>,
}

impl Span {
    /// Attaches one `key = value` argument to the span.
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if self.start.is_some() {
            self.arg = Some((key, value));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ep = epoch();
        let ts_us = start.duration_since(ep).as_micros() as u64;
        let dur_us = start.elapsed().as_micros() as u64;
        let ev = TraceEvent {
            name: self.name,
            cat: self.cat,
            ts_us,
            dur_us,
            tid: thread_id(),
            arg: self.arg,
        };
        EVENTS.lock().unwrap().push(ev);
    }
}

/// Opens a span. One atomic load when tracing is disabled.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    if !crate::enabled(crate::TRACE) {
        return Span {
            start: None,
            name,
            cat,
            arg: None,
        };
    }
    // Pin the epoch before the first span starts so ts is never negative.
    let ep = epoch();
    let now = Instant::now();
    let start = if now < ep { ep } else { now };
    Span {
        start: Some(start),
        name,
        cat,
        arg: None,
    }
}

/// Configures the file [`flush_to_path`] exports to.
pub fn set_path(path: &str) {
    *PATH.lock().unwrap() = Some(path.to_string());
}

/// Drains and returns every buffered event.
pub fn take() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock().unwrap())
}

/// Number of buffered events.
pub fn len() -> usize {
    EVENTS.lock().unwrap().len()
}

/// Renders the buffered events as a Chrome trace-event JSON document
/// (without draining them).
pub fn export_chrome() -> String {
    let events = EVENTS.lock().unwrap();
    let rendered = events.iter().map(|e| {
        let mut o = json::Obj::new()
            .str("name", e.name)
            .str("cat", e.cat)
            .str("ph", "X")
            .u64("ts", e.ts_us)
            .u64("dur", e.dur_us)
            .int("pid", 1)
            .u64("tid", e.tid as u64);
        if let Some((k, v)) = e.arg {
            o = o.raw("args", &json::Obj::new().u64(k, v).build());
        }
        o.build()
    });
    json::Obj::new()
        .raw("traceEvents", &json::array(rendered))
        .str("displayTimeUnit", "ms")
        .build()
}

/// Writes the Chrome trace to the configured path (whole buffer, so
/// repeated flushes during one process produce a complete file).
pub fn flush_to_path() {
    let path = PATH.lock().unwrap().clone();
    if let Some(path) = path {
        if let Err(e) = std::fs::write(&path, export_chrome() + "\n") {
            eprintln!("acr-obs: cannot write trace to {path}: {e}");
        }
    }
}

/// The canonical (scheduling-invariant) form of the buffered events:
/// timestamps, durations and thread ids scrubbed, one line per span,
/// sorted. Two runs of a deterministic workload produce equal canonical
/// traces at any worker-thread count.
pub fn canonical() -> Vec<String> {
    let events = EVENTS.lock().unwrap();
    let mut out: Vec<String> = events
        .iter()
        .map(|e| match e.arg {
            Some((k, v)) => format!("{}/{} {}={}", e.cat, e.name, k, v),
            None => format!("{}/{}", e.cat, e.name),
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test: the event buffer is process-global and other tests of
    // this crate must not race the enable flag.
    #[test]
    fn spans_record_and_export_when_enabled() {
        crate::set_flags(crate::TRACE);
        let _ = take();
        {
            let _a = span("alpha", "test").arg("n", 3);
            let _b = span("beta", "test");
        }
        assert_eq!(len(), 2);
        let doc = export_chrome();
        let v = json::parse(&doc).expect("chrome trace must parse");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        for e in evs {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_num().is_some());
            assert!(e.get("tid").unwrap().as_num().unwrap() >= 1.0);
        }
        let canon = canonical();
        assert_eq!(
            canon,
            vec!["test/alpha n=3".to_string(), "test/beta".into()]
        );

        // Disabled spans record nothing.
        crate::disable_all();
        let _ = take();
        {
            let _c = span("gamma", "test").arg("n", 1);
        }
        assert_eq!(len(), 0);
    }
}
