//! AED-style synthesis repair.
//!
//! Whole-configuration delta encoding: one boolean "disable" variable per
//! line plus finite-domain value variables for symbolizable parameters.
//! The search enumerates candidate assignments in increasing change size
//! (single deltas, then single value substitutions, then pairs, …) and
//! validates each against the **full** specification, so an accepted
//! repair is guaranteed regression-free — the correctness half of the
//! paper's §2.3 characterization. The scalability half is measured too:
//! the search space is `2^free_variables` and the validation `budget`
//! caps how much of it the method may explore before giving up.

use acr_cfg::{Edit, NetworkConfig, Patch, PlAction, Stmt};
use acr_core::space::aed_free_variables;
use acr_net_types::Prefix;
use acr_obs::metrics::Counter;
use acr_obs::{journal, json, span};
use acr_topo::Topology;
use acr_verify::{SimCache, Spec, Verifier};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

static RUNS: Counter = Counter::new("baseline.aed.runs");
static VALIDATIONS: Counter = Counter::new("baseline.aed.validations");

/// How an AED run ended.
#[derive(Debug, Clone)]
pub enum AedOutcome {
    /// A regression-free repair was synthesized.
    Fixed { patch: Patch },
    /// The validation budget ran out before a repair was found.
    BudgetExhausted,
    /// The enumerated space (up to the configured change size) held no
    /// repair.
    SpaceExhausted,
}

impl AedOutcome {
    /// Whether the run fixed the network.
    pub fn is_fixed(&self) -> bool {
        matches!(self, AedOutcome::Fixed { .. })
    }
}

/// Report of one AED run.
#[derive(Debug, Clone)]
pub struct AedReport {
    pub outcome: AedOutcome,
    /// Candidates validated.
    pub validations: usize,
    /// Free variables of the delta encoding — Figure 3b's exponent.
    pub free_vars: usize,
    pub wall: Duration,
}

/// Runs the baseline with a validation budget.
pub fn aed_repair(topo: &Topology, spec: &Spec, cfg: &NetworkConfig, budget: usize) -> AedReport {
    aed_repair_cached(topo, spec, cfg, budget, None)
}

/// Runs the baseline, serving repeat verifications from `cache` when one
/// is provided. The enumeration order, accepted repair, and validation
/// count are identical to the uncached run; only the wall time changes.
pub fn aed_repair_cached(
    topo: &Topology,
    spec: &Spec,
    cfg: &NetworkConfig,
    budget: usize,
    cache: Option<&SimCache>,
) -> AedReport {
    let _s = span!("baseline.aed", "baseline");
    let report = aed_inner(topo, spec, cfg, budget, cache);
    RUNS.inc();
    VALIDATIONS.add(report.validations as u64);
    if acr_obs::enabled(acr_obs::JOURNAL) {
        let (outcome, patch) = match &report.outcome {
            AedOutcome::Fixed { patch } => ("fixed", patch.to_string()),
            AedOutcome::BudgetExhausted => ("budget_exhausted", String::new()),
            AedOutcome::SpaceExhausted => ("space_exhausted", String::new()),
        };
        journal::emit(
            &json::Obj::new()
                .str("event", "baseline_run")
                .u64("ts_us", journal::now_us())
                .str("baseline", "aed")
                .str("outcome", outcome)
                .str("patch", &patch)
                .int("validations", report.validations)
                .int("free_vars", report.free_vars)
                .build(),
        );
    }
    report
}

fn aed_inner(
    topo: &Topology,
    spec: &Spec,
    cfg: &NetworkConfig,
    budget: usize,
    cache: Option<&SimCache>,
) -> AedReport {
    let start = Instant::now();
    let free_vars = aed_free_variables(cfg);
    let verifier = Verifier::new(topo, spec);
    let run = |c: &NetworkConfig| match cache {
        Some(cache) => verifier.run_full_cached(c, cache),
        None => verifier.run_full(c),
    };
    let (v0, _) = run(cfg);
    if v0.all_passed() {
        return AedReport {
            outcome: AedOutcome::Fixed {
                patch: Patch::new(),
            },
            validations: 0,
            free_vars,
            wall: start.elapsed(),
        };
    }

    // The atomic change alphabet: disable any single line, or substitute
    // any symbolizable prefix parameter.
    let universe: BTreeSet<Prefix> = topo.attachments().map(|(_, p)| p).collect();
    let mut atoms: Vec<Patch> = Vec::new();
    for line in cfg.all_lines() {
        let Some(stmt) = cfg.stmt(line) else { continue };
        if !stmt.is_header() {
            atoms.push(Patch::single(Edit::Delete {
                router: line.router,
                index: line.index(),
            }));
        }
        if let Stmt::PrefixListEntry {
            list,
            index: pl_index,
            ..
        } = stmt
        {
            for p in &universe {
                atoms.push(Patch::single(Edit::Replace {
                    router: line.router,
                    index: line.index(),
                    stmt: Stmt::PrefixListEntry {
                        list: list.clone(),
                        index: *pl_index,
                        action: PlAction::Permit,
                        prefix: *p,
                        ge: None,
                        le: None,
                    },
                }));
            }
            // Value variables also admit *adding* an entry to the list.
            for p in &universe {
                atoms.push(Patch::single(Edit::Insert {
                    router: line.router,
                    index: line.index(),
                    stmt: Stmt::PrefixListEntry {
                        list: list.clone(),
                        index: *pl_index + 1,
                        action: PlAction::Permit,
                        prefix: *p,
                        ge: None,
                        le: None,
                    },
                }));
            }
        }
    }

    // Increasing change size: singletons, then pairs (the systematic
    // enumeration whose blow-up Figure 3b depicts). A helper validates one
    // combined candidate and reports success / budget exhaustion.
    let mut validations = 0usize;
    let check = |patch: Patch, validations: &mut usize| -> Option<AedReport> {
        if *validations >= budget {
            return Some(AedReport {
                outcome: AedOutcome::BudgetExhausted,
                validations: *validations,
                free_vars,
                wall: start.elapsed(),
            });
        }
        let Ok(candidate) = patch.apply_cloned(cfg) else {
            return None;
        };
        *validations += 1;
        let (v, _) = run(&candidate);
        if v.all_passed() {
            Some(AedReport {
                outcome: AedOutcome::Fixed { patch },
                validations: *validations,
                free_vars,
                wall: start.elapsed(),
            })
        } else {
            None
        }
    };
    for atom in &atoms {
        if let Some(report) = check(atom.clone(), &mut validations) {
            return report;
        }
    }
    for i in 0..atoms.len() {
        for j in (i + 1)..atoms.len() {
            if let Some(report) = check(atoms[i].concat(&atoms[j]), &mut validations) {
                return report;
            }
        }
    }
    AedReport {
        outcome: AedOutcome::SpaceExhausted,
        validations,
        free_vars,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_workloads::{generate, try_inject, FaultType};

    #[test]
    fn healthy_network_is_zero_cost() {
        let net = generate(&acr_topo::gen::wan(3, 3));
        let report = aed_repair(&net.topo, &net.spec, &net.cfg, 1000);
        assert!(report.outcome.is_fixed());
        assert_eq!(report.validations, 0);
        assert!(report.free_vars > 0);
    }

    /// A single-line fault sits within reach of the singleton sweep, and
    /// the accepted repair is regression-free by construction.
    #[test]
    fn fixes_single_line_fault_correctly() {
        let net = generate(&acr_topo::gen::wan(3, 3));
        let inc = try_inject(FaultType::StaleRouteMap, &net, 0).expect("injectable");
        let report = aed_repair(&net.topo, &net.spec, &inc.broken, 20_000);
        assert!(report.outcome.is_fixed(), "{:?}", report.outcome);
        let AedOutcome::Fixed { patch } = &report.outcome else {
            unreachable!()
        };
        let repaired = patch.apply_cloned(&inc.broken).unwrap();
        let verifier = acr_verify::Verifier::new(&net.topo, &net.spec);
        let (v, _) = verifier.run_full(&repaired);
        assert!(v.all_passed());
    }

    /// A tight budget exhausts on anything nontrivial — the paper's
    /// scalability critique, measurable.
    #[test]
    fn budget_exhaustion_is_reported() {
        let net = generate(&acr_topo::gen::wan(4, 8));
        let inc = try_inject(FaultType::MissingPeerGroup, &net, 0).expect("injectable");
        let report = aed_repair(&net.topo, &net.spec, &inc.broken, 25);
        assert!(
            matches!(report.outcome, AedOutcome::BudgetExhausted),
            "{:?}",
            report.outcome
        );
        assert_eq!(report.validations, 25);
    }
}
