//! # acr-baselines
//!
//! The two repair families the paper positions ACR against (§2.3):
//!
//! - [`metaprov`] — a MetaProv-style **provenance** method: trace the
//!   failed behaviour's provenance to its leaves, mutate one leaf at a
//!   time, and accept the first mutation that clears the *originally
//!   failing* tests. Efficient (the search space is the provenance
//!   leaves, Figure 3a) but **not necessarily correct**: it never checks
//!   the rest of the specification, so the accepted update may regress
//!   other intents — which the report measures.
//! - [`aed`] — an AED-style **synthesis** method: every configuration
//!   line gets a delta (disable) variable and every symbolizable
//!   parameter a finite-domain value variable; candidates are enumerated
//!   in increasing change size and validated against the *full*
//!   specification. Correct by construction, but the search space is
//!   `2^(free variables)` (Figure 3b) and the method routinely exhausts
//!   its budget on multi-line faults — the paper's scalability critique.
//!
//! Both share ACR's verifier, so comparisons are apples-to-apples.

pub mod aed;
pub mod metaprov;
pub mod strategies;

pub use aed::{aed_repair, aed_repair_cached, AedOutcome, AedReport};
pub use metaprov::{metaprov_repair, metaprov_repair_cached, MetaProvReport};
pub use strategies::{AedStrategy, MetaProvStrategy};
