//! The baselines behind the pluggable [`RepairStrategy`] interface.
//!
//! The scenario benchmark scores every repair approach through one
//! trait; these adapters put MetaProv and AED behind it. Both verdicts
//! are harness-judged ([`StrategyVerdict::judge`] re-verifies the
//! proposed patch with a fresh full simulation), which is exactly how
//! MetaProv's regression-blindness becomes a measured number instead of
//! a self-reported success.

use crate::aed::{aed_repair, AedOutcome};
use crate::metaprov::metaprov_repair;
use acr_cfg::NetworkConfig;
use acr_core::{RepairStrategy, StrategyVerdict};
use acr_topo::Topology;
use acr_verify::Spec;
use std::time::Instant;

/// MetaProv-style provenance repair as a pluggable strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetaProvStrategy;

impl RepairStrategy for MetaProvStrategy {
    fn name(&self) -> &str {
        "metaprov"
    }

    fn attempt(&self, topo: &Topology, spec: &Spec, broken: &NetworkConfig) -> StrategyVerdict {
        let start = Instant::now();
        let r = metaprov_repair(topo, spec, broken);
        let wall = start.elapsed();
        StrategyVerdict::judge(topo, spec, broken, r.patch, r.candidates_tried, wall)
    }
}

/// AED-style synthesis repair as a pluggable strategy.
#[derive(Debug, Clone, Copy)]
pub struct AedStrategy {
    /// Validation budget per incident (Figure 3b's scalability knob).
    pub budget: usize,
}

impl Default for AedStrategy {
    fn default() -> Self {
        AedStrategy { budget: 400 }
    }
}

impl RepairStrategy for AedStrategy {
    fn name(&self) -> &str {
        "aed"
    }

    fn attempt(&self, topo: &Topology, spec: &Spec, broken: &NetworkConfig) -> StrategyVerdict {
        let r = aed_repair(topo, spec, broken, self.budget);
        let patch = match r.outcome {
            AedOutcome::Fixed { patch } => Some(patch),
            AedOutcome::BudgetExhausted | AedOutcome::SpaceExhausted => None,
        };
        StrategyVerdict::judge(topo, spec, broken, patch, r.validations, r.wall)
    }
}
