//! MetaProv-style provenance repair.
//!
//! The method of the paper's §2.3 critique: identify the provenance
//! leaves of the failing behaviour, mutate the configuration value behind
//! one leaf at a time, and accept the first mutation under which the
//! originally failing tests pass — *without* re-checking the other
//! intents. The returned report measures the regressions such an update
//! introduces, which is exactly what the paper's Figure 2 example
//! illustrates (patching router A alone leaves a C–S problem behind).

use acr_cfg::{Edit, NetworkConfig, Patch, PlAction, Stmt};
use acr_net_types::Prefix;
use acr_obs::metrics::Counter;
use acr_obs::{journal, json, span};
use acr_prov::{Provenance, TestId};
use acr_topo::Topology;
use acr_verify::{SimCache, Spec, Verifier};
use std::collections::BTreeSet;

static RUNS: Counter = Counter::new("baseline.metaprov.runs");
static CANDIDATES: Counter = Counter::new("baseline.metaprov.candidates");

/// Result of a MetaProv-style repair attempt.
#[derive(Debug, Clone)]
pub struct MetaProvReport {
    /// Whether some mutation made the originally failing tests pass.
    pub fixed_target: bool,
    /// The accepted patch, when one was found.
    pub patch: Option<Patch>,
    /// Tests that passed before the patch and fail after it — the
    /// regressions provenance methods do not guard against.
    pub regressions: usize,
    /// Failures remaining after the patch (including regressions).
    pub residual_failures: usize,
    /// The method's search space: provenance leaves of the failure
    /// (Figure 3a's N).
    pub search_space: usize,
    /// Candidate mutations validated.
    pub candidates_tried: usize,
}

/// Runs the baseline.
pub fn metaprov_repair(topo: &Topology, spec: &Spec, cfg: &NetworkConfig) -> MetaProvReport {
    metaprov_repair_cached(topo, spec, cfg, None)
}

/// Runs the baseline, serving repeat verifications from `cache` when one
/// is provided. Candidate enumeration, acceptance, and the report are
/// identical to the uncached run; only the wall time changes.
pub fn metaprov_repair_cached(
    topo: &Topology,
    spec: &Spec,
    cfg: &NetworkConfig,
    cache: Option<&SimCache>,
) -> MetaProvReport {
    let _s = span!("baseline.metaprov", "baseline");
    let report = metaprov_inner(topo, spec, cfg, cache);
    RUNS.inc();
    CANDIDATES.add(report.candidates_tried as u64);
    if acr_obs::enabled(acr_obs::JOURNAL) {
        journal::emit(
            &json::Obj::new()
                .str("event", "baseline_run")
                .u64("ts_us", journal::now_us())
                .str("baseline", "metaprov")
                .bool("fixed_target", report.fixed_target)
                .str(
                    "patch",
                    &report
                        .patch
                        .as_ref()
                        .map(|p| p.to_string())
                        .unwrap_or_default(),
                )
                .int("regressions", report.regressions)
                .int("residual_failures", report.residual_failures)
                .int("search_space", report.search_space)
                .int("candidates_tried", report.candidates_tried)
                .build(),
        );
    }
    report
}

fn metaprov_inner(
    topo: &Topology,
    spec: &Spec,
    cfg: &NetworkConfig,
    cache: Option<&SimCache>,
) -> MetaProvReport {
    let verifier = Verifier::new(topo, spec);
    let run = |c: &NetworkConfig| match cache {
        Some(cache) => verifier.run_full_cached(c, cache),
        None => verifier.run_full(c),
    };
    let (v0, out0) = run(cfg);
    let originally_failing: BTreeSet<TestId> = v0.failures().map(|r| r.id).collect();
    if originally_failing.is_empty() {
        return MetaProvReport {
            fixed_target: true,
            patch: Some(Patch::new()),
            regressions: 0,
            residual_failures: 0,
            search_space: 0,
            candidates_tried: 0,
        };
    }
    let prov = Provenance::new(&out0.arena);
    let roots: Vec<_> = v0
        .failures()
        .flat_map(|r| r.deriv_roots.iter().copied())
        .collect();
    let leaves = prov.leaves(roots.clone());
    let search_space = leaves.len();
    let mut leaf_lines: Vec<acr_cfg::LineId> = prov.leaf_lines(roots).into_iter().collect();
    leaf_lines.sort();

    // Candidate value universe for substitutions: every prefix the tests
    // care about.
    let universe: BTreeSet<Prefix> = v0
        .records
        .iter()
        .flat_map(|r| {
            topo.attachments()
                .map(|(_, p)| p)
                .filter(move |p| p.contains(r.flow.dst))
        })
        .collect();

    let mut tried = 0usize;
    for line in leaf_lines {
        let Some(stmt) = cfg.stmt(line) else { continue };
        for candidate in mutations(stmt, line, &universe) {
            tried += 1;
            let Ok(patched) = candidate.apply_cloned(cfg) else {
                continue;
            };
            let (v1, _) = run(&patched);
            let target_fixed = v1
                .records
                .iter()
                .filter(|r| originally_failing.contains(&r.id))
                .all(|r| r.passed);
            if target_fixed {
                // Accepted! Only now do we (the evaluation harness, not
                // the method) measure what else broke.
                let regressions = v1
                    .failures()
                    .filter(|r| !originally_failing.contains(&r.id))
                    .count();
                return MetaProvReport {
                    fixed_target: true,
                    patch: Some(candidate),
                    regressions,
                    residual_failures: v1.failed_count(),
                    search_space,
                    candidates_tried: tried,
                };
            }
        }
    }
    MetaProvReport {
        fixed_target: false,
        patch: None,
        regressions: 0,
        residual_failures: v0.failed_count(),
        search_space,
        candidates_tried: tried,
    }
}

/// Single-line value mutations for a leaf statement: delete it, or swap
/// its principal value for another drawn from the universe.
fn mutations(stmt: &Stmt, line: acr_cfg::LineId, universe: &BTreeSet<Prefix>) -> Vec<Patch> {
    let router = line.router;
    let index = line.index();
    let mut out = Vec::new();
    if !stmt.is_header() {
        out.push(Patch::single(Edit::Delete { router, index }));
    }
    match stmt {
        Stmt::PrefixListEntry {
            list,
            index: pl_index,
            ge,
            le,
            ..
        } => {
            for p in universe {
                out.push(Patch::single(Edit::Replace {
                    router,
                    index,
                    stmt: Stmt::PrefixListEntry {
                        list: list.clone(),
                        index: *pl_index,
                        action: PlAction::Permit,
                        prefix: *p,
                        ge: *ge,
                        le: *le,
                    },
                }));
            }
        }
        Stmt::Network(_) => {
            for p in universe {
                out.push(Patch::single(Edit::Replace {
                    router,
                    index,
                    stmt: Stmt::Network(*p),
                }));
            }
        }
        Stmt::StaticRoute { next_hop, .. } => {
            for p in universe {
                out.push(Patch::single(Edit::Replace {
                    router,
                    index,
                    stmt: Stmt::StaticRoute {
                        prefix: *p,
                        next_hop: *next_hop,
                    },
                }));
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_workloads::{fig2::fig2_incident, generate, try_inject, FaultType};

    #[test]
    fn healthy_network_needs_no_repair() {
        let fig2 = fig2_incident();
        let report = metaprov_repair(&fig2.topo, &fig2.spec, &fig2.intended);
        assert!(report.fixed_target);
        assert_eq!(report.candidates_tried, 0);
    }

    /// The paper's §2.3 story: on the Figure 2 incident, a single-line
    /// provenance fix either fails outright or leaves the network broken.
    #[test]
    fn fig2_single_line_fix_is_insufficient_or_regressive() {
        let fig2 = fig2_incident();
        let report = metaprov_repair(&fig2.topo, &fig2.spec, &fig2.broken);
        assert!(report.search_space > 0);
        if report.fixed_target {
            assert!(
                report.regressions > 0,
                "a single-line fix of a two-device fault must regress something: {report:?}"
            );
        }
    }

    /// Single-line faults are where provenance methods shine: the leaf is
    /// the fault.
    #[test]
    fn repairs_simple_prefix_list_fault() {
        let net = generate(&acr_topo::gen::wan(4, 8));
        let inc = try_inject(FaultType::WrongOverrideAsn, &net, 0).expect("injectable");
        let report = metaprov_repair(&net.topo, &net.spec, &inc.broken);
        // Deleting the wrong-AS override line restores correctness (the
        // overwrite falls away entirely, which still hides nothing — the
        // route is then denied or carries 64999; either way MetaProv may
        // or may not fix it, but it must at least explore a non-empty
        // space).
        assert!(report.search_space > 0);
        assert!(report.candidates_tried > 0);
    }
}
