//! The typed solver facade: variables, assertion, solving, models, MSS.

use crate::dpll::{self, Cnf, DpllStats, Lit};
use crate::formula::{Atom, Formula, VarId};
use acr_net_types::Prefix;
use std::collections::{BTreeMap, BTreeSet};

/// Variable definitions.
#[derive(Debug, Clone)]
enum VarDef {
    Bool { base: u32 },
    Int { base: u32, domain: Vec<i64> },
    PrefixSet { base: u32, universe: Vec<Prefix> },
}

/// A satisfying assignment, typed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Model {
    pub bools: BTreeMap<VarId, bool>,
    pub ints: BTreeMap<VarId, i64>,
    pub sets: BTreeMap<VarId, BTreeSet<Prefix>>,
}

/// Aggregate statistics (exposed for the Figure 3 search-space study).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    pub boolean_vars: usize,
    pub clauses: usize,
    pub decisions: u64,
    pub propagations: u64,
}

/// The finite-domain constraint solver.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    vars: Vec<VarDef>,
    cnf: Cnf,
    stats: DpllStats,
}

impl Solver {
    /// A fresh, empty solver.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Declares a boolean variable.
    pub fn new_bool(&mut self) -> VarId {
        let base = self.cnf.fresh();
        self.vars.push(VarDef::Bool { base });
        VarId(self.vars.len() as u32 - 1)
    }

    /// Declares an integer variable over an explicit finite domain.
    ///
    /// # Panics
    /// Panics on an empty domain.
    pub fn new_int(&mut self, domain: impl IntoIterator<Item = i64>) -> VarId {
        let mut domain: Vec<i64> = domain.into_iter().collect();
        domain.sort_unstable();
        domain.dedup();
        assert!(!domain.is_empty(), "integer domain must be non-empty");
        let base = self.cnf.num_vars;
        for _ in 0..domain.len() {
            self.cnf.fresh();
        }
        // Exactly-one: at least one …
        self.cnf.add(
            (0..domain.len())
                .map(|i| dpll::pos(base + i as u32))
                .collect(),
        );
        // … and pairwise at most one.
        for i in 0..domain.len() {
            for j in (i + 1)..domain.len() {
                self.cnf
                    .add(vec![dpll::neg(base + i as u32), dpll::neg(base + j as u32)]);
            }
        }
        self.vars.push(VarDef::Int { base, domain });
        VarId(self.vars.len() as u32 - 1)
    }

    /// Declares a prefix-set variable over an explicit finite universe.
    pub fn new_prefix_set(&mut self, universe: impl IntoIterator<Item = Prefix>) -> VarId {
        let mut universe: Vec<Prefix> = universe.into_iter().collect();
        universe.sort();
        universe.dedup();
        let base = self.cnf.num_vars;
        for _ in 0..universe.len() {
            self.cnf.fresh();
        }
        self.vars.push(VarDef::PrefixSet { base, universe });
        VarId(self.vars.len() as u32 - 1)
    }

    /// Number of free boolean variables in the grounding — the paper's
    /// Figure 3b measures AED's search space as `2^(free variables)`.
    pub fn boolean_var_count(&self) -> usize {
        self.cnf.num_vars as usize
    }

    /// Asserts a formula (hard constraint).
    pub fn assert(&mut self, f: Formula) {
        let lit = self.compile(&f);
        self.cnf.add(vec![lit]);
    }

    /// Tseitin-compiles a formula, returning a literal equivalent to it.
    fn compile(&mut self, f: &Formula) -> Lit {
        match f {
            Formula::True => {
                let v = self.cnf.fresh();
                self.cnf.add(vec![dpll::pos(v)]);
                dpll::pos(v)
            }
            Formula::False => {
                let v = self.cnf.fresh();
                self.cnf.add(vec![dpll::neg(v)]);
                dpll::pos(v)
            }
            Formula::Atom(a) => self.atom_lit(a),
            Formula::Not(inner) => dpll::negate(self.compile(inner)),
            Formula::And(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.compile(g)).collect();
                let out = self.cnf.fresh();
                // out -> each lit
                for &l in &lits {
                    self.cnf.add(vec![dpll::neg(out), l]);
                }
                // all lits -> out
                let mut clause: Vec<Lit> = lits.iter().map(|&l| dpll::negate(l)).collect();
                clause.push(dpll::pos(out));
                self.cnf.add(clause);
                dpll::pos(out)
            }
            Formula::Or(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.compile(g)).collect();
                let out = self.cnf.fresh();
                // each lit -> out
                for &l in &lits {
                    self.cnf.add(vec![dpll::negate(l), dpll::pos(out)]);
                }
                // out -> some lit
                let mut clause = lits;
                clause.push(dpll::neg(out));
                self.cnf.add(clause);
                dpll::pos(out)
            }
        }
    }

    /// The boolean literal of an atom. Out-of-domain atoms compile to a
    /// constant-false literal.
    fn atom_lit(&mut self, atom: &Atom) -> Lit {
        let false_lit = |cnf: &mut Cnf| {
            let v = cnf.fresh();
            cnf.add(vec![dpll::neg(v)]);
            dpll::pos(v)
        };
        match atom {
            Atom::Bool(v) => match &self.vars[v.0 as usize] {
                VarDef::Bool { base } => dpll::pos(*base),
                _ => panic!("{v} is not a boolean variable"),
            },
            Atom::IntEq(v, value) => match &self.vars[v.0 as usize] {
                VarDef::Int { base, domain } => match domain.iter().position(|d| d == value) {
                    Some(i) => dpll::pos(*base + i as u32),
                    None => false_lit(&mut self.cnf),
                },
                _ => panic!("{v} is not an integer variable"),
            },
            Atom::Member(v, p) => match &self.vars[v.0 as usize] {
                VarDef::PrefixSet { base, universe } => {
                    match universe.iter().position(|u| u == p) {
                        Some(i) => dpll::pos(*base + i as u32),
                        None => false_lit(&mut self.cnf),
                    }
                }
                _ => panic!("{v} is not a prefix-set variable"),
            },
        }
    }

    /// Solves the asserted constraints; `None` when unsatisfiable.
    pub fn solve(&mut self) -> Option<Model> {
        self.solve_with(&[])
    }

    fn solve_with(&mut self, assumptions: &[Lit]) -> Option<Model> {
        let assignment = dpll::solve(&self.cnf, assumptions, &mut self.stats)?;
        let mut model = Model::default();
        for (i, def) in self.vars.iter().enumerate() {
            let id = VarId(i as u32);
            match def {
                VarDef::Bool { base } => {
                    model.bools.insert(id, assignment[*base as usize]);
                }
                VarDef::Int { base, domain } => {
                    let pos = (0..domain.len())
                        .find(|&k| assignment[*base as usize + k])
                        .expect("exactly-one guarantees a value");
                    model.ints.insert(id, domain[pos]);
                }
                VarDef::PrefixSet { base, universe } => {
                    let set: BTreeSet<Prefix> = universe
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| assignment[*base as usize + *k])
                        .map(|(_, p)| *p)
                        .collect();
                    model.sets.insert(id, set);
                }
            }
        }
        Some(model)
    }

    /// Grow-style **maximal satisfiable subset**: returns a model of the
    /// hard constraints plus a maximal set of the `soft` formulas
    /// (indices), or `None` when the hard constraints alone are unsat.
    /// The complement of the returned index set is a correction set —
    /// the CEL-style localization primitive.
    pub fn maximal_satisfiable_subset(&mut self, soft: &[Formula]) -> Option<(Model, Vec<usize>)> {
        // Compile each soft formula once; selectors are their literals.
        let lits: Vec<Lit> = soft.iter().map(|f| self.compile(f)).collect();
        // Hard constraints must hold on their own.
        self.solve_with(&[])?;
        let mut chosen: Vec<Lit> = Vec::new();
        let mut kept = Vec::new();
        for (i, &lit) in lits.iter().enumerate() {
            chosen.push(lit);
            if dpll::solve(&self.cnf, &chosen, &mut self.stats).is_none() {
                chosen.pop();
            } else {
                kept.push(i);
            }
        }
        let model = self.solve_with(&chosen).expect("grow kept it satisfiable");
        Some((model, kept))
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolveStats {
        SolveStats {
            boolean_vars: self.cnf.num_vars as usize,
            clauses: self.cnf.clauses.len(),
            decisions: self.stats.decisions,
            propagations: self.stats.propagations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// The paper's §5 worked example: solve P ∧ ¬F where
    /// P: 10.70/16 ∈ var ∧ 20.0/16 ∈ var and F: 10.0/16 ∈ var.
    #[test]
    fn worked_example_prefix_set() {
        let mut s = Solver::new();
        let var = s.new_prefix_set([p("10.70.0.0/16"), p("20.0.0.0/16"), p("10.0.0.0/16")]);
        s.assert(Formula::and([
            Formula::member(var, p("10.70.0.0/16")),
            Formula::member(var, p("20.0.0.0/16")),
            Formula::not(Formula::member(var, p("10.0.0.0/16"))),
        ]));
        let m = s.solve().expect("satisfiable");
        let set = &m.sets[&var];
        assert!(set.contains(&p("10.70.0.0/16")));
        assert!(set.contains(&p("20.0.0.0/16")));
        assert!(!set.contains(&p("10.0.0.0/16")));
    }

    #[test]
    fn conflicting_membership_is_unsat() {
        let mut s = Solver::new();
        let var = s.new_prefix_set([p("10.0.0.0/16")]);
        s.assert(Formula::member(var, p("10.0.0.0/16")));
        s.assert(Formula::not(Formula::member(var, p("10.0.0.0/16"))));
        assert!(s.solve().is_none());
    }

    #[test]
    fn out_of_universe_membership_is_false() {
        let mut s = Solver::new();
        let var = s.new_prefix_set([p("10.0.0.0/16")]);
        s.assert(Formula::not(Formula::member(var, p("99.0.0.0/8"))));
        assert!(s.solve().is_some());
        let mut s = Solver::new();
        let var = s.new_prefix_set([p("10.0.0.0/16")]);
        s.assert(Formula::member(var, p("99.0.0.0/8")));
        assert!(s.solve().is_none());
    }

    #[test]
    fn int_exactly_one_semantics() {
        let mut s = Solver::new();
        let v = s.new_int([100, 200, 300]);
        s.assert(Formula::not(Formula::int_eq(v, 100)));
        s.assert(Formula::not(Formula::int_eq(v, 300)));
        let m = s.solve().unwrap();
        assert_eq!(m.ints[&v], 200);
        s.assert(Formula::not(Formula::int_eq(v, 200)));
        assert!(s.solve().is_none(), "domain exhausted");
    }

    #[test]
    fn int_out_of_domain_eq_is_false() {
        let mut s = Solver::new();
        let v = s.new_int([1, 2]);
        s.assert(Formula::int_eq(v, 99));
        assert!(s.solve().is_none());
    }

    #[test]
    fn disjunction_over_theories() {
        let mut s = Solver::new();
        let b = s.new_bool();
        let v = s.new_int([7, 8]);
        s.assert(Formula::or([Formula::bool_true(b), Formula::int_eq(v, 7)]));
        s.assert(Formula::not(Formula::bool_true(b)));
        let m = s.solve().unwrap();
        assert!(!m.bools[&b]);
        assert_eq!(m.ints[&v], 7);
    }

    #[test]
    fn mss_grow_finds_maximal_subset() {
        let mut s = Solver::new();
        let a = s.new_bool();
        let b = s.new_bool();
        // Hard: a ∨ b. Softs: ¬a, ¬b, a — softs 0 and 2 conflict.
        s.assert(Formula::or([Formula::bool_true(a), Formula::bool_true(b)]));
        let softs = vec![
            Formula::not(Formula::bool_true(a)),
            Formula::not(Formula::bool_true(b)),
            Formula::bool_true(a),
        ];
        let (model, kept) = s.maximal_satisfiable_subset(&softs).unwrap();
        // Greedy grow keeps soft 0 (¬a), then soft 1 (¬b) conflicts with
        // the hard clause, then soft 2 conflicts with soft 0.
        assert_eq!(kept, vec![0]);
        assert!(!model.bools[&a] && model.bools[&b]);
    }

    #[test]
    fn mss_with_unsat_hards_is_none() {
        let mut s = Solver::new();
        let a = s.new_bool();
        s.assert(Formula::bool_true(a));
        s.assert(Formula::not(Formula::bool_true(a)));
        assert!(s.maximal_satisfiable_subset(&[Formula::True]).is_none());
    }

    #[test]
    fn stats_expose_grounding_size() {
        let mut s = Solver::new();
        let _ = s.new_prefix_set([p("10.0.0.0/16"), p("20.0.0.0/16")]);
        let _ = s.new_int([1, 2, 3]);
        let _ = s.new_bool();
        assert_eq!(s.boolean_var_count(), 2 + 3 + 1);
        assert!(s.stats().clauses >= 4, "exactly-one clauses present");
    }

    #[test]
    fn empty_prefix_set_universe_is_fine() {
        let mut s = Solver::new();
        let v = s.new_prefix_set([]);
        let m = s.solve().unwrap();
        assert!(m.sets[&v].is_empty());
    }
}
