//! Formulas over typed finite-domain atoms.

use acr_net_types::Prefix;
use std::fmt;

/// A typed solver variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An atomic proposition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A boolean variable is true.
    Bool(VarId),
    /// An integer variable equals a value (which must be in its domain;
    /// equality with an out-of-domain value is simply false).
    IntEq(VarId, i64),
    /// A prefix-set variable contains a prefix (must be in its universe;
    /// membership of an out-of-universe prefix is simply false).
    Member(VarId, Prefix),
}

/// A propositional formula over atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    True,
    False,
    Atom(Atom),
    Not(Box<Formula>),
    And(Vec<Formula>),
    Or(Vec<Formula>),
}

impl Formula {
    /// Atom shorthand: boolean variable is true.
    pub fn bool_true(v: VarId) -> Formula {
        Formula::Atom(Atom::Bool(v))
    }

    /// Atom shorthand: integer equality.
    pub fn int_eq(v: VarId, value: i64) -> Formula {
        Formula::Atom(Atom::IntEq(v, value))
    }

    /// Atom shorthand: prefix membership.
    pub fn member(v: VarId, p: Prefix) -> Formula {
        Formula::Atom(Atom::Member(v, p))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `a → b` as `¬a ∨ b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Or(vec![Formula::not(a), b])
    }

    /// Conjunction of an iterator (flattens nested `And`s).
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().unwrap(),
            _ => Formula::And(out),
        }
    }

    /// Disjunction of an iterator (flattens nested `Or`s).
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().unwrap(),
            _ => Formula::Or(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_flatten_and_simplify() {
        let a = Formula::bool_true(VarId(0));
        let b = Formula::bool_true(VarId(1));
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(Formula::and([a.clone()]), a);
        let nested = Formula::and([Formula::and([a.clone(), b.clone()]), Formula::True]);
        assert_eq!(nested, Formula::And(vec![a.clone(), b.clone()]));
        let imp = Formula::implies(a.clone(), b.clone());
        assert_eq!(imp, Formula::Or(vec![Formula::not(a), b]));
    }
}
