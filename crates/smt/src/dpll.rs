//! A compact CNF DPLL engine with unit propagation.
//!
//! Literals are encoded as `2*var` (positive) / `2*var + 1` (negative);
//! a clause is a `Vec<u32>` of literals. The engine is deliberately plain
//! (no watched literals, no clause learning): ACR's grounded problems are
//! tens to a few hundred booleans, where simplicity beats machinery.

/// A literal: variable index with sign.
pub type Lit = u32;

/// Positive literal of variable `v`.
pub fn pos(v: u32) -> Lit {
    v * 2
}

/// Negative literal of variable `v`.
pub fn neg(v: u32) -> Lit {
    v * 2 + 1
}

/// Variable of a literal.
pub fn var_of(l: Lit) -> u32 {
    l / 2
}

/// Whether a literal is positive.
pub fn is_pos(l: Lit) -> bool {
    l.is_multiple_of(2)
}

/// Negates a literal.
pub fn negate(l: Lit) -> Lit {
    l ^ 1
}

/// A CNF instance.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    pub num_vars: u32,
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Adds a clause; an empty clause makes the instance trivially unsat.
    pub fn add(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }
}

use acr_obs::metrics::Counter;

static DPLL_SOLVES: Counter = Counter::new("smt.dpll.solves");
static DPLL_DECISIONS: Counter = Counter::new("smt.dpll.decisions");
static DPLL_PROPAGATIONS: Counter = Counter::new("smt.dpll.propagations");
static DPLL_BACKTRACKS: Counter = Counter::new("smt.dpll.backtracks");

/// Decision statistics of one solve call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpllStats {
    pub decisions: u64,
    pub propagations: u64,
    /// Branches abandoned after a conflict (a decision whose subtree
    /// refuted).
    pub backtracks: u64,
}

/// Solves the CNF; returns a full assignment (indexed by variable) or
/// `None` if unsatisfiable. `assumptions` are literals forced true.
pub fn solve(cnf: &Cnf, assumptions: &[Lit], stats: &mut DpllStats) -> Option<Vec<bool>> {
    let before = *stats;
    let result = solve_inner(cnf, assumptions, stats);
    DPLL_SOLVES.inc();
    DPLL_DECISIONS.add(stats.decisions - before.decisions);
    DPLL_PROPAGATIONS.add(stats.propagations - before.propagations);
    DPLL_BACKTRACKS.add(stats.backtracks - before.backtracks);
    result
}

fn solve_inner(cnf: &Cnf, assumptions: &[Lit], stats: &mut DpllStats) -> Option<Vec<bool>> {
    let n = cnf.num_vars as usize;
    let mut assign: Vec<Option<bool>> = vec![None; n];
    let mut trail: Vec<u32> = Vec::new();

    // Apply assumptions as the root level.
    for &lit in assumptions {
        match assign[var_of(lit) as usize] {
            Some(v) if v != is_pos(lit) => return None,
            Some(_) => {}
            None => {
                assign[var_of(lit) as usize] = Some(is_pos(lit));
                trail.push(var_of(lit));
            }
        }
    }
    if !propagate(cnf, &mut assign, &mut trail, stats) {
        return None;
    }
    if search(cnf, &mut assign, stats) {
        Some(assign.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Unit propagation to fixpoint; false on conflict.
fn propagate(
    cnf: &Cnf,
    assign: &mut [Option<bool>],
    trail: &mut Vec<u32>,
    stats: &mut DpllStats,
) -> bool {
    loop {
        let mut changed = false;
        for clause in &cnf.clauses {
            let mut satisfied = false;
            let mut unassigned: Option<Lit> = None;
            let mut unassigned_count = 0;
            for &lit in clause {
                match assign[var_of(lit) as usize] {
                    Some(v) if v == is_pos(lit) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        unassigned = Some(lit);
                        unassigned_count += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => return false, // conflict
                1 => {
                    let lit = unassigned.unwrap();
                    assign[var_of(lit) as usize] = Some(is_pos(lit));
                    trail.push(var_of(lit));
                    stats.propagations += 1;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return true;
        }
    }
}

/// Recursive DPLL search over the remaining unassigned variables.
fn search(cnf: &Cnf, assign: &mut Vec<Option<bool>>, stats: &mut DpllStats) -> bool {
    let Some(v) = assign.iter().position(|a| a.is_none()) else {
        // Full assignment: verify (propagation guarantees no conflict, but
        // clauses with all-unassigned vars decided here need a final check).
        return cnf.clauses.iter().all(|c| {
            c.iter()
                .any(|&l| assign[var_of(l) as usize] == Some(is_pos(l)))
        });
    };
    // Try `false` first: models are minimal-ish (unconstrained set
    // memberships stay out, unconstrained booleans stay off), which is
    // what repair synthesis wants from an under-constrained hole.
    for value in [false, true] {
        stats.decisions += 1;
        let mut local = assign.clone();
        let mut trail = Vec::new();
        local[v] = Some(value);
        trail.push(v as u32);
        if propagate(cnf, &mut local, &mut trail, stats) && search(cnf, &mut local, stats) {
            *assign = local;
            return true;
        }
        stats.backtracks += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_simple(cnf: &Cnf) -> Option<Vec<bool>> {
        solve(cnf, &[], &mut DpllStats::default())
    }

    #[test]
    fn literal_encoding() {
        assert_eq!(var_of(pos(3)), 3);
        assert_eq!(var_of(neg(3)), 3);
        assert!(is_pos(pos(3)));
        assert!(!is_pos(neg(3)));
        assert_eq!(negate(pos(3)), neg(3));
        assert_eq!(negate(neg(3)), pos(3));
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut cnf = Cnf::default();
        let a = cnf.fresh();
        cnf.add(vec![pos(a)]);
        assert_eq!(solve_simple(&cnf), Some(vec![true]));
        cnf.add(vec![neg(a)]);
        assert_eq!(solve_simple(&cnf), None);
    }

    #[test]
    fn propagation_chains() {
        // a, a->b, b->c  ⊢  c
        let mut cnf = Cnf::default();
        let (a, b, c) = (cnf.fresh(), cnf.fresh(), cnf.fresh());
        cnf.add(vec![pos(a)]);
        cnf.add(vec![neg(a), pos(b)]);
        cnf.add(vec![neg(b), pos(c)]);
        let m = solve_simple(&cnf).unwrap();
        assert!(m[a as usize] && m[b as usize] && m[c as usize]);
    }

    #[test]
    fn requires_search() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b)  ⊢  a ∧ b
        let mut cnf = Cnf::default();
        let (a, b) = (cnf.fresh(), cnf.fresh());
        cnf.add(vec![pos(a), pos(b)]);
        cnf.add(vec![neg(a), pos(b)]);
        cnf.add(vec![pos(a), neg(b)]);
        let m = solve_simple(&cnf).unwrap();
        assert!(m[a as usize] && m[b as usize]);
    }

    #[test]
    fn unsat_pigeonhole_2_into_1() {
        // Two pigeons, one hole: x0 (p1 in h), x1 (p2 in h), both must be
        // placed, no sharing.
        let mut cnf = Cnf::default();
        let (a, b) = (cnf.fresh(), cnf.fresh());
        cnf.add(vec![pos(a)]);
        cnf.add(vec![pos(b)]);
        cnf.add(vec![neg(a), neg(b)]);
        assert_eq!(solve_simple(&cnf), None);
    }

    #[test]
    fn assumptions_constrain() {
        let mut cnf = Cnf::default();
        let (a, b) = (cnf.fresh(), cnf.fresh());
        cnf.add(vec![pos(a), pos(b)]);
        let mut stats = DpllStats::default();
        let m = solve(&cnf, &[neg(a)], &mut stats).unwrap();
        assert!(!m[a as usize] && m[b as usize]);
        // Contradictory assumptions.
        assert!(solve(&cnf, &[pos(a), neg(a)], &mut stats).is_none());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::default();
        cnf.fresh();
        cnf.add(vec![]);
        assert_eq!(solve_simple(&cnf), None);
    }
}
