//! # acr-smt
//!
//! A small finite-domain constraint solver — the "SMT" of ACR's hybrid
//! fix generation (§4.2: "we choose to solve for values that can make all
//! previously failed tests pass, based on the SMT constraints collected by
//! symbolic execution") and of the AED-style synthesis baseline.
//!
//! Three variable theories, all grounded to booleans:
//!
//! - **Bool** — one boolean,
//! - **Int** over an explicit finite domain — one-hot encoded with an
//!   exactly-one constraint,
//! - **PrefixSet** over an explicit finite universe — one membership
//!   boolean per universe prefix (the `var` of the paper's worked example,
//!   where `P: 10.70/16 ∈ var ∧ 20.0/16 ∈ var` and `F: 10.0/16 ∈ var`
//!   are solved as `P ∧ ¬F`).
//!
//! Formulas are arbitrary and/or/not trees over atoms, compiled to CNF by
//! Tseitin transformation and decided by a DPLL engine with unit
//! propagation. On top of plain SAT the solver offers **maximal
//! satisfiable subsets** (grow-style), which is what the CEL-like MaxSAT
//! localizer in `acr-localize` consumes (the complement of an MSS is a
//! minimal-ish correction set).
//!
//! The solver is deliberately complete-but-small: ACR's local
//! symbolization solves one variable at a time, so problem sizes stay in
//! the tens of booleans; the AED baseline is *supposed* to show how badly
//! whole-config encodings scale, and it does.

pub mod dpll;
pub mod formula;
pub mod solver;

pub use formula::{Atom, Formula, VarId};
pub use solver::{Model, SolveStats, Solver};
