//! Property tests for the constraint solver.
//!
//! The solver is checked against a brute-force model evaluator: random
//! formulas over a small variable pool must (a) be reported satisfiable
//! exactly when brute force finds a model, and (b) return models that the
//! formula actually evaluates true under.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr_net_types::Prefix;
use acr_smt::{Atom, Formula, Model, Solver, VarId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Fixed variable pool: 3 booleans, 1 int over {1,2,3}, 1 prefix set over
/// a 3-prefix universe.
const INT_DOMAIN: [i64; 3] = [1, 2, 3];

fn universe() -> Vec<Prefix> {
    vec![
        "10.0.0.0/16".parse().unwrap(),
        "10.1.0.0/16".parse().unwrap(),
        "10.2.0.0/16".parse().unwrap(),
    ]
}

/// Random atoms over the pool (var ids assigned in `build_solver` order:
/// b0,b1,b2 = 0..3, int = 3, set = 4).
fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0u32..3).prop_map(|v| Atom::Bool(VarId(v))),
        // Include an out-of-domain value now and then (must act as false).
        prop_oneof![Just(1i64), Just(2), Just(3), Just(99)]
            .prop_map(|val| Atom::IntEq(VarId(3), val)),
        (0usize..3).prop_map(|i| Atom::Member(VarId(4), universe()[i])),
    ]
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        arb_atom().prop_map(Formula::Atom),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Formula::and),
            proptest::collection::vec(inner, 1..4).prop_map(Formula::or),
        ]
    })
}

fn build_solver() -> (Solver, [VarId; 5]) {
    let mut s = Solver::new();
    let b0 = s.new_bool();
    let b1 = s.new_bool();
    let b2 = s.new_bool();
    let int = s.new_int(INT_DOMAIN);
    let set = s.new_prefix_set(universe());
    (s, [b0, b1, b2, int, set])
}

/// Brute-force evaluation of a formula under a concrete assignment.
fn eval(f: &Formula, bools: [bool; 3], int: i64, set: &BTreeSet<Prefix>) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Not(g) => !eval(g, bools, int, set),
        Formula::And(gs) => gs.iter().all(|g| eval(g, bools, int, set)),
        Formula::Or(gs) => gs.iter().any(|g| eval(g, bools, int, set)),
        Formula::Atom(Atom::Bool(v)) => bools[v.0 as usize],
        Formula::Atom(Atom::IntEq(_, val)) => int == *val,
        Formula::Atom(Atom::Member(_, p)) => set.contains(p),
    }
}

/// Exhaustive satisfiability over the finite pool (3 bools × 3 ints ×
/// 2^3 sets = 216 assignments).
fn brute_force_sat(f: &Formula) -> bool {
    let uni = universe();
    for mask in 0u8..8 {
        let bools = [mask & 1 != 0, mask & 2 != 0, mask & 4 != 0];
        for int in INT_DOMAIN {
            for set_mask in 0u8..8 {
                let set: BTreeSet<Prefix> = uni
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| set_mask & (1 << i) != 0)
                    .map(|(_, p)| *p)
                    .collect();
                if eval(f, bools, int, &set) {
                    return true;
                }
            }
        }
    }
    false
}

fn model_satisfies(f: &Formula, m: &Model, vars: &[VarId; 5]) -> bool {
    let bools = [m.bools[&vars[0]], m.bools[&vars[1]], m.bools[&vars[2]]];
    let int = m.ints[&vars[3]];
    let set = &m.sets[&vars[4]];
    eval(f, bools, int, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The solver agrees with brute force on satisfiability, and returned
    /// models actually satisfy the formula.
    #[test]
    fn solver_matches_brute_force(f in arb_formula()) {
        let (mut solver, vars) = build_solver();
        solver.assert(f.clone());
        match solver.solve() {
            Some(model) => {
                prop_assert!(brute_force_sat(&f), "solver found a model for an unsat formula");
                prop_assert!(
                    model_satisfies(&f, &model, &vars),
                    "returned model does not satisfy the formula: {f:?} vs {model:?}"
                );
            }
            None => {
                prop_assert!(!brute_force_sat(&f), "solver missed a model for {f:?}");
            }
        }
    }

    /// Conjoining two formulas never gains models: sat(f ∧ g) ⇒ sat(f).
    #[test]
    fn conjunction_is_monotone(f in arb_formula(), g in arb_formula()) {
        let (mut s_both, _) = build_solver();
        s_both.assert(f.clone());
        s_both.assert(g);
        if s_both.solve().is_some() {
            let (mut s_one, _) = build_solver();
            s_one.assert(f);
            prop_assert!(s_one.solve().is_some());
        }
    }

    /// The grow-MSS result is sound: hard constraints plus every kept soft
    /// constraint are simultaneously satisfied by the returned model.
    #[test]
    fn mss_model_satisfies_kept_softs(
        hard in arb_formula(),
        softs in proptest::collection::vec(arb_formula(), 0..4),
    ) {
        let (mut solver, vars) = build_solver();
        solver.assert(hard.clone());
        match solver.maximal_satisfiable_subset(&softs) {
            None => prop_assert!(!brute_force_sat(&hard)),
            Some((model, kept)) => {
                prop_assert!(model_satisfies(&hard, &model, &vars), "hard violated");
                for i in kept {
                    prop_assert!(
                        model_satisfies(&softs[i], &model, &vars),
                        "kept soft {i} violated"
                    );
                }
            }
        }
    }
}
