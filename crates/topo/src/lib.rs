//! # acr-topo
//!
//! The physical-network substrate: routers, point-to-point links with
//! automatically allocated /30 subnets, and *attached* customer prefixes
//! (the PoP / DCN subnets of the paper's Figure 2 that routers originate
//! into BGP).
//!
//! The topology is pure graph + addressing; all protocol behaviour lives in
//! `acr-cfg` (what is configured) and `acr-sim` (what the configuration
//! does). Generators for the standard shapes used by the experiments
//! (full mesh, ring, line, star, leaf–spine) live in [`gen`].

pub mod gen;
pub mod topology;

pub use topology::{Endpoint, Link, LinkId, Role, RouterInfo, Topology, TopologyBuilder};
