//! Topology generators for the experiment harness.
//!
//! Each generator produces only the *graph*; `acr-workloads` layers
//! role-appropriate configurations (and injected faults) on top.

use crate::topology::{Role, Topology, TopologyBuilder};
use acr_net_types::{Prefix, RouterId};

/// A full mesh of `n` backbone routers, each with one attached /16 carved
/// from `10.0.0.0/8` (router *i* gets `10.i.0.0/16`, so up to 256 routers).
pub fn full_mesh(n: usize) -> Topology {
    assert!((1..=256).contains(&n), "full_mesh supports 1..=256 routers");
    let mut b = TopologyBuilder::new();
    let ids: Vec<RouterId> = (0..n)
        .map(|i| b.router(&format!("R{i}"), Role::Backbone))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            b.link(ids[i], ids[j]);
        }
    }
    for (i, id) in ids.iter().enumerate() {
        b.attach(*id, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    b.build()
}

/// A ring of `n` routers with per-router /16 attachments.
pub fn ring(n: usize) -> Topology {
    assert!((3..=256).contains(&n), "ring supports 3..=256 routers");
    let mut b = TopologyBuilder::new();
    let ids: Vec<RouterId> = (0..n)
        .map(|i| b.router(&format!("R{i}"), Role::Backbone))
        .collect();
    for i in 0..n {
        b.link(ids[i], ids[(i + 1) % n]);
    }
    for (i, id) in ids.iter().enumerate() {
        b.attach(*id, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    b.build()
}

/// A line (path graph) of `n` routers with attachments at both ends.
pub fn line(n: usize) -> Topology {
    assert!((2..=256).contains(&n), "line supports 2..=256 routers");
    let mut b = TopologyBuilder::new();
    let ids: Vec<RouterId> = (0..n)
        .map(|i| b.router(&format!("R{i}"), Role::Backbone))
        .collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1]);
    }
    b.attach(ids[0], Prefix::from_octets(10, 0, 0, 0, 16));
    b.attach(ids[n - 1], Prefix::from_octets(10, (n - 1) as u8, 0, 0, 16));
    b.build()
}

/// A star: one hub, `n` edge routers each with an attachment.
pub fn star(n: usize) -> Topology {
    assert!((1..=255).contains(&n), "star supports 1..=255 spokes");
    let mut b = TopologyBuilder::new();
    let hub = b.router("HUB", Role::Backbone);
    for i in 0..n {
        let spoke = b.router(&format!("E{i}"), Role::Edge);
        b.link(hub, spoke);
        b.attach(spoke, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    b.build()
}

/// A two-tier leaf–spine fabric: every leaf connects to every spine; each
/// leaf carries one rack prefix `10.l.0.0/16`. This is the DCN shape the
/// paper's plastic-surgery hypothesis (§6) targets.
pub fn leaf_spine(spines: usize, leaves: usize) -> Topology {
    assert!(spines >= 1 && (1..=256).contains(&leaves));
    let mut b = TopologyBuilder::new();
    let spine_ids: Vec<RouterId> = (0..spines)
        .map(|i| b.router(&format!("S{i}"), Role::Spine))
        .collect();
    let leaf_ids: Vec<RouterId> = (0..leaves)
        .map(|i| b.router(&format!("L{i}"), Role::Leaf))
        .collect();
    for l in &leaf_ids {
        for s in &spine_ids {
            b.link(*l, *s);
        }
    }
    for (i, l) in leaf_ids.iter().enumerate() {
        b.attach(*l, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    b.build()
}

/// The attachment prefix for global attachment index `i`: the first 256
/// get `10.i.0.0/16` — byte-identical to the historical scheme every
/// pinned corpus and golden digest depends on — and indices from 256 up
/// get /24s carved from `20.0.0.0/8` (`20.hi.lo.0/24`), which never
/// overlap the /16 space.
fn attachment_prefix(i: usize) -> Prefix {
    if i < 256 {
        Prefix::from_octets(10, i as u8, 0, 0, 16)
    } else {
        let k = i - 256;
        assert!(k < 65536, "attachment prefix space exhausted");
        Prefix::from_octets(20, (k >> 8) as u8, (k & 255) as u8, 0, 24)
    }
}

/// A WAN: a *line* backbone (bb0 — bb1 — … — bb{n-1}) with `customers`
/// single-homed PoP routers attached round-robin. Every backbone router
/// owns attachment index *i*, customer *j* index `n+j` (see
/// [`attachment_prefix`]: `10.i/16` below 256, `20/8` /24s above — so
/// scale-frontier shapes like `wan(200, 400)` work while small corpora
/// keep their historical addressing).
///
/// The line (every backbone router is a cut vertex) makes single-device
/// faults observable instead of being masked by rerouting — which is what
/// the incident-injection experiments need.
pub fn wan(n_bb: usize, customers: usize) -> Topology {
    assert!(n_bb >= 2 && n_bb + customers <= 256 + 65536);
    let mut b = TopologyBuilder::new();
    let bb: Vec<RouterId> = (0..n_bb)
        .map(|i| b.router(&format!("BB{i}"), Role::Backbone))
        .collect();
    for w in bb.windows(2) {
        b.link(w[0], w[1]);
    }
    for (i, id) in bb.iter().enumerate() {
        b.attach(*id, attachment_prefix(i));
    }
    for j in 0..customers {
        let cust = b.router(&format!("C{j}"), Role::PoP);
        b.link(bb[j % n_bb], cust);
        b.attach(cust, attachment_prefix(n_bb + j));
    }
    b.build()
}

/// A leaf–spine fabric where each leaf carries `prefixes_per_leaf` rack
/// /24s — the 100k-prefix scale-frontier shape. Leaf *l*'s *k*-th prefix
/// is `10+hi.mid.lo.0/24` for global index `n = l*prefixes_per_leaf + k`
/// (carved upward from `10.0.0.0/8`, disjoint across leaves; capped at
/// 2²⁰ total prefixes, far beyond what memory allows anyway). Router
/// count stays modest on purpose: the point is many *prefixes*, not many
/// devices.
pub fn leaf_spine_multi(spines: usize, leaves: usize, prefixes_per_leaf: usize) -> Topology {
    assert!(spines >= 1 && (1..=256).contains(&leaves) && prefixes_per_leaf >= 1);
    assert!(
        leaves * prefixes_per_leaf <= 1 << 20,
        "prefix space exhausted"
    );
    let mut b = TopologyBuilder::new();
    let spine_ids: Vec<RouterId> = (0..spines)
        .map(|i| b.router(&format!("S{i}"), Role::Spine))
        .collect();
    let leaf_ids: Vec<RouterId> = (0..leaves)
        .map(|i| b.router(&format!("L{i}"), Role::Leaf))
        .collect();
    for l in &leaf_ids {
        for s in &spine_ids {
            b.link(*l, *s);
        }
    }
    for (i, l) in leaf_ids.iter().enumerate() {
        for k in 0..prefixes_per_leaf {
            let n = i * prefixes_per_leaf + k;
            b.attach(
                *l,
                Prefix::from_octets(
                    10 + (n >> 16) as u8,
                    ((n >> 8) & 255) as u8,
                    (n & 255) as u8,
                    0,
                    24,
                ),
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_counts() {
        let t = full_mesh(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.links().len(), 10);
        for r in t.routers() {
            assert_eq!(t.neighbors(r.id).len(), 4);
            assert_eq!(r.attached.len(), 1);
        }
    }

    #[test]
    fn ring_counts() {
        let t = ring(6);
        assert_eq!(t.links().len(), 6);
        for r in t.routers() {
            assert_eq!(t.neighbors(r.id).len(), 2);
        }
    }

    #[test]
    fn line_has_endpoints_attached() {
        let t = line(4);
        assert_eq!(t.links().len(), 3);
        assert_eq!(t.attachments().count(), 2);
        assert_eq!(t.neighbors(RouterId(0)).len(), 1);
        assert_eq!(t.neighbors(RouterId(1)).len(), 2);
    }

    #[test]
    fn star_shape() {
        let t = star(7);
        assert_eq!(t.len(), 8);
        assert_eq!(t.neighbors(t.by_name("HUB").unwrap()).len(), 7);
    }

    #[test]
    fn leaf_spine_bipartite() {
        let t = leaf_spine(2, 4);
        assert_eq!(t.len(), 6);
        assert_eq!(t.links().len(), 8);
        let spine = t.by_name("S0").unwrap();
        let leaf = t.by_name("L0").unwrap();
        assert_eq!(t.neighbors(spine).len(), 4);
        assert_eq!(t.neighbors(leaf).len(), 2);
        // No leaf-leaf or spine-spine links.
        for link in t.links() {
            let ra = t.router(link.a.router).role;
            let rb = t.router(link.b.router).role;
            assert_ne!(ra, rb);
        }
    }

    #[test]
    fn attachments_are_distinct() {
        let t = full_mesh(10);
        let mut seen: Vec<Prefix> = Vec::new();
        for (_, p) in t.attachments() {
            assert!(!seen.contains(&p), "duplicate attachment {p}");
            seen.push(p);
        }
    }

    #[test]
    #[should_panic]
    fn oversized_mesh_panics() {
        full_mesh(300);
    }

    #[test]
    fn wan_shape() {
        let t = wan(4, 8);
        assert_eq!(t.len(), 12);
        // 3 backbone links + 8 customer links.
        assert_eq!(t.links().len(), 11);
        // Every customer is single-homed.
        for r in t.routers().iter().filter(|r| r.role == Role::PoP) {
            assert_eq!(t.neighbors(r.id).len(), 1, "{}", r.name);
            assert_eq!(r.attached.len(), 1);
        }
        // bb0 and bb3 are line endpoints; bb1/bb2 interior.
        assert_eq!(
            t.neighbors(t.by_name("BB0").unwrap())
                .iter()
                .filter(|(n, _)| t.router(*n).role == Role::Backbone)
                .count(),
            1
        );
        // Round-robin homing: C0 and C4 both hang off BB0.
        let bb0 = t.by_name("BB0").unwrap();
        let c0 = t.by_name("C0").unwrap();
        let c4 = t.by_name("C4").unwrap();
        assert!(t.neighbors(bb0).iter().any(|(n, _)| *n == c0));
        assert!(t.neighbors(bb0).iter().any(|(n, _)| *n == c4));
    }

    #[test]
    fn wan_scales_past_256_attachments() {
        let t = wan(200, 400);
        assert_eq!(t.len(), 600);
        assert_eq!(t.links().len(), 199 + 400);
        // First 256 attachment indices keep the historical /16 scheme;
        // the rest move to 20/8 /24s, and all stay distinct.
        let attached: Vec<Prefix> = t.attachments().map(|(_, p)| p).collect();
        assert_eq!(attached.len(), 600);
        assert!(attached.contains(&Prefix::from_octets(10, 255, 0, 0, 16)));
        assert!(attached.contains(&Prefix::from_octets(20, 0, 0, 0, 24)));
        assert!(attached.contains(&Prefix::from_octets(20, 1, 87, 0, 24)));
        let mut uniq = attached.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), attached.len());
        // Indices below 256 are byte-identical to the historical scheme.
        let small = wan(4, 8);
        let t2 = wan(4, 8);
        assert_eq!(
            small.attachments().collect::<Vec<_>>(),
            t2.attachments().collect::<Vec<_>>()
        );
        assert!(small
            .attachments()
            .any(|(_, p)| p == Prefix::from_octets(10, 11, 0, 0, 16)));
    }

    #[test]
    fn leaf_spine_multi_carries_many_prefixes() {
        let t = leaf_spine_multi(2, 4, 300);
        assert_eq!(t.len(), 6);
        assert_eq!(t.attachments().count(), 1200);
        // Global prefix index 300 (leaf 1, k = 0) crosses the mid octet.
        let l1 = t.by_name("L1").unwrap();
        assert_eq!(
            t.router(l1).attached[0],
            Prefix::from_octets(10, 1, 44, 0, 24)
        );
        let mut seen: Vec<Prefix> = t.attachments().map(|(_, p)| p).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 1200);
    }
}
