//! Topology generators for the experiment harness.
//!
//! Each generator produces only the *graph*; `acr-workloads` layers
//! role-appropriate configurations (and injected faults) on top.

use crate::topology::{Role, Topology, TopologyBuilder};
use acr_net_types::{Prefix, RouterId};

/// A full mesh of `n` backbone routers, each with one attached /16 carved
/// from `10.0.0.0/8` (router *i* gets `10.i.0.0/16`, so up to 256 routers).
pub fn full_mesh(n: usize) -> Topology {
    assert!((1..=256).contains(&n), "full_mesh supports 1..=256 routers");
    let mut b = TopologyBuilder::new();
    let ids: Vec<RouterId> = (0..n)
        .map(|i| b.router(&format!("R{i}"), Role::Backbone))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            b.link(ids[i], ids[j]);
        }
    }
    for (i, id) in ids.iter().enumerate() {
        b.attach(*id, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    b.build()
}

/// A ring of `n` routers with per-router /16 attachments.
pub fn ring(n: usize) -> Topology {
    assert!((3..=256).contains(&n), "ring supports 3..=256 routers");
    let mut b = TopologyBuilder::new();
    let ids: Vec<RouterId> = (0..n)
        .map(|i| b.router(&format!("R{i}"), Role::Backbone))
        .collect();
    for i in 0..n {
        b.link(ids[i], ids[(i + 1) % n]);
    }
    for (i, id) in ids.iter().enumerate() {
        b.attach(*id, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    b.build()
}

/// A line (path graph) of `n` routers with attachments at both ends.
pub fn line(n: usize) -> Topology {
    assert!((2..=256).contains(&n), "line supports 2..=256 routers");
    let mut b = TopologyBuilder::new();
    let ids: Vec<RouterId> = (0..n)
        .map(|i| b.router(&format!("R{i}"), Role::Backbone))
        .collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1]);
    }
    b.attach(ids[0], Prefix::from_octets(10, 0, 0, 0, 16));
    b.attach(ids[n - 1], Prefix::from_octets(10, (n - 1) as u8, 0, 0, 16));
    b.build()
}

/// A star: one hub, `n` edge routers each with an attachment.
pub fn star(n: usize) -> Topology {
    assert!((1..=255).contains(&n), "star supports 1..=255 spokes");
    let mut b = TopologyBuilder::new();
    let hub = b.router("HUB", Role::Backbone);
    for i in 0..n {
        let spoke = b.router(&format!("E{i}"), Role::Edge);
        b.link(hub, spoke);
        b.attach(spoke, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    b.build()
}

/// A two-tier leaf–spine fabric: every leaf connects to every spine; each
/// leaf carries one rack prefix `10.l.0.0/16`. This is the DCN shape the
/// paper's plastic-surgery hypothesis (§6) targets.
pub fn leaf_spine(spines: usize, leaves: usize) -> Topology {
    assert!(spines >= 1 && (1..=256).contains(&leaves));
    let mut b = TopologyBuilder::new();
    let spine_ids: Vec<RouterId> = (0..spines)
        .map(|i| b.router(&format!("S{i}"), Role::Spine))
        .collect();
    let leaf_ids: Vec<RouterId> = (0..leaves)
        .map(|i| b.router(&format!("L{i}"), Role::Leaf))
        .collect();
    for l in &leaf_ids {
        for s in &spine_ids {
            b.link(*l, *s);
        }
    }
    for (i, l) in leaf_ids.iter().enumerate() {
        b.attach(*l, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    b.build()
}

/// A WAN: a *line* backbone (bb0 — bb1 — … — bb{n-1}) with `customers`
/// single-homed PoP routers attached round-robin. Every backbone router
/// owns `10.i/16`; customer *j* owns `10.(n+j)/16`.
///
/// The line (every backbone router is a cut vertex) makes single-device
/// faults observable instead of being masked by rerouting — which is what
/// the incident-injection experiments need.
pub fn wan(n_bb: usize, customers: usize) -> Topology {
    assert!(n_bb >= 2 && n_bb + customers <= 256);
    let mut b = TopologyBuilder::new();
    let bb: Vec<RouterId> = (0..n_bb)
        .map(|i| b.router(&format!("BB{i}"), Role::Backbone))
        .collect();
    for w in bb.windows(2) {
        b.link(w[0], w[1]);
    }
    for (i, id) in bb.iter().enumerate() {
        b.attach(*id, Prefix::from_octets(10, i as u8, 0, 0, 16));
    }
    for j in 0..customers {
        let cust = b.router(&format!("C{j}"), Role::PoP);
        b.link(bb[j % n_bb], cust);
        b.attach(cust, Prefix::from_octets(10, (n_bb + j) as u8, 0, 0, 16));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_counts() {
        let t = full_mesh(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.links().len(), 10);
        for r in t.routers() {
            assert_eq!(t.neighbors(r.id).len(), 4);
            assert_eq!(r.attached.len(), 1);
        }
    }

    #[test]
    fn ring_counts() {
        let t = ring(6);
        assert_eq!(t.links().len(), 6);
        for r in t.routers() {
            assert_eq!(t.neighbors(r.id).len(), 2);
        }
    }

    #[test]
    fn line_has_endpoints_attached() {
        let t = line(4);
        assert_eq!(t.links().len(), 3);
        assert_eq!(t.attachments().count(), 2);
        assert_eq!(t.neighbors(RouterId(0)).len(), 1);
        assert_eq!(t.neighbors(RouterId(1)).len(), 2);
    }

    #[test]
    fn star_shape() {
        let t = star(7);
        assert_eq!(t.len(), 8);
        assert_eq!(t.neighbors(t.by_name("HUB").unwrap()).len(), 7);
    }

    #[test]
    fn leaf_spine_bipartite() {
        let t = leaf_spine(2, 4);
        assert_eq!(t.len(), 6);
        assert_eq!(t.links().len(), 8);
        let spine = t.by_name("S0").unwrap();
        let leaf = t.by_name("L0").unwrap();
        assert_eq!(t.neighbors(spine).len(), 4);
        assert_eq!(t.neighbors(leaf).len(), 2);
        // No leaf-leaf or spine-spine links.
        for link in t.links() {
            let ra = t.router(link.a.router).role;
            let rb = t.router(link.b.router).role;
            assert_ne!(ra, rb);
        }
    }

    #[test]
    fn attachments_are_distinct() {
        let t = full_mesh(10);
        let mut seen: Vec<Prefix> = Vec::new();
        for (_, p) in t.attachments() {
            assert!(!seen.contains(&p), "duplicate attachment {p}");
            seen.push(p);
        }
    }

    #[test]
    #[should_panic]
    fn oversized_mesh_panics() {
        full_mesh(300);
    }

    #[test]
    fn wan_shape() {
        let t = wan(4, 8);
        assert_eq!(t.len(), 12);
        // 3 backbone links + 8 customer links.
        assert_eq!(t.links().len(), 11);
        // Every customer is single-homed.
        for r in t.routers().iter().filter(|r| r.role == Role::PoP) {
            assert_eq!(t.neighbors(r.id).len(), 1, "{}", r.name);
            assert_eq!(r.attached.len(), 1);
        }
        // bb0 and bb3 are line endpoints; bb1/bb2 interior.
        assert_eq!(
            t.neighbors(t.by_name("BB0").unwrap())
                .iter()
                .filter(|(n, _)| t.router(*n).role == Role::Backbone)
                .count(),
            1
        );
        // Round-robin homing: C0 and C4 both hang off BB0.
        let bb0 = t.by_name("BB0").unwrap();
        let c0 = t.by_name("C0").unwrap();
        let c4 = t.by_name("C4").unwrap();
        assert!(t.neighbors(bb0).iter().any(|(n, _)| *n == c0));
        assert!(t.neighbors(bb0).iter().any(|(n, _)| *n == c4));
    }
}
