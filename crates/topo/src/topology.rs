//! Topology model: routers, links, addressing, attachments.

use acr_net_types::{Ipv4Addr, Prefix, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// The architectural role of a router — enterprise networks group devices
/// into roles with near-identical configs (the paper's §3.2 observation (1)
/// and §6 "plastic surgery" hypothesis hinge on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    Backbone,
    PoP,
    Dcn,
    Spine,
    Leaf,
    Edge,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Backbone => "backbone",
            Role::PoP => "pop",
            Role::Dcn => "dcn",
            Role::Spine => "spine",
            Role::Leaf => "leaf",
            Role::Edge => "edge",
        })
    }
}

/// Static information about one router.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouterInfo {
    pub id: RouterId,
    pub name: String,
    pub role: Role,
    /// Loopback used as the default router id in generated configs.
    pub loopback: Ipv4Addr,
    /// Customer prefixes attached to this router (PoP and DCN subnets in
    /// Figure 2) — the prefixes it originates.
    pub attached: Vec<Prefix>,
}

/// Identifier of a link (index into [`Topology::links`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// One side of a point-to-point link.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    pub router: RouterId,
    pub iface: String,
    pub addr: Ipv4Addr,
}

/// A point-to-point link with its /30 subnet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Link {
    pub id: LinkId,
    pub a: Endpoint,
    pub b: Endpoint,
    pub subnet: Prefix,
}

impl Link {
    /// The endpoint on `router`, if the link touches it.
    pub fn endpoint_of(&self, router: RouterId) -> Option<&Endpoint> {
        if self.a.router == router {
            Some(&self.a)
        } else if self.b.router == router {
            Some(&self.b)
        } else {
            None
        }
    }

    /// The endpoint *opposite* `router`, if the link touches it.
    pub fn peer_of(&self, router: RouterId) -> Option<&Endpoint> {
        if self.a.router == router {
            Some(&self.b)
        } else if self.b.router == router {
            Some(&self.a)
        } else {
            None
        }
    }
}

/// An immutable network topology. Build one with [`TopologyBuilder`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Topology {
    routers: Vec<RouterInfo>,
    links: Vec<Link>,
    by_name: BTreeMap<String, RouterId>,
    /// Interface address → owning router, for next-hop resolution.
    addr_owner: BTreeMap<Ipv4Addr, RouterId>,
}

impl Topology {
    /// Number of routers.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// Whether the topology has no routers.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// All routers, in id order.
    pub fn routers(&self) -> &[RouterInfo] {
        &self.routers
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// A stable identity hash over routers (ids, names, roles,
    /// addressing, attachments) and links. Together with a config
    /// fingerprint it keys the simulation memo-cache in `acr-verify`:
    /// two verifications may share a cache entry only when they agree on
    /// both the rendered configuration and this topology fingerprint.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.routers.hash(&mut h);
        self.links.hash(&mut h);
        h.finish()
    }

    /// Router info by id.
    pub fn router(&self, id: RouterId) -> &RouterInfo {
        &self.routers[id.index()]
    }

    /// Router id by name.
    pub fn by_name(&self, name: &str) -> Option<RouterId> {
        self.by_name.get(name).copied()
    }

    /// Links incident to `router`.
    pub fn links_of(&self, router: RouterId) -> impl Iterator<Item = &Link> {
        self.links
            .iter()
            .filter(move |l| l.endpoint_of(router).is_some())
    }

    /// The neighbors of `router` with the connecting link.
    pub fn neighbors(&self, router: RouterId) -> Vec<(RouterId, &Link)> {
        self.links_of(router)
            .filter_map(move |l| l.peer_of(router).map(|e| (e.router, l)))
            .collect()
    }

    /// The router that owns interface address `addr`, if any.
    pub fn owner_of(&self, addr: Ipv4Addr) -> Option<RouterId> {
        self.addr_owner.get(&addr).copied()
    }

    /// The local interface address `router` uses to reach neighbor `peer`
    /// (the address the peer configures as its BGP neighbor).
    pub fn addr_towards(&self, router: RouterId, peer: RouterId) -> Option<Ipv4Addr> {
        self.links_of(router)
            .find(|l| l.peer_of(router).map(|e| e.router) == Some(peer))
            .and_then(|l| l.endpoint_of(router).map(|e| e.addr))
    }

    /// The router, if any, to whose attached prefixes `addr` belongs
    /// (i.e. where a packet for `addr` is *delivered*). Most-specific
    /// attachment wins if several match.
    pub fn delivery_router(&self, addr: Ipv4Addr) -> Option<RouterId> {
        self.routers
            .iter()
            .flat_map(|r| {
                r.attached
                    .iter()
                    .filter(|p| p.contains(addr))
                    .map(move |p| (p.len(), r.id))
            })
            .max_by_key(|(len, _)| *len)
            .map(|(_, id)| id)
    }

    /// Every attached (customer) prefix with its owner, in id order.
    pub fn attachments(&self) -> impl Iterator<Item = (RouterId, Prefix)> + '_ {
        self.routers
            .iter()
            .flat_map(|r| r.attached.iter().map(move |p| (r.id, *p)))
    }
}

/// Incremental topology construction with automatic /30 link addressing.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    topo: Topology,
    next_link_block: u32,
}

impl TopologyBuilder {
    /// Starts an empty topology.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds a router and returns its id. Names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate names — topology construction bugs should fail
    /// loudly at build time, not surface as simulation mysteries.
    pub fn router(&mut self, name: &str, role: Role) -> RouterId {
        assert!(
            !self.topo.by_name.contains_key(name),
            "duplicate router name `{name}`"
        );
        let id = RouterId(self.topo.routers.len() as u32);
        // Loopback `1.1.0.0 + id + 1`: router i gets 1.1.0.(i+1) below
        // 255, carrying into the third octet past that (the old
        // per-octet arithmetic overflowed at index 255; the carry form is
        // byte-identical everywhere the old form was defined).
        let n = id.0 + 1;
        assert!(n < 1 << 16, "loopback space exhausted");
        let loopback = Ipv4Addr::new(1, 1, (n >> 8) as u8, (n & 0xff) as u8);
        self.topo.routers.push(RouterInfo {
            id,
            name: name.to_string(),
            role,
            loopback,
            attached: Vec::new(),
        });
        self.topo.by_name.insert(name.to_string(), id);
        id
    }

    /// Connects two routers with a /30 link allocated from `172.16.0.0/12`.
    pub fn link(&mut self, a: RouterId, b: RouterId) -> LinkId {
        assert_ne!(a, b, "self-links are not allowed");
        let block = self.next_link_block;
        self.next_link_block += 1;
        // 172.16.0.0/12 carved into /30s: block i -> base + 4*i.
        let base = Ipv4Addr::new(172, 16, 0, 0).offset(block * 4);
        let subnet = Prefix::new(base, 30);
        let id = LinkId(self.topo.links.len() as u32);
        let ep = |router: RouterId, addr: Ipv4Addr, link: LinkId| Endpoint {
            router,
            iface: format!("eth{}", link.0),
            addr,
        };
        let ea = ep(a, base.offset(1), id);
        let eb = ep(b, base.offset(2), id);
        self.topo.addr_owner.insert(ea.addr, a);
        self.topo.addr_owner.insert(eb.addr, b);
        self.topo.links.push(Link {
            id,
            a: ea,
            b: eb,
            subnet,
        });
        id
    }

    /// Attaches a customer prefix (PoP/DCN subnet) to a router.
    pub fn attach(&mut self, router: RouterId, prefix: Prefix) {
        self.topo.routers[router.index()].attached.push(prefix);
    }

    /// Finishes construction.
    pub fn build(self) -> Topology {
        self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn two_routers() -> (Topology, RouterId, RouterId) {
        let mut b = TopologyBuilder::new();
        let a = b.router("A", Role::Backbone);
        let s = b.router("S", Role::Backbone);
        b.link(a, s);
        b.attach(s, p("20.0.0.0/16"));
        (b.build(), a, s)
    }

    #[test]
    fn link_addressing_is_30s() {
        let (t, a, s) = two_routers();
        let link = &t.links()[0];
        assert_eq!(link.subnet, p("172.16.0.0/30"));
        assert_eq!(link.a.addr, Ipv4Addr::new(172, 16, 0, 1));
        assert_eq!(link.b.addr, Ipv4Addr::new(172, 16, 0, 2));
        assert!(link.subnet.contains(link.a.addr));
        assert_eq!(t.owner_of(link.a.addr), Some(a));
        assert_eq!(t.owner_of(link.b.addr), Some(s));
        assert_eq!(t.addr_towards(a, s), Some(link.a.addr));
        assert_eq!(t.addr_towards(s, a), Some(link.b.addr));
    }

    #[test]
    fn second_link_gets_next_block() {
        let mut b = TopologyBuilder::new();
        let x = b.router("X", Role::Backbone);
        let y = b.router("Y", Role::Backbone);
        let z = b.router("Z", Role::Backbone);
        b.link(x, y);
        b.link(y, z);
        let t = b.build();
        assert_eq!(t.links()[1].subnet, p("172.16.0.4/30"));
    }

    #[test]
    fn neighbors_and_lookup() {
        let (t, a, s) = two_routers();
        assert_eq!(t.neighbors(a).len(), 1);
        assert_eq!(t.neighbors(a)[0].0, s);
        assert_eq!(t.by_name("A"), Some(a));
        assert_eq!(t.by_name("Q"), None);
        assert_eq!(t.router(s).name, "S");
    }

    #[test]
    fn delivery_picks_most_specific_attachment() {
        let mut b = TopologyBuilder::new();
        let x = b.router("X", Role::PoP);
        let y = b.router("Y", Role::PoP);
        b.attach(x, p("10.0.0.0/8"));
        b.attach(y, p("10.1.0.0/16"));
        let t = b.build();
        assert_eq!(t.delivery_router(Ipv4Addr::new(10, 1, 2, 3)), Some(y));
        assert_eq!(t.delivery_router(Ipv4Addr::new(10, 2, 0, 1)), Some(x));
        assert_eq!(t.delivery_router(Ipv4Addr::new(99, 0, 0, 1)), None);
    }

    #[test]
    fn attachments_iterates_all() {
        let (t, _, s) = two_routers();
        let all: Vec<_> = t.attachments().collect();
        assert_eq!(all, vec![(s, p("20.0.0.0/16"))]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut b = TopologyBuilder::new();
        b.router("A", Role::Backbone);
        b.router("A", Role::PoP);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut b = TopologyBuilder::new();
        let a = b.router("A", Role::Backbone);
        b.link(a, a);
    }
}
