//! Golden renderer tests for the cross-device `acr-flow` rules: one
//! minimal two-router incident per rule, with the report text pinned
//! byte for byte so both the analysis verdicts and the rustc-style
//! formatting are regression-guarded. (The companion guard — that none
//! of these rules fires on the *clean* workload corpus — lives in
//! `table1_detection.rs`.)

use acr_cfg::parse::parse_device;
use acr_cfg::NetworkConfig;
use acr_lint::lint_network;
use acr_topo::{Role, TopologyBuilder};

/// Builds a chain topology over `roles`, parses one config per router,
/// and returns the rendered lint report.
fn render(roles: &[(&str, Role)], cfgs: &[&str]) -> String {
    let mut tb = TopologyBuilder::new();
    let ids: Vec<_> = roles.iter().map(|(n, r)| tb.router(n, *r)).collect();
    for w in ids.windows(2) {
        tb.link(w[0], w[1]); // 172.16.0.1/.2, .5/.6, …
    }
    let topo = tb.build();
    let mut cfg = NetworkConfig::new();
    for (i, text) in cfgs.iter().enumerate() {
        cfg.insert(ids[i], parse_device(roles[i].0, text).unwrap());
    }
    lint_network(&topo, &cfg).render(&cfg)
}

const TWO_BACKBONES: &[(&str, Role)] = &[("A", Role::Backbone), ("B", Role::Backbone)];

/// Node 10 matches B's real origin, keeping the policy (and the
/// session) alive; node 20 matches a prefix nothing in the network can
/// propagate.
#[test]
fn dead_policy_term_golden() {
    let report = render(
        TWO_BACKBONES,
        &[
            "bgp 65001\n\
             peer 172.16.0.2 as-number 65002\n\
             peer 172.16.0.2 route-policy FromB import\n\
             route-policy FromB permit node 10\n\
             if-match ip-prefix real\n\
             route-policy FromB permit node 20\n\
             if-match ip-prefix ghost\n\
             ip prefix-list real index 10 permit 10.1.0.0 16\n\
             ip prefix-list ghost index 10 permit 10.99.0.0 16\n",
            "bgp 65002\n\
             peer 172.16.0.1 as-number 65001\n\
             network 10.1.0.0 16\n",
        ],
    );
    let expected = "\
warning[dead-policy-term]: node 20 of applied route-policy `FromB` matches no route any device in the network can propagate
  --> A:6
   |
 6 | route-policy FromB permit node 20
   |
   = related: A:3 policy applied here — `peer 172.16.0.2 route-policy FromB import`

0 errors, 1 warning
";
    assert_eq!(report, expected);
}

/// Node 20 matches community 100:1, which no `apply community` anywhere
/// in the network can attach — so the match is flagged, and the node it
/// guards is necessarily dead too.
#[test]
fn community_never_set_golden() {
    let report = render(
        TWO_BACKBONES,
        &[
            "bgp 65001\n\
             peer 172.16.0.2 as-number 65002\n\
             peer 172.16.0.2 route-policy FromB import\n\
             route-policy FromB permit node 10\n\
             if-match ip-prefix real\n\
             route-policy FromB permit node 20\n\
             if-match community 100:1\n\
             ip prefix-list real index 10 permit 10.1.0.0 16\n",
            "bgp 65002\n\
             peer 172.16.0.1 as-number 65001\n\
             network 10.1.0.0 16\n",
        ],
    );
    let expected = "\
warning[dead-policy-term]: node 20 of applied route-policy `FromB` matches no route any device in the network can propagate
  --> A:6
   |
 6 | route-policy FromB permit node 20
   |
   = related: A:3 policy applied here — `peer 172.16.0.2 route-policy FromB import`

warning[community-never-set]: route-policy `FromB` matches community 100:1, which no device in the network ever applies
  --> A:7
   |
 7 |  if-match community 100:1
   |
   = related: A:3 policy applied here — `peer 172.16.0.2 route-policy FromB import`

0 errors, 2 warnings
";
    assert_eq!(report, expected);
}

/// A originates two prefixes; its export policy announces only
/// 10.9.0.0/16 (keeping the policy node live), so 10.5.0.0/16 can never
/// leave the device.
#[test]
fn propagation_blackhole_golden() {
    let report = render(
        TWO_BACKBONES,
        &[
            "bgp 65001\n\
             peer 172.16.0.2 as-number 65002\n\
             peer 172.16.0.2 route-policy Out export\n\
             network 10.9.0.0 16\n\
             network 10.5.0.0 16\n\
             route-policy Out permit node 10\n\
             if-match ip-prefix announce\n\
             ip prefix-list announce index 10 permit 10.9.0.0 16\n",
            "bgp 65002\n\
             peer 172.16.0.1 as-number 65001\n",
        ],
    );
    let expected = "\
warning[propagation-blackhole]: originated prefix 10.5.0.0/16 is denied by the export policy of every established session — it can never leave this device
  --> A:1
   |
 1 | bgp 65001
   |

0 errors, 1 warning
";
    assert_eq!(report, expected);
}

/// A exports both origins unfiltered, but B's import keeps only
/// 10.9.0.0/16 — 10.5.0.0/16 survives export and is still unimportable
/// everywhere (and because *something* crosses the session, this is not
/// an export/import mismatch).
#[test]
fn unimportable_route_golden() {
    let report = render(
        TWO_BACKBONES,
        &[
            "bgp 65001\n\
             peer 172.16.0.2 as-number 65002\n\
             network 10.9.0.0 16\n\
             network 10.5.0.0 16\n",
            "bgp 65002\n\
             peer 172.16.0.1 as-number 65001\n\
             peer 172.16.0.1 route-policy In import\n\
             route-policy In permit node 10\n\
             if-match ip-prefix keep\n\
             ip prefix-list keep index 10 permit 10.9.0.0 16\n",
        ],
    );
    let expected = "\
warning[unimportable-route]: originated prefix 10.5.0.0/16 survives an export policy but no neighbor's import policy can accept it
  --> A:1
   |
 1 | bgp 65001
   |

0 errors, 1 warning
";
    assert_eq!(report, expected);
}

/// B's import rejects *every* route A can offer on the session: the
/// mismatch is reported on B's import line, pointing back at A — and
/// the two consequences (A's origin is unimportable, B's only policy
/// node is dead) are reported alongside it.
#[test]
fn export_import_mismatch_golden() {
    let report = render(
        TWO_BACKBONES,
        &[
            "bgp 65001\n\
             peer 172.16.0.2 as-number 65002\n\
             network 10.5.0.0 16\n",
            "bgp 65002\n\
             peer 172.16.0.1 as-number 65001\n\
             peer 172.16.0.1 route-policy In import\n\
             route-policy In permit node 10\n\
             if-match ip-prefix keep\n\
             ip prefix-list keep index 10 permit 10.99.0.0 16\n",
        ],
    );
    let expected = "\
warning[unimportable-route]: originated prefix 10.5.0.0/16 survives an export policy but no neighbor's import policy can accept it
  --> A:1
   |
 1 | bgp 65001
   |

warning[export-import-mismatch]: import policy `In` rejects every route A can export on this session
  --> B:3
   |
 3 |  peer 172.16.0.1 route-policy In import
   |
   = related: A:2 peer session configured here — `peer 172.16.0.2 as-number 65002`

warning[dead-policy-term]: node 10 of applied route-policy `In` matches no route any device in the network can propagate
  --> B:4
   |
 4 | route-policy In permit node 10
   |
   = related: B:3 policy applied here — `peer 172.16.0.1 route-policy In import`

0 errors, 3 warnings
";
    assert_eq!(report, expected);
}

/// A test prefix (192.0.2.0/24, RFC 5737) crosses the backbone/PoP role
/// boundary unfiltered in both directions: once A→P, and once P→A after
/// the abstract re-advertisement.
#[test]
fn bogon_leak_golden() {
    let report = render(
        &[("A", Role::Backbone), ("P", Role::PoP)],
        &[
            "bgp 65001\n\
             peer 172.16.0.2 as-number 64999\n\
             network 192.0.2.0 24\n",
            "bgp 64999\n\
             peer 172.16.0.1 as-number 65001\n",
        ],
    );
    let expected = "\
warning[bogon-leak]: bogon prefix 192.0.2.0/24 can cross the pop/backbone role boundary from P
  --> A:2
   |
 2 |  peer 172.16.0.2 as-number 64999
   |
   = related: P:2 sent from here — `peer 172.16.0.1 as-number 65001`

warning[bogon-leak]: bogon prefix 192.0.2.0/24 can cross the backbone/pop role boundary from A
  --> P:2
   |
 2 |  peer 172.16.0.1 as-number 65001
   |
   = related: A:2 sent from here — `peer 172.16.0.2 as-number 64999`

0 errors, 2 warnings
";
    assert_eq!(report, expected);
}
