//! Golden test for the rustc-style diagnostic renderer: the exact text,
//! byte for byte, so formatting regressions are loud.

use acr_cfg::parse::parse_device;
use acr_cfg::NetworkConfig;
use acr_lint::lint_network;
use acr_topo::{Role, TopologyBuilder};

#[test]
fn renders_the_expected_report() {
    let mut tb = TopologyBuilder::new();
    let a = tb.router("A", Role::Backbone);
    let b = tb.router("B", Role::Backbone);
    tb.link(a, b); // 172.16.0.1 / 172.16.0.2
    let topo = tb.build();
    let mut cfg = NetworkConfig::new();
    cfg.insert(
        a,
        parse_device(
            "A",
            "bgp 65001\n\
             peer 172.16.0.2 as-number 65009\n\
             peer 172.16.0.2 route-policy Absent import\n",
        )
        .unwrap(),
    );
    cfg.insert(
        b,
        parse_device("B", "bgp 65002\npeer 172.16.0.1 as-number 65001\n").unwrap(),
    );

    let report = lint_network(&topo, &cfg);
    let expected = "\
warning[session-asn-mismatch]: peer 172.16.0.2 is configured with as-number 65009 but B runs bgp 65002
  --> A:2
   |
 2 |  peer 172.16.0.2 as-number 65009
   |
   = related: B:1 the neighbor's BGP process — `bgp 65002`

error[undefined-route-policy]: route-policy `Absent` is applied but never defined
  --> A:3
   |
 3 |  peer 172.16.0.2 route-policy Absent import
   |

1 error, 1 warning
";
    assert_eq!(report.render(&cfg), expected);
}

#[test]
fn clean_report_renders_empty() {
    let mut tb = TopologyBuilder::new();
    let a = tb.router("A", Role::Backbone);
    let topo = tb.build();
    let mut cfg = NetworkConfig::new();
    cfg.insert(a, parse_device("A", "bgp 65001\n").unwrap());
    let report = lint_network(&topo, &cfg);
    assert!(report.is_clean());
    assert_eq!(report.render(&cfg), "");
}
