//! The linter against the paper's Table 1: every injectable fault class
//! either trips a named rule or is documented as semantic-only, and the
//! clean generator corpus (plus the Figure 2 intended configuration)
//! produces **zero** findings — the soundness bar the repair-engine gate
//! relies on.

use acr_lint::{lint_network, Rule};
use acr_topo::gen;
use acr_workloads::{fig2::fig2_incident, generate, try_inject, FaultType, TABLE1};
use std::collections::BTreeSet;

/// Fault classes the static pass cannot see: the injected edit leaves no
/// dangling reference and no dead statement, only a semantic gap that
/// needs simulation (e.g. a deleted `import-route static` whose statics
/// were deleted with it).
const SEMANTIC_ONLY: &[FaultType] = &[FaultType::MissingRedistribution];

/// The rules allowed to fire per fault class. A detection outside this
/// set would be a mis-attribution (or a false positive riding along).
fn expected_rules(fault: FaultType) -> &'static [Rule] {
    match fault {
        FaultType::MissingRedistribution => &[],
        FaultType::MissingPbrPermit => &[Rule::UnusedDefinition, Rule::UndefinedAcl],
        FaultType::ExtraPbrRedirect => &[Rule::ShadowedPbrRule],
        FaultType::MissingPeerGroup => &[Rule::UndefinedPeerGroup, Rule::UnusedDefinition],
        FaultType::ExtraPeerGroupItem => &[Rule::GroupAsnConflict, Rule::ImportFilterGap],
        FaultType::MissingRoutePolicy => &[Rule::UndefinedRoutePolicy, Rule::UnusedDefinition],
        FaultType::StaleRouteMap => &[Rule::ImportFilterGap],
        FaultType::WrongOverrideAsn => &[Rule::OverrideAsnMismatch],
        FaultType::MissingPrefixListItems => &[
            Rule::ImportFilterGap,
            Rule::UndefinedPrefixList,
            Rule::UnusedDefinition,
            // Cross-device: the gutted list leaves the neighbor's
            // originations with no import that can admit them.
            Rule::UnimportableRoute,
        ],
    }
}

#[test]
fn clean_generator_corpus_has_zero_findings() {
    for (name, topo) in [
        ("full_mesh(6)", gen::full_mesh(6)),
        ("ring(8)", gen::ring(8)),
        ("line(5)", gen::line(5)),
        ("star(6)", gen::star(6)),
        ("leaf_spine(2,6)", gen::leaf_spine(2, 6)),
        ("wan(4,8)", gen::wan(4, 8)),
    ] {
        let net = generate(&topo);
        let report = lint_network(&net.topo, &net.cfg);
        assert!(
            report.is_clean(),
            "false positives on {name}:\n{}",
            report.render(&net.cfg)
        );
    }
}

#[test]
fn fig2_intended_is_clean_and_broken_stays_gateable() {
    let fig2 = fig2_incident();
    let intended = lint_network(&fig2.topo, &fig2.intended);
    assert!(
        intended.is_clean(),
        "false positives on the Figure 2 intended configuration:\n{}",
        intended.render(&fig2.intended)
    );
    // The broken variant's catch-all lists *permit* everything — no entry
    // is dead, nothing dangles — so the error baseline is empty and the
    // engine's gate operates from a clean slate.
    let broken = lint_network(&fig2.topo, &fig2.broken);
    assert_eq!(broken.errors().count(), 0);
}

#[test]
fn table1_faults_trip_the_mapped_rules() {
    let net = generate(&gen::wan(4, 8));
    let clean_keys = lint_network(&net.topo, &net.cfg).keys();
    assert!(clean_keys.is_empty(), "substrate must lint clean");

    let mut detected_types = 0usize;
    for (fault, _) in TABLE1 {
        let allowed: BTreeSet<Rule> = expected_rules(fault).iter().copied().collect();
        let mut detections = 0usize;
        let mut injections = 0usize;
        for seed in 0..6u64 {
            let Some(incident) = try_inject(fault, &net, seed) else {
                continue;
            };
            injections += 1;
            let report = lint_network(&net.topo, &incident.broken);
            let fresh: Vec<_> = report
                .diagnostics
                .iter()
                .filter(|d| !clean_keys.contains(&d.key()))
                .collect();
            for d in &fresh {
                assert!(
                    allowed.contains(&d.rule),
                    "{fault:?} (seed {seed}) tripped unexpected rule {}: {}",
                    d.rule,
                    d.message
                );
            }
            if !fresh.is_empty() {
                detections += 1;
            }
        }
        assert!(injections > 0, "{fault:?} never injected");
        if SEMANTIC_ONLY.contains(&fault) {
            assert_eq!(
                detections, 0,
                "{fault:?} is documented semantic-only but was detected statically"
            );
        } else {
            assert!(
                detections > 0,
                "{fault:?} injected {injections} times, never statically detected"
            );
            detected_types += 1;
        }
    }
    // The acceptance bar: at least 6 of the 9 Table-1 classes visible
    // without simulation (measured: 8).
    assert!(
        detected_types >= 6,
        "only {detected_types} fault types detected"
    );
}

/// Every rule that claims a Table-1 mapping names a real fault class.
#[test]
fn table1_mapping_names_real_fault_classes() {
    let names: BTreeSet<String> = TABLE1.iter().map(|(f, _)| f.to_string()).collect();
    for rule in Rule::ALL {
        if let Some(mapped) = rule.table1() {
            assert!(
                names.contains(mapped),
                "{rule} maps to unknown fault class {mapped:?}"
            );
        }
    }
}
