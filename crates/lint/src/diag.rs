//! Diagnostic types and the rustc-style text renderer.

use acr_cfg::NetworkConfig;
use acr_net_types::RouterId;
use std::fmt;

/// How severe a finding is — and, operationally, whether the repair
/// engine may reject a candidate for *introducing* it.
///
/// `Error` is reserved for findings whose flagged construct is either
/// **semantically inert** (a fully shadowed filter entry, an unreachable
/// policy node) or a **dangling reference** (a policy applied but never
/// defined). A candidate patch that introduces such a finding cannot be
/// the needed fix — an inert edit cannot improve fitness — so rejecting
/// it before simulation is sound. Everything heuristic or cross-device
/// is a `Warning`: it seeds localization but never vetoes a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Declares [`Rule`] with its kebab-case names, deriving [`Rule::ALL`]
/// and [`Rule::name`] from one list so they can never desynchronize —
/// adding a variant anywhere else is a compile error, forgetting the
/// name here is one too.
macro_rules! rules {
    ($( $(#[$meta:meta])* $variant:ident => $name:literal ),* $(,)?) => {
        /// The lint rules. Each rule name renders kebab-case (the
        /// `error[...]` tag) and most map onto one row of the paper's
        /// Table 1 via [`Rule::table1`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Rule {
            $( $(#[$meta])* $variant, )*
        }

        impl Rule {
            /// Every rule, for iteration in reports and tests.
            pub const ALL: [Rule; rules!(@count $($variant)*)] =
                [ $(Rule::$variant),* ];

            /// Kebab-case rule name (the `error[...]` tag).
            pub fn name(self) -> &'static str {
                match self {
                    $( Rule::$variant => $name, )*
                }
            }
        }
    };
    (@count) => { 0usize };
    (@count $head:ident $($tail:ident)*) => { 1usize + rules!(@count $($tail)*) };
}

rules! {
    /// `peer … route-policy P` / `group … route-policy P` where `P` has
    /// no `route-policy P … node …` definition.
    UndefinedRoutePolicy => "undefined-route-policy",
    /// `if-match ip-prefix L` where list `L` has no entries.
    UndefinedPrefixList => "undefined-prefix-list",
    /// `peer … group G` where `G` has no `group G external` definition.
    UndefinedPeerGroup => "undefined-peer-group",
    /// A traffic-policy `match acl N …` rule whose ACL is undefined or
    /// empty.
    UndefinedAcl => "undefined-acl",
    /// `apply traffic-policy T` where `T` is never defined.
    UndefinedTrafficPolicy => "undefined-traffic-policy",
    /// A route-policy / prefix-list / ACL / traffic-policy / peer-group
    /// definition nothing on the device references.
    UnusedDefinition => "unused-definition",
    /// A prefix-list entry no route can ever reach: an earlier entry
    /// matches everything it matches (e.g. after a `0.0.0.0 0` or
    /// `… le 32` catch-all), or its own `ge`/`le` bounds are empty.
    ShadowedPrefixListEntry => "shadowed-prefix-list-entry",
    /// A PBR rule shadowed by an earlier rule on the same ACL or by an
    /// earlier rule whose ACL starts with a universal permit.
    ShadowedPbrRule => "shadowed-pbr-rule",
    /// A route-policy node following a terminal match-all node.
    UnreachablePolicyNode => "unreachable-policy-node",
    /// `apply …` actions on a `deny` node — denied routes carry no
    /// attributes.
    ApplyOnDenyNode => "apply-on-deny-node",
    /// An `apply as-path prepend` whose effect is clobbered by a later
    /// `apply as-path overwrite` in the same node.
    ClobberedAsPathPrepend => "clobbered-as-path-prepend",
    /// A block sub-statement outside the block kind it requires.
    MisplacedStatement => "misplaced-statement",
    /// A peer's configured `as-number` disagrees with the neighbor's
    /// `bgp <asn>` process.
    SessionAsnMismatch => "session-asn-mismatch",
    /// A peer statement toward a neighbor that has no matching peer
    /// statement back.
    OneSidedSession => "one-sided-session",
    /// A peer address owned by no interface in the topology.
    UnknownPeer => "unknown-peer",
    /// A peer with a direct `as-number` joining a group carrying a
    /// different one — the group item is dead for this member.
    GroupAsnConflict => "group-asn-conflict",
    /// `apply as-path overwrite <asn>` naming an AS other than the
    /// device's own.
    OverrideAsnMismatch => "override-asn-mismatch",
    /// An import policy on a session that cannot admit a prefix the
    /// neighbor originates.
    ImportFilterGap => "import-filter-gap",
    /// Two devices sharing one router-id.
    DuplicateRouterId => "duplicate-router-id",

    // ---- cross-device rules over the acr-flow may-propagation facts ----
    /// A node of an applied route-policy that no route anywhere in the
    /// network can ever match.
    DeadPolicyTerm => "dead-policy-term",
    /// An originated route offered to at least one neighbor but
    /// importable by none of them.
    UnimportableRoute => "unimportable-route",
    /// An `if-match community` clause in an applied policy whose
    /// community no upstream device can ever have set.
    CommunityNeverSet => "community-never-set",
    /// An originated prefix that cannot leave its origin: every
    /// established session's export definitely denies it.
    PropagationBlackhole => "propagation-blackhole",
    /// A session where the sender's export lets prefixes through that
    /// the receiver's import policy then rejects wholesale.
    ExportImportMismatch => "export-import-mismatch",
    /// A bogon/martian (or default) route crossing a session between
    /// different topology roles.
    BogonLeak => "bogon-leak",
}

impl Rule {
    /// The rule's severity (see [`Severity`] for the soundness contract).
    pub fn severity(self) -> Severity {
        match self {
            Rule::UndefinedRoutePolicy
            | Rule::UndefinedPrefixList
            | Rule::UndefinedPeerGroup
            | Rule::UndefinedAcl
            | Rule::UndefinedTrafficPolicy
            | Rule::ShadowedPrefixListEntry
            | Rule::ShadowedPbrRule
            | Rule::UnreachablePolicyNode
            | Rule::ApplyOnDenyNode
            | Rule::ClobberedAsPathPrepend
            | Rule::MisplacedStatement => Severity::Error,
            _ => Severity::Warning,
        }
    }

    /// The Table-1 fault class (its display string in
    /// `acr_workloads::FaultType`) the rule most directly detects, when
    /// there is one. Kept as a string to avoid a dependency cycle with
    /// `acr-workloads`.
    pub fn table1(self) -> Option<&'static str> {
        match self {
            Rule::UndefinedRoutePolicy => Some("missing a routing policy"),
            Rule::UndefinedPrefixList | Rule::ShadowedPrefixListEntry => {
                Some("missing items in ip prefix-list")
            }
            Rule::UndefinedPeerGroup => Some("missing peer group"),
            Rule::UndefinedAcl | Rule::UndefinedTrafficPolicy | Rule::UnusedDefinition => {
                Some("missing permit rules in PBR")
            }
            Rule::ShadowedPbrRule => Some("extra redirect rule in PBR"),
            Rule::GroupAsnConflict => Some("extra items in peer group"),
            Rule::OverrideAsnMismatch => Some("override to wrong AS number"),
            Rule::ImportFilterGap => Some("fail to dis-enable route map"),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A secondary location attached to a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelatedNote {
    pub device: RouterId,
    pub device_name: String,
    pub line: u32,
    pub note: String,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub rule: Rule,
    pub severity: Severity,
    pub device: RouterId,
    pub device_name: String,
    /// 1-based inclusive line span on `device`.
    pub span: (u32, u32),
    /// The finding, stated **without line numbers** so [`DiagKey`]s are
    /// stable under unrelated inserts/deletes elsewhere in the file.
    pub message: String,
    pub related: Vec<RelatedNote>,
}

impl Diagnostic {
    /// Line-independent identity, used to compare a candidate's findings
    /// against the pre-repair baseline: a candidate is only penalized
    /// for findings the broken network did not already have.
    pub fn key(&self) -> DiagKey {
        DiagKey {
            rule: self.rule,
            device: self.device,
            message: self.message.clone(),
        }
    }
}

/// See [`Diagnostic::key`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiagKey {
    pub rule: Rule,
    pub device: RouterId,
    pub message: String,
}

/// The findings of one lint pass, sorted by device then line.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The identity set of every finding (baseline comparison).
    pub fn keys(&self) -> std::collections::HashSet<DiagKey> {
        self.diagnostics.iter().map(Diagnostic::key).collect()
    }

    /// Renders every diagnostic rustc-style, quoting the offending
    /// source lines out of `cfg`.
    pub fn render(&self, cfg: &NetworkConfig) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            render_one(&mut out, d, cfg);
        }
        let (errors, warnings) =
            self.diagnostics
                .iter()
                .fold((0, 0), |(e, w), d| match d.severity {
                    Severity::Error => (e + 1, w),
                    Severity::Warning => (e, w + 1),
                });
        if !self.diagnostics.is_empty() {
            out.push_str(&format!(
                "{errors} error{}, {warnings} warning{}\n",
                if errors == 1 { "" } else { "s" },
                if warnings == 1 { "" } else { "s" },
            ));
        }
        out
    }
}

/// One configuration line exactly as `to_text` prints it (the `Stmt`
/// display already indents block sub-statements one space).
fn source_line(cfg: &NetworkConfig, device: RouterId, line: u32) -> Option<String> {
    Some(cfg.device(device)?.line(line)?.to_string())
}

fn render_one(out: &mut String, d: &Diagnostic, cfg: &NetworkConfig) {
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.rule, d.message));
    out.push_str(&format!("  --> {}:{}\n", d.device_name, d.span.0));
    let width = d.span.1.to_string().len().max(2);
    out.push_str(&format!("{:width$} |\n", ""));
    for line in d.span.0..=d.span.1 {
        match source_line(cfg, d.device, line) {
            Some(text) => out.push_str(&format!("{line:width$} | {text}\n")),
            None => out.push_str(&format!("{line:width$} | <line missing>\n")),
        }
    }
    out.push_str(&format!("{:width$} |\n", ""));
    for r in &d.related {
        let quoted = source_line(cfg, r.device, r.line)
            .map(|t| format!(" `{}`", t.trim_start()))
            .unwrap_or_default();
        out.push_str(&format!(
            "{:width$} = related: {}:{} {} —{}\n",
            "", r.device_name, r.line, r.note, quoted
        ));
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_distinct_name() {
        let mut names: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Rule::ALL.len());
    }

    #[test]
    fn error_rules_are_the_inert_or_dangling_ones() {
        assert_eq!(Rule::ShadowedPrefixListEntry.severity(), Severity::Error);
        assert_eq!(Rule::UndefinedRoutePolicy.severity(), Severity::Error);
        assert_eq!(Rule::ImportFilterGap.severity(), Severity::Warning);
        assert_eq!(Rule::SessionAsnMismatch.severity(), Severity::Warning);
    }

    #[test]
    fn diag_key_ignores_lines() {
        let d = |span: (u32, u32)| Diagnostic {
            rule: Rule::UndefinedPrefixList,
            severity: Severity::Error,
            device: RouterId(1),
            device_name: "A".into(),
            span,
            message: "prefix-list `x` is matched but never defined".into(),
            related: Vec::new(),
        };
        assert_eq!(d((3, 3)).key(), d((9, 9)).key());
    }
}
