//! Cross-device consistency: BGP session symmetry, AS agreement, group
//! conflicts, ingress-filter coverage, and router-id uniqueness. These
//! rules are the reason the linter takes the [`acr_topo::Topology`] —
//! a single device in isolation cannot know who sits on the far end of
//! a `peer` statement.

use crate::ctx::{Ctx, DiagExt};
use crate::diag::{Diagnostic, Rule};
use acr_cfg::ast::{PeerRef, Stmt};
use acr_cfg::{DeviceModel, MatchCond, PlAction, PolicyNode};
use acr_net_types::{Asn, Ipv4Addr, Prefix};
use std::collections::BTreeMap;

pub(crate) fn run(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    // ---- duplicate router-ids across the network ---------------------
    let mut rid_seen: BTreeMap<Ipv4Addr, (acr_net_types::RouterId, u32)> = BTreeMap::new();
    for (id, _device, model) in ctx.devices() {
        if let Some((rid, line)) = model.router_id {
            match rid_seen.get(&rid) {
                Some((first, first_line)) => {
                    out.push(
                        ctx.diag(
                            Rule::DuplicateRouterId,
                            id,
                            (line, line),
                            format!("router-id {rid} is already used by {}", ctx.name_of(*first)),
                        )
                        .with_related(
                            ctx,
                            *first,
                            *first_line,
                            "first declared here",
                        ),
                    );
                }
                None => {
                    rid_seen.insert(rid, (id, line));
                }
            }
        }
    }

    for (id, device, model) in ctx.devices() {
        // ---- per-session checks --------------------------------------
        for (addr, peer) in &model.peers {
            let first_line = peer.lines.first().copied().unwrap_or(1);
            let Some(owner) = ctx.topo.owner_of(*addr) else {
                out.push(ctx.diag(
                    Rule::UnknownPeer,
                    id,
                    (first_line, first_line),
                    format!("peer {addr} matches no interface address in the topology"),
                ));
                continue;
            };
            if owner == id {
                continue; // peering one's own address — sim territory
            }
            let owner_model = ctx.model(owner);

            // Remote-AS agreement with the neighbor's BGP process.
            if let (Some((asn, asn_line)), Some(Some((owner_asn, owner_line)))) =
                (peer.asn, owner_model.map(|m| m.asn))
            {
                if asn != owner_asn {
                    out.push(
                        ctx.diag(
                            Rule::SessionAsnMismatch,
                            id,
                            (asn_line, asn_line),
                            format!(
                                "peer {addr} is configured with as-number {} but {} runs bgp {}",
                                asn.0,
                                ctx.name_of(owner),
                                owner_asn.0
                            ),
                        )
                        .with_related(
                            ctx,
                            owner,
                            owner_line,
                            "the neighbor's BGP process",
                        ),
                    );
                }
            }

            // Session symmetry: the neighbor must peer our address on
            // the shared link.
            if let (Some(my_addr), Some(om)) = (ctx.topo.addr_towards(id, owner), owner_model) {
                if !om.peers.contains_key(&my_addr) {
                    out.push(ctx.diag(
                        Rule::OneSidedSession,
                        id,
                        (first_line, first_line),
                        format!(
                            "peer {addr}: {} has no matching session back to {}",
                            ctx.name_of(owner),
                            ctx.name_of(id)
                        ),
                    ));
                }
            }

            // Ingress coverage: an import policy must be able to admit
            // each prefix the neighbor originates. Conservative — only
            // certain denial (under first-match list evaluation, with
            // unknowns such as community matches treated as permissive)
            // is flagged.
            if let Some((pol, pol_line)) = &peer.import_policy {
                if let Some(nodes) = model.route_policies.get(pol) {
                    for p in &ctx.topo.router(owner).attached {
                        if !could_permit(model, nodes, *p) {
                            out.push(
                                ctx.diag(
                                    Rule::ImportFilterGap,
                                    id,
                                    (*pol_line, *pol_line),
                                    format!(
                                        "import policy `{pol}` on the session to {} cannot admit its prefix {p}",
                                        ctx.name_of(owner)
                                    ),
                                )
                                .with_related(
                                    ctx,
                                    id,
                                    nodes.first().map(|n| n.line).unwrap_or(*pol_line),
                                    "the filtering policy",
                                ),
                            );
                        }
                    }
                }
            }
        }

        // ---- group items dead on arrival -----------------------------
        // A member with a direct as-number ignores the group's: if the
        // two disagree, either the membership or the group item is wrong.
        let mut direct_asn: BTreeMap<Ipv4Addr, (Asn, u32)> = BTreeMap::new();
        for (line, stmt) in device.lines() {
            if let Stmt::PeerAs {
                peer: PeerRef::Ip(ip),
                asn,
            } = stmt
            {
                direct_asn.insert(*ip, (*asn, line));
            }
        }
        for (line, stmt) in device.lines() {
            let Stmt::PeerGroup { peer, group } = stmt else {
                continue;
            };
            let Some((direct, direct_line)) = direct_asn.get(peer) else {
                continue;
            };
            let Some((gasn, gasn_line)) = model.groups.get(group).and_then(|g| g.asn) else {
                continue;
            };
            if *direct != gasn {
                out.push(
                    ctx.diag(
                        Rule::GroupAsnConflict,
                        id,
                        (line, line),
                        format!(
                            "peer {peer} has as-number {} but joins group `{group}` carrying as-number {}",
                            direct.0, gasn.0
                        ),
                    )
                    .with_related(ctx, id, *direct_line, "the peer's own as-number")
                    .with_related(ctx, id, gasn_line, "the group's as-number"),
                );
            }
        }
    }
}

/// Whether some evaluation of `nodes` (resolving unknowns permissively)
/// admits a route for `p`.
fn could_permit(model: &DeviceModel, nodes: &[PolicyNode], p: Prefix) -> bool {
    for node in nodes {
        match (match_status(model, node, p), node.action) {
            (Match::Yes, PlAction::Permit) => return true,
            (Match::Yes, PlAction::Deny) => return false,
            (Match::Maybe, PlAction::Permit) => return true,
            // Definitely not matched, or only possibly denied: a later
            // node may still admit the route.
            _ => {}
        }
    }
    false // fall-through is an implicit deny
}

enum Match {
    Yes,
    Maybe,
    No,
}

/// Whether `p` satisfies every if-match clause of `node`.
fn match_status(model: &DeviceModel, node: &PolicyNode, p: Prefix) -> Match {
    if node.matches.is_empty() {
        return Match::Yes; // no clauses: the node matches everything
    }
    let mut maybe = false;
    for (cond, _) in &node.matches {
        match cond {
            MatchCond::PrefixList(list) => {
                if !model.prefix_lists.contains_key(list) {
                    // Dangling list — undefined-prefix-list reports it;
                    // here it only degrades certainty.
                    maybe = true;
                } else if !matches!(model.eval_prefix_list(list, p), Some((true, _))) {
                    return Match::No; // list evaluation is deterministic
                }
            }
            MatchCond::Community(_) => maybe = true,
        }
    }
    if maybe {
        Match::Maybe
    } else {
        Match::Yes
    }
}
