//! # acr-lint
//!
//! Semantic static analysis over parsed router configurations — the
//! "compiler warnings" layer of the repair pipeline. Where simulation
//! answers *"does this network satisfy the spec?"*, the linter answers
//! *"is this configuration internally coherent?"* — without simulating
//! anything, in one pass over the ASTs and the topology.
//!
//! The rule catalog ([`Rule`]) targets the misconfiguration classes of
//! the paper's Table 1: dangling references (a route-policy applied but
//! never defined — "missing a routing policy"), shadowed prefix-list
//! entries (the Figure 2 `0.0.0.0 0` catch-all makes every later entry
//! dead), PBR rules behind a catch-all redirect, dead peer-group items,
//! wrong-AS overwrites, and cross-device session asymmetries.
//!
//! Findings feed the repair loop twice (see `acr-core`):
//!
//! - **localization seeding** — lines carrying findings get their SBFL
//!   suspiciousness boosted, pulling the template expansion toward
//!   statically suspect statements even when coverage alone ties;
//! - **search-space pruning** — a candidate patch that *introduces* a
//!   new [`Severity::Error`] finding is rejected before simulation.
//!   Error rules flag only semantically inert or dangling constructs
//!   (see [`Severity`]), so a rejected candidate can never have been
//!   the needed fix.
//!
//! ```
//! use acr_cfg::parse::parse_device;
//! use acr_topo::{Role, TopologyBuilder};
//!
//! let mut tb = TopologyBuilder::new();
//! let a = tb.router("A", Role::Backbone);
//! let topo = tb.build();
//! let mut cfg = acr_cfg::NetworkConfig::new();
//! cfg.insert(a, parse_device("A", "bgp 65001\n peer 10.0.0.1 route-policy Absent import\n").unwrap());
//!
//! let report = acr_lint::lint_network(&topo, &cfg);
//! assert_eq!(report.errors().count(), 1);
//! assert!(report.render(&cfg).contains("undefined-route-policy"));
//! ```

mod ctx;
mod diag;
mod flow;
mod pbr;
mod policy;
mod refs;
mod session;

pub use diag::{DiagKey, Diagnostic, LintReport, RelatedNote, Rule, Severity};

use acr_cfg::{DeviceModel, NetworkConfig};
use acr_topo::Topology;

/// Lints a network, building the semantic models itself.
pub fn lint_network(topo: &Topology, cfg: &NetworkConfig) -> LintReport {
    let models: Vec<DeviceModel> = topo
        .routers()
        .iter()
        .map(|r| match cfg.device(r.id) {
            Some(d) => DeviceModel::from_config(d),
            None => DeviceModel {
                name: r.name.clone(),
                ..DeviceModel::default()
            },
        })
        .collect();
    lint_with_models(topo, cfg, &models)
}

/// Lints a network against pre-built semantic models.
///
/// `models` must be parallel to `topo.routers()` (the contract of
/// `acr_core::models_of`) — the repair engine uses this entry point to
/// re-model only the devices a candidate patch touched.
pub fn lint_with_models(
    topo: &Topology,
    cfg: &NetworkConfig,
    models: &[DeviceModel],
) -> LintReport {
    let ctx = ctx::Ctx::new(topo, cfg, models);
    let mut diagnostics = Vec::new();
    refs::run(&ctx, &mut diagnostics);
    policy::run(&ctx, &mut diagnostics);
    pbr::run(&ctx, &mut diagnostics);
    session::run(&ctx, &mut diagnostics);
    let facts = acr_flow::analyze_with_models(topo, models);
    flow::run(&ctx, &facts, &mut diagnostics);
    diagnostics.sort_by(|a, b| {
        (a.device, a.span, a.rule)
            .cmp(&(b.device, b.span, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    diagnostics.dedup();
    LintReport { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::parse::parse_device;
    use acr_net_types::RouterId;
    use acr_topo::{Role, Topology, TopologyBuilder};

    /// Two routers on one link; `a_text`/`b_text` become their configs.
    fn pair(a_text: &str, b_text: &str) -> (Topology, NetworkConfig, RouterId, RouterId) {
        let mut tb = TopologyBuilder::new();
        let a = tb.router("A", Role::Backbone);
        let b = tb.router("B", Role::Backbone);
        tb.link(a, b); // 172.16.0.1 / .2
        let topo = tb.build();
        let mut cfg = NetworkConfig::new();
        cfg.insert(a, parse_device("A", a_text).unwrap());
        cfg.insert(b, parse_device("B", b_text).unwrap());
        (topo, cfg, a, b)
    }

    fn rules_of(report: &LintReport) -> Vec<Rule> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn symmetric_pair_is_clean() {
        let (topo, cfg, _, _) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        assert!(report.is_clean(), "{}", report.render(&cfg));
    }

    #[test]
    fn undefined_references_are_errors() {
        let (topo, cfg, a, _) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\n peer 172.16.0.2 route-policy Nope import\n peer 172.16.0.2 group Ghost\napply traffic-policy missing\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let rules = rules_of(&report);
        assert!(rules.contains(&Rule::UndefinedRoutePolicy), "{rules:?}");
        assert!(rules.contains(&Rule::UndefinedPeerGroup), "{rules:?}");
        assert!(rules.contains(&Rule::UndefinedTrafficPolicy), "{rules:?}");
        assert!(report.errors().all(|d| d.device == a));
    }

    #[test]
    fn catch_all_shadows_later_entries() {
        let (topo, cfg, _, _) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\n peer 172.16.0.2 route-policy P import\nroute-policy P permit node 10\n if-match ip-prefix L\nip prefix-list L index 10 permit 0.0.0.0 0\nip prefix-list L index 20 permit 10.0.0.0 16\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let shadows: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::ShadowedPrefixListEntry)
            .collect();
        assert_eq!(shadows.len(), 1, "{}", report.render(&cfg));
        assert!(
            shadows[0].message.contains("entry index 20"),
            "{}",
            shadows[0].message
        );
        assert_eq!(shadows[0].severity, Severity::Error);
        // A `le 32` catch-all shadows too; disjoint entries do not.
        let (topo, cfg, _, _) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\n peer 172.16.0.2 route-policy P import\nroute-policy P permit node 10\n if-match ip-prefix L\nip prefix-list L index 10 permit 10.0.0.0 8 le 32\nip prefix-list L index 20 permit 10.1.0.0 16\nip prefix-list L index 30 permit 20.0.0.0 16\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let shadows: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::ShadowedPrefixListEntry)
            .collect();
        assert_eq!(shadows.len(), 1, "{}", report.render(&cfg));
        assert!(shadows[0].message.contains("entry index 20"));
    }

    #[test]
    fn policy_dataflow_rules_fire() {
        let (topo, cfg, _, _) = pair(
            concat!(
                "bgp 65001\n",
                " peer 172.16.0.2 as-number 65002\n",
                " peer 172.16.0.2 route-policy P import\n",
                "route-policy P permit node 10\n",
                " apply as-path prepend 65001 3\n",
                " apply as-path overwrite\n",
                "route-policy P deny node 20\n",
                " apply local-preference 200\n",
                "route-policy P permit node 30\n",
                " if-match ip-prefix L\n",
                "ip prefix-list L index 10 permit 10.0.0.0 16\n",
            ),
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let rules = rules_of(&report);
        // Node 10 has no if-match: nodes 20 and 30 are unreachable, the
        // prepend is clobbered, and node 20's apply is on a deny node.
        assert!(rules.contains(&Rule::UnreachablePolicyNode), "{rules:?}");
        assert!(rules.contains(&Rule::ClobberedAsPathPrepend), "{rules:?}");
        assert!(rules.contains(&Rule::ApplyOnDenyNode), "{rules:?}");
    }

    #[test]
    fn override_asn_mismatch_is_flagged() {
        let (topo, cfg, _, _) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\n peer 172.16.0.2 route-policy P import\nroute-policy P permit node 10\n if-match ip-prefix L\n apply as-path overwrite 64999\nip prefix-list L index 10 permit 10.0.0.0 16\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::OverrideAsnMismatch)
            .expect("mismatch flagged");
        assert!(d.message.contains("AS 64999"), "{}", d.message);
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn session_asn_mismatch_and_one_sided() {
        let (topo, cfg, a, b) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 64999\n",
            "bgp 65002\n",
        );
        let report = lint_network(&topo, &cfg);
        let rules = rules_of(&report);
        assert!(rules.contains(&Rule::SessionAsnMismatch), "{rules:?}");
        assert!(rules.contains(&Rule::OneSidedSession), "{rules:?}");
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.device == a || d.device == b));
    }

    #[test]
    fn unknown_peer_is_flagged() {
        let (topo, cfg, _, _) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\n peer 192.0.2.9 as-number 65009\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        assert!(rules_of(&report).contains(&Rule::UnknownPeer));
    }

    #[test]
    fn pbr_shadowing_rules_fire() {
        let (topo, cfg, _, _) = pair(
            concat!(
                "bgp 65001\n",
                " peer 172.16.0.2 as-number 65002\n",
                "acl 3800\n",
                " rule 5 permit ip source 0.0.0.0 0 destination 10.0.0.0 8\n",
                "acl 3801\n",
                " rule 5 permit ip source 0.0.0.0 0 destination 0.0.0.0 0\n",
                "traffic-policy guard\n",
                " match acl 3801 redirect next-hop 172.16.0.2\n",
                " match acl 3800 permit\n",
                " match acl 3801 deny\n",
                "apply traffic-policy guard\n",
            ),
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let shadows: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::ShadowedPbrRule)
            .collect();
        // The catch-all redirect shadows the permit; the second acl-3801
        // rule is a same-acl shadow.
        assert_eq!(shadows.len(), 2, "{}", report.render(&cfg));
    }

    #[test]
    fn unused_definitions_warn() {
        let (topo, cfg, _, _) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\nroute-policy Orphan permit node 10\n if-match ip-prefix L\nip prefix-list L index 10 permit 10.0.0.0 16\nacl 3800\n rule 5 permit ip source 0.0.0.0 0 destination 10.0.0.0 8\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let unused: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::UnusedDefinition)
            .collect();
        // The orphan policy and the orphan acl — the list is used by the
        // (unused) policy and stays quiet.
        assert_eq!(unused.len(), 2, "{}", report.render(&cfg));
        assert!(unused.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn group_asn_conflict_fires() {
        let (topo, cfg, _, _) = pair(
            concat!(
                "bgp 65001\n",
                " peer 172.16.0.2 as-number 65002\n",
                " group Cust external\n",
                " peer Cust as-number 64999\n",
                " peer 172.16.0.2 group Cust\n",
            ),
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::GroupAsnConflict)
            .expect("conflict flagged");
        assert!(
            d.message.contains("64999") && d.message.contains("65002"),
            "{}",
            d.message
        );
    }

    #[test]
    fn import_filter_gap_spots_unroutable_neighbor_prefix() {
        let mut tb = TopologyBuilder::new();
        let a = tb.router("A", Role::Backbone);
        let b = tb.router("PoP", Role::PoP);
        tb.link(a, b);
        tb.attach(b, "10.7.0.0/16".parse().unwrap());
        let topo = tb.build();
        let mut cfg = NetworkConfig::new();
        let a_text = concat!(
            "bgp 65001\n",
            " peer 172.16.0.2 as-number 64999\n",
            " peer 172.16.0.2 route-policy In import\n",
            "route-policy In permit node 10\n",
            " if-match ip-prefix space\n",
            "ip prefix-list space index 10 permit 20.0.0.0 16\n",
        );
        cfg.insert(a, parse_device("A", a_text).unwrap());
        cfg.insert(
            b,
            parse_device(
                "PoP",
                "bgp 64999\n peer 172.16.0.1 as-number 65001\n network 10.7.0.0 16\n",
            )
            .unwrap(),
        );
        let report = lint_network(&topo, &cfg);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::ImportFilterGap)
            .expect("gap flagged");
        assert!(d.message.contains("10.7.0.0/16"), "{}", d.message);
        // Widening the list to cover the prefix silences the rule.
        let fixed = a_text.replace("permit 20.0.0.0 16", "permit 10.0.0.0 8 le 24");
        let mut cfg2 = cfg.clone();
        cfg2.insert(a, parse_device("A", &fixed).unwrap());
        let report = lint_network(&topo, &cfg2);
        assert!(
            !rules_of(&report).contains(&Rule::ImportFilterGap),
            "{}",
            report.render(&cfg2)
        );
    }

    #[test]
    fn duplicate_router_id_across_devices() {
        let (topo, cfg, _, b) = pair(
            "bgp 65001\n router-id 1.1.1.1\n peer 172.16.0.2 as-number 65002\n",
            "bgp 65002\n router-id 1.1.1.1\n peer 172.16.0.1 as-number 65001\n",
        );
        let report = lint_network(&topo, &cfg);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::DuplicateRouterId)
            .expect("duplicate flagged");
        assert_eq!(d.device, b);
        assert_eq!(d.related.len(), 1);
    }

    #[test]
    fn lint_with_models_matches_lint_network() {
        let (topo, cfg, _, _) = pair(
            "bgp 65001\n peer 172.16.0.2 as-number 64999\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let models: Vec<_> = topo
            .routers()
            .iter()
            .map(|r| acr_cfg::DeviceModel::from_config(cfg.device(r.id).unwrap()))
            .collect();
        let a = lint_network(&topo, &cfg);
        let b = lint_with_models(&topo, &cfg, &models);
        assert_eq!(a.keys(), b.keys());
    }
}
