//! Cross-device rules over the `acr-flow` may-propagation facts.
//!
//! Every rule here fires on a **definite negative** of the abstract
//! interpretation: the may-relation over-approximates every concrete
//! behaviour, so "cannot happen abstractly" implies "cannot happen in
//! any simulation" — which is what keeps these rules false-positive
//! free on the clean workload corpus. All of them are
//! [`Severity::Warning`](crate::Severity): they describe network-wide
//! intent mismatches, not per-device incoherence, so they seed
//! localization but never veto a candidate.

use crate::ctx::{Ctx, DiagExt};
use crate::diag::{Diagnostic, Rule};
use acr_cfg::model::{ApplyAction, MatchCond};
use acr_cfg::LineId;
use acr_flow::{DirFacts, FlowFacts};
use acr_net_types::{Community, Prefix};
use std::collections::BTreeSet;

pub(crate) fn run(ctx: &Ctx<'_>, facts: &FlowFacts, out: &mut Vec<Diagnostic>) {
    dead_policy_terms(ctx, facts, out);
    community_never_set(ctx, facts, out);
    origin_fates(ctx, facts, out);
    export_import_mismatch(ctx, facts, out);
    bogon_leaks(ctx, facts, out);
}

/// [`Rule::DeadPolicyTerm`]: a node of a session-applied policy that
/// may-matched no route during the whole fixed point.
fn dead_policy_terms(ctx: &Ctx<'_>, facts: &FlowFacts, out: &mut Vec<Diagnostic>) {
    for ((r, policy), app_line) in &facts.applied_policies {
        let Some(model) = ctx.model(*r) else { continue };
        let Some(nodes) = model.route_policies.get(policy) else {
            continue;
        };
        for node in nodes {
            if !facts.log.live_nodes.contains(&LineId::new(*r, node.line)) {
                out.push(
                    ctx.diag(
                        Rule::DeadPolicyTerm,
                        *r,
                        (node.line, node.line),
                        format!(
                            "node {} of applied route-policy `{policy}` matches no \
                             route any device in the network can propagate",
                            node.node
                        ),
                    )
                    .with_related(
                        ctx,
                        *r,
                        app_line.line,
                        "policy applied here",
                    ),
                );
            }
        }
    }
}

/// [`Rule::CommunityNeverSet`]: an `if-match community` clause in an
/// applied policy naming a community that no `apply community` anywhere
/// in the network can have attached (locally originated routes start
/// with none).
fn community_never_set(ctx: &Ctx<'_>, facts: &FlowFacts, out: &mut Vec<Diagnostic>) {
    let mut settable: BTreeSet<Community> = BTreeSet::new();
    for (_, _, model) in ctx.devices() {
        for nodes in model.route_policies.values() {
            for node in nodes {
                for (action, _) in &node.applies {
                    if let ApplyAction::Community(c) = action {
                        settable.insert(*c);
                    }
                }
            }
        }
    }
    for ((r, policy), app_line) in &facts.applied_policies {
        let Some(model) = ctx.model(*r) else { continue };
        let Some(nodes) = model.route_policies.get(policy) else {
            continue;
        };
        for node in nodes {
            for (cond, line) in &node.matches {
                if let MatchCond::Community(c) = cond {
                    if !settable.contains(c) {
                        out.push(
                            ctx.diag(
                                Rule::CommunityNeverSet,
                                *r,
                                (*line, *line),
                                format!(
                                    "route-policy `{policy}` matches community {c}, \
                                     which no device in the network ever applies"
                                ),
                            )
                            .with_related(
                                ctx,
                                *r,
                                app_line.line,
                                "policy applied here",
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// [`Rule::PropagationBlackhole`] and [`Rule::UnimportableRoute`]: an
/// originated prefix that either cannot pass any of its origin's export
/// policies, or passes at least one but is rejected by every neighbor's
/// import.
fn origin_fates(ctx: &Ctx<'_>, facts: &FlowFacts, out: &mut Vec<Diagnostic>) {
    for ((r, p), lines) in &facts.origins {
        let mut has_session = false;
        let mut offered = false;
        let mut accepted = false;
        for si in 0..facts.sessions.len() {
            let Some(dir) = dir_of(facts, si, *r) else {
                continue;
            };
            has_session = true;
            offered |= dir.offered.contains(p);
            accepted |= dir.accepted.contains(p);
        }
        let line = lines.iter().map(|l| l.line).min().unwrap_or(1);
        if has_session && !offered {
            out.push(ctx.diag(
                Rule::PropagationBlackhole,
                *r,
                (line, line),
                format!(
                    "originated prefix {p} is denied by the export policy of every \
                     established session — it can never leave this device"
                ),
            ));
        } else if offered && !accepted {
            out.push(ctx.diag(
                Rule::UnimportableRoute,
                *r,
                (line, line),
                format!(
                    "originated prefix {p} survives an export policy but no \
                     neighbor's import policy can accept it"
                ),
            ));
        }
    }
}

/// [`Rule::ExportImportMismatch`]: one direction of a session where the
/// sender's export lets routes through but the receiver's import policy
/// rejects every one of them.
fn export_import_mismatch(ctx: &Ctx<'_>, facts: &FlowFacts, out: &mut Vec<Diagnostic>) {
    for (si, s) in facts.sessions.iter().enumerate() {
        for sender in [s.a, s.b] {
            let Some(dir) = dir_of(facts, si, sender) else {
                continue;
            };
            if dir.offered.is_empty() || !dir.accepted.is_empty() {
                continue;
            }
            let Some(view) = s.view_of(sender) else {
                continue;
            };
            let receiver = view.peer;
            let recv_view = s.view_of(receiver).expect("sessions are symmetric");
            let Some((import, import_line)) = recv_view.import else {
                continue; // nothing rejected them — they just never arrive
            };
            let mut d = ctx.diag(
                Rule::ExportImportMismatch,
                receiver,
                (import_line.line, import_line.line),
                format!(
                    "import policy `{import}` rejects every route {} can export \
                     on this session",
                    ctx.name_of(sender)
                ),
            );
            if let Some((export, export_line)) = view.export {
                d = d.with_related(
                    ctx,
                    sender,
                    export_line.line,
                    &format!("peer exports via `{export}`"),
                );
            } else if let Some(l) = view.base_lines.first() {
                d = d.with_related(ctx, sender, l.line, "peer session configured here");
            }
            out.push(d);
        }
    }
}

/// [`Rule::BogonLeak`]: a bogon/martian (or the default route) may be
/// accepted across a session whose endpoints play different topology
/// roles — past exactly the boundary where it should have been
/// filtered.
fn bogon_leaks(ctx: &Ctx<'_>, facts: &FlowFacts, out: &mut Vec<Diagnostic>) {
    let bogons: Vec<Prefix> = [
        "0.0.0.0/8",
        "127.0.0.0/8",
        "169.254.0.0/16",
        "192.0.2.0/24",
        "224.0.0.0/4",
        "240.0.0.0/4",
    ]
    .iter()
    .map(|s| s.parse().expect("static bogon table parses"))
    .collect();
    let is_bogon = |p: Prefix| p.len() == 0 || bogons.iter().any(|b| b.covers(p));

    for (si, s) in facts.sessions.iter().enumerate() {
        let role_a = ctx.topo.router(s.a).role;
        let role_b = ctx.topo.router(s.b).role;
        if role_a == role_b {
            continue;
        }
        for sender in [s.a, s.b] {
            let Some(dir) = dir_of(facts, si, sender) else {
                continue;
            };
            let Some(view) = s.view_of(sender) else {
                continue;
            };
            let receiver = view.peer;
            let recv_view = s.view_of(receiver).expect("sessions are symmetric");
            let line = recv_view
                .import
                .map(|(_, l)| l.line)
                .or_else(|| recv_view.base_lines.first().map(|l| l.line))
                .unwrap_or(1);
            for p in dir.accepted.iter().copied().filter(|p| is_bogon(*p)) {
                out.push(
                    ctx.diag(
                        Rule::BogonLeak,
                        receiver,
                        (line, line),
                        format!(
                            "bogon prefix {p} can cross the {}/{} role boundary \
                             from {}",
                            ctx.topo.router(sender).role,
                            ctx.topo.router(receiver).role,
                            ctx.name_of(sender)
                        ),
                    )
                    .with_related(
                        ctx,
                        sender,
                        s.view_of(sender)
                            .and_then(|v| v.base_lines.first().map(|l| l.line))
                            .unwrap_or(1),
                        "sent from here",
                    ),
                );
            }
        }
    }
}

/// `sender`'s outbound direction on session `si`, if it participates.
fn dir_of(facts: &FlowFacts, si: usize, sender: acr_net_types::RouterId) -> Option<&DirFacts> {
    let s = &facts.sessions[si];
    if s.a == sender {
        Some(&facts.session_facts[si].a_to_b)
    } else if s.b == sender {
        Some(&facts.session_facts[si].b_to_a)
    } else {
        None
    }
}
