//! PBR (traffic-policy) rule reachability, per device.

use crate::ctx::{Ctx, DiagExt};
use crate::diag::{Diagnostic, Rule};
use acr_cfg::{DeviceModel, MatchProto, PlAction};
use acr_net_types::Prefix;

pub(crate) fn run(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for (id, _device, model) in ctx.devices() {
        for (name, rules) in &model.pbr_policies {
            for (j, later) in rules.iter().enumerate() {
                // Earlier rule on the same ACL: whatever the action, it
                // consumes every packet the later rule could match.
                if let Some(earlier) = rules[..j].iter().find(|r| r.acl == later.acl) {
                    out.push(
                        ctx.diag(
                            Rule::ShadowedPbrRule,
                            id,
                            (later.line, later.line),
                            format!(
                                "traffic-policy `{name}`: the second rule on acl {} is shadowed by the first",
                                later.acl
                            ),
                        )
                        .with_related(ctx, id, earlier.line, "the shadowing rule"),
                    );
                    continue;
                }
                // Earlier rule whose ACL opens with a universal permit
                // matches every packet outright.
                if let Some(earlier) = rules[..j].iter().find(|r| acl_is_universal(model, r.acl)) {
                    out.push(
                        ctx.diag(
                            Rule::ShadowedPbrRule,
                            id,
                            (later.line, later.line),
                            format!(
                                "traffic-policy `{name}`: the rule on acl {} is shadowed by an earlier catch-all rule on acl {}",
                                later.acl, earlier.acl
                            ),
                        )
                        .with_related(ctx, id, earlier.line, "the catch-all rule"),
                    );
                }
            }
        }
    }
}

/// Whether the ACL's first rule permits every packet.
fn acl_is_universal(model: &DeviceModel, acl: u32) -> bool {
    model
        .acls
        .get(&acl)
        .and_then(|entries| entries.first())
        .map(|e| {
            e.rule.action == PlAction::Permit
                && e.rule.proto == MatchProto::Ip
                && e.rule.src == Prefix::DEFAULT
                && e.rule.dst == Prefix::DEFAULT
                && e.rule.dst_port.is_none()
        })
        .unwrap_or(false)
}
