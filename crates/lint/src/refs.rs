//! Reference hygiene: undefined references, unused definitions, and
//! misplaced block sub-statements. All checks are per-device and work on
//! the raw statement stream (exact lines) cross-checked against the
//! semantic model (resolved name tables).

use crate::ctx::Ctx;
use crate::diag::{Diagnostic, Rule};
use acr_cfg::ast::Stmt;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) fn run(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for (id, device, model) in ctx.devices() {
        // ---- definition and use tables (first line wins) ------------
        let mut policy_defs: BTreeMap<&str, u32> = BTreeMap::new();
        let mut list_defs: BTreeMap<&str, u32> = BTreeMap::new();
        let mut group_defs: BTreeMap<&str, u32> = BTreeMap::new();
        let mut acl_defs: BTreeMap<u32, u32> = BTreeMap::new();
        let mut pbr_defs: BTreeMap<&str, u32> = BTreeMap::new();
        let mut policy_uses: BTreeSet<&str> = BTreeSet::new();
        let mut list_uses: BTreeSet<&str> = BTreeSet::new();
        let mut group_uses: BTreeSet<&str> = BTreeSet::new();
        let mut acl_uses: BTreeSet<u32> = BTreeSet::new();
        let mut pbr_uses: BTreeSet<&str> = BTreeSet::new();
        // First referencing line of each dangling name (dedup: one
        // diagnostic per name, however often it is referenced).
        let mut dangling: BTreeMap<(Rule, String), u32> = BTreeMap::new();

        for (line, stmt) in device.lines() {
            match stmt {
                Stmt::RoutePolicyDef { name, .. } => {
                    policy_defs.entry(name).or_insert(line);
                }
                Stmt::PrefixListEntry { list, .. } => {
                    list_defs.entry(list).or_insert(line);
                }
                Stmt::GroupDef(name) => {
                    group_defs.entry(name).or_insert(line);
                }
                Stmt::AclDef(n) => {
                    acl_defs.entry(*n).or_insert(line);
                }
                Stmt::PbrPolicyDef(name) => {
                    pbr_defs.entry(name).or_insert(line);
                }
                Stmt::PeerPolicy { policy, .. } => {
                    policy_uses.insert(policy);
                    if !model.route_policies.contains_key(policy) {
                        dangling
                            .entry((
                                Rule::UndefinedRoutePolicy,
                                format!("route-policy `{policy}` is applied but never defined"),
                            ))
                            .or_insert(line);
                    }
                }
                Stmt::IfMatchPrefixList(list) => {
                    list_uses.insert(list);
                    if !model.prefix_lists.contains_key(list) {
                        dangling
                            .entry((
                                Rule::UndefinedPrefixList,
                                format!("prefix-list `{list}` is matched but has no entries"),
                            ))
                            .or_insert(line);
                    }
                }
                Stmt::PeerGroup { group, .. } => {
                    group_uses.insert(group);
                    let defined = model
                        .groups
                        .get(group)
                        .is_some_and(|g| g.def_line.is_some());
                    if !defined {
                        dangling
                            .entry((
                                Rule::UndefinedPeerGroup,
                                format!("peer group `{group}` is joined but never defined"),
                            ))
                            .or_insert(line);
                    }
                }
                Stmt::PbrRule { acl, .. } => {
                    acl_uses.insert(*acl);
                    match model.acls.get(acl) {
                        None => {
                            dangling
                                .entry((
                                    Rule::UndefinedAcl,
                                    format!("traffic-policy rule matches undefined acl {acl}"),
                                ))
                                .or_insert(line);
                        }
                        Some(entries) if entries.is_empty() => {
                            dangling
                                .entry((
                                    Rule::UndefinedAcl,
                                    format!(
                                        "traffic-policy rule matches acl {acl}, which has no rules"
                                    ),
                                ))
                                .or_insert(line);
                        }
                        Some(_) => {}
                    }
                }
                Stmt::ApplyTrafficPolicy(name) => {
                    pbr_uses.insert(name);
                    if !model.pbr_policies.contains_key(name) {
                        dangling
                            .entry((
                                Rule::UndefinedTrafficPolicy,
                                format!("applied traffic-policy `{name}` is never defined"),
                            ))
                            .or_insert(line);
                    }
                }
                _ => {}
            }
        }

        for ((rule, message), line) in dangling {
            out.push(ctx.diag(rule, id, (line, line), message));
        }

        // ---- unused definitions --------------------------------------
        let unused = |out: &mut Vec<Diagnostic>, kind: &str, name: &str, line: u32| {
            out.push(ctx.diag(
                Rule::UnusedDefinition,
                id,
                (line, line),
                format!("{kind} `{name}` is defined but never used"),
            ));
        };
        for (name, line) in &policy_defs {
            if !policy_uses.contains(name) {
                unused(out, "route-policy", name, *line);
            }
        }
        for (name, line) in &list_defs {
            if !list_uses.contains(name) {
                unused(out, "prefix-list", name, *line);
            }
        }
        for (name, line) in &group_defs {
            if !group_uses.contains(name) {
                unused(out, "peer group", name, *line);
            }
        }
        for (n, line) in &acl_defs {
            if !acl_uses.contains(n) {
                unused(out, "acl", &n.to_string(), *line);
            }
        }
        for (name, line) in &pbr_defs {
            if !pbr_uses.contains(name) {
                unused(out, "traffic-policy", name, *line);
            }
        }

        // ---- misplaced sub-statements --------------------------------
        let blocks = device.block_map();
        for (i, stmt) in device.stmts().iter().enumerate() {
            if let Some(required) = stmt.required_block() {
                if blocks.get(i).copied().flatten() != Some(required) {
                    out.push(ctx.diag(
                        Rule::MisplacedStatement,
                        id,
                        (i as u32 + 1, i as u32 + 1),
                        format!("`{stmt}` appears outside a {required:?} block"),
                    ));
                }
            }
        }
    }
}
