//! Shared state handed to every rule module.

use crate::diag::{Diagnostic, RelatedNote, Rule};
use acr_cfg::{DeviceConfig, DeviceModel, NetworkConfig};
use acr_net_types::RouterId;
use acr_topo::Topology;
use std::collections::BTreeMap;

pub(crate) struct Ctx<'a> {
    pub topo: &'a Topology,
    pub cfg: &'a NetworkConfig,
    /// Semantic models keyed by router (built once, shared by all rules).
    models: BTreeMap<RouterId, &'a DeviceModel>,
}

impl<'a> Ctx<'a> {
    /// `models` is parallel to `topo.routers()` — the same contract as
    /// `acr_core::models_of`, so the engine can share its model cache.
    pub fn new(topo: &'a Topology, cfg: &'a NetworkConfig, models: &'a [DeviceModel]) -> Self {
        let models = topo
            .routers()
            .iter()
            .zip(models)
            .map(|(r, m)| (r.id, m))
            .collect();
        Ctx { topo, cfg, models }
    }

    /// Every configured device with its semantic model.
    pub fn devices(
        &self,
    ) -> impl Iterator<Item = (RouterId, &'a DeviceConfig, &'a DeviceModel)> + '_ {
        self.topo.routers().iter().filter_map(move |r| {
            let device = self.cfg.device(r.id)?;
            let model = self.models.get(&r.id)?;
            Some((r.id, device, *model))
        })
    }

    /// The semantic model of one router, if configured.
    pub fn model(&self, id: RouterId) -> Option<&'a DeviceModel> {
        self.models.get(&id).copied()
    }

    /// Display name of a router.
    pub fn name_of(&self, id: RouterId) -> String {
        self.topo.router(id).name.clone()
    }

    /// A diagnostic on `device` with the rule's intrinsic severity.
    pub fn diag(
        &self,
        rule: Rule,
        device: RouterId,
        span: (u32, u32),
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity: rule.severity(),
            device,
            device_name: self.name_of(device),
            span,
            message,
            related: Vec::new(),
        }
    }
}

/// Builder-style attachment of related locations.
pub(crate) trait DiagExt {
    fn with_related(self, ctx: &Ctx<'_>, device: RouterId, line: u32, note: &str) -> Self;
}

impl DiagExt for Diagnostic {
    fn with_related(mut self, ctx: &Ctx<'_>, device: RouterId, line: u32, note: &str) -> Self {
        self.related.push(RelatedNote {
            device,
            device_name: ctx.name_of(device),
            line,
            note: note.to_string(),
        });
        self
    }
}
