//! Route-policy dataflow and prefix-list reachability, per device.

use crate::ctx::{Ctx, DiagExt};
use crate::diag::{Diagnostic, Rule};
use acr_cfg::model::ApplyAction;
use acr_cfg::{PlAction, PlEntry};

pub(crate) fn run(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for (id, _device, model) in ctx.devices() {
        // ---- route-policy dataflow -----------------------------------
        for (name, nodes) in &model.route_policies {
            // A node with no if-match clauses matches every route:
            // whatever follows it can never be evaluated.
            if let Some(t) = nodes.iter().position(|n| n.matches.is_empty()) {
                for n in &nodes[t + 1..] {
                    out.push(
                        ctx.diag(
                            Rule::UnreachablePolicyNode,
                            id,
                            (n.line, n.line),
                            format!(
                                "route-policy `{name}` node {} is unreachable: node {} matches every route",
                                n.node, nodes[t].node
                            ),
                        )
                        .with_related(ctx, id, nodes[t].line, "the terminal match-all node"),
                    );
                }
            }
            for n in nodes {
                if n.action == PlAction::Deny && !n.applies.is_empty() {
                    let first = n.applies.first().map(|(_, l)| *l).unwrap_or(n.line);
                    let last = n.applies.last().map(|(_, l)| *l).unwrap_or(n.line);
                    out.push(
                        ctx.diag(
                            Rule::ApplyOnDenyNode,
                            id,
                            (first, last),
                            format!(
                                "route-policy `{name}` node {} denies, so its apply actions never take effect",
                                n.node
                            ),
                        )
                        .with_related(ctx, id, n.line, "the deny node"),
                    );
                }
                // `apply as-path overwrite` replaces the whole AS_PATH:
                // any earlier prepend in the same node is discarded.
                let prepend = n
                    .applies
                    .iter()
                    .position(|(a, _)| matches!(a, ApplyAction::AsPathPrepend { .. }));
                if let Some(p) = prepend {
                    if let Some((_, oline)) = n.applies[p + 1..]
                        .iter()
                        .find(|(a, _)| matches!(a, ApplyAction::AsPathOverwrite(_)))
                    {
                        out.push(
                            ctx.diag(
                                Rule::ClobberedAsPathPrepend,
                                id,
                                (*oline, *oline),
                                format!(
                                    "route-policy `{name}` node {}: as-path overwrite discards the earlier as-path prepend",
                                    n.node
                                ),
                            )
                            .with_related(ctx, id, n.applies[p].1, "the clobbered prepend"),
                        );
                    }
                }
                for (a, aline) in &n.applies {
                    if let ApplyAction::AsPathOverwrite(Some(asn)) = a {
                        if let Some((own, _)) = model.asn {
                            if *asn != own {
                                out.push(ctx.diag(
                                    Rule::OverrideAsnMismatch,
                                    id,
                                    (*aline, *aline),
                                    format!(
                                        "route-policy `{name}` node {} overwrites as-path with AS {} but the device runs bgp {}",
                                        n.node, asn.0, own.0
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }

        // ---- prefix-list entry reachability --------------------------
        for (list, entries) in &model.prefix_lists {
            for (j, later) in entries.iter().enumerate() {
                if matchable_lengths(later).is_none() {
                    out.push(ctx.diag(
                        Rule::ShadowedPrefixListEntry,
                        id,
                        (later.line, later.line),
                        format!(
                            "prefix-list `{list}` entry index {} can never match: its ge/le bounds admit no length",
                            later.index
                        ),
                    ));
                    continue;
                }
                if let Some(earlier) = entries[..j].iter().find(|e| shadows(e, later)) {
                    out.push(
                        ctx.diag(
                            Rule::ShadowedPrefixListEntry,
                            id,
                            (later.line, later.line),
                            format!(
                                "prefix-list `{list}` entry index {} can never match: entry index {} shadows it",
                                later.index, earlier.index
                            ),
                        )
                        .with_related(ctx, id, earlier.line, "the shadowing entry"),
                    );
                }
            }
        }
    }
}

/// The (lo, hi) route lengths an entry can match, or `None` when empty.
fn matchable_lengths(e: &PlEntry) -> Option<(u8, u8)> {
    let lo = e.ge.unwrap_or(0).max(e.prefix.len());
    let hi = e.le.unwrap_or(32);
    (lo <= hi).then_some((lo, hi))
}

/// Whether every route `later` matches is already consumed by `earlier`
/// (first-match evaluation), regardless of either entry's action.
fn shadows(earlier: &PlEntry, later: &PlEntry) -> bool {
    let (Some((elo, ehi)), Some((llo, lhi))) =
        (matchable_lengths(earlier), matchable_lengths(later))
    else {
        return false;
    };
    earlier.prefix.covers(later.prefix) && elo <= llo && ehi >= lhi
}
