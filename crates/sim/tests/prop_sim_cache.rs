//! Property tests for simulation memo-cache soundness.
//!
//! The cache's correctness rests on one claim: the config fingerprint
//! (hash of the canonical rendered configuration) plus the verifier
//! context fingerprint fully determine a verification, so serving a
//! memoized result is indistinguishable from re-simulating. These
//! properties fuzz that claim from below (fingerprint ⇒ identical
//! `SimOutcome`) and from above (`run_full_cached` ≡ `run_full`,
//! field for field), plus the `ShardedCache` bound/consistency
//! invariants the memo is built on.

// Gated: run with `cargo test --features heavy-tests` (vendored proptest shim).
#![cfg(feature = "heavy-tests")]

use acr_cfg::{Edit, NetworkConfig, Patch, Stmt};
use acr_net_types::Prefix;
use acr_sim::{ShardedCache, Simulator};
use acr_verify::{SimCache, Verifier};
use acr_workloads::{generate, GeneratedNetwork};
use proptest::prelude::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};

fn wan() -> GeneratedNetwork {
    generate(&acr_topo::gen::wan(3, 4))
}

/// A semantically valid single edit derived from raw fuzz inputs (same
/// shape as the system-level property suite).
fn edit_from(net: &GeneratedNetwork, ri: usize, pos: u16, kind: u8) -> Patch {
    let routers = net.cfg.routers();
    let router = routers[ri % routers.len()];
    let len = net.cfg.device(router).unwrap().len();
    match kind % 3 {
        0 => Patch::single(Edit::Delete {
            router,
            index: pos as usize % len,
        }),
        1 => Patch::single(Edit::Insert {
            router,
            index: len,
            stmt: Stmt::StaticRoute {
                prefix: Prefix::from_octets(10, (pos % 200) as u8, 0, 0, 16),
                next_hop: acr_cfg::NextHop::Null0,
            },
        }),
        _ => Patch::single(Edit::Replace {
            router,
            index: pos as usize % len,
            stmt: Stmt::Remark("mutated".into()),
        }),
    }
}

fn patched(net: &GeneratedNetwork, ri: usize, pos: u16, kind: u8) -> Option<NetworkConfig> {
    edit_from(net, ri, pos, kind).apply_cloned(&net.cfg).ok()
}

/// The canonical rendered text the fingerprint is computed over.
fn render(cfg: &NetworkConfig) -> String {
    cfg.routers()
        .iter()
        .filter_map(|r| cfg.device(*r).map(|d| d.to_text()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fingerprint equality implies identical simulation outcomes: two
    /// configs that hash alike (same canonical render — including the
    /// same config reached through different edit paths) simulate to
    /// field-identical `SimOutcome`s, and distinct fuzzed variants of
    /// the same base re-simulate reproducibly.
    #[test]
    fn fingerprint_determines_sim_outcome(ri in any::<usize>(), pos in any::<u16>(), kind in any::<u8>()) {
        let net = wan();
        let Some(a) = patched(&net, ri, pos, kind) else { return };
        let Some(b) = patched(&net, ri, pos, kind) else { return };
        // Same edit path ⇒ same fingerprint — the key is stable.
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        // Same fingerprint ⇒ the simulator cannot tell them apart.
        let out_a = Simulator::new(&net.topo, &a).run();
        let out_b = Simulator::new(&net.topo, &b).run();
        prop_assert_eq!(&out_a.outcomes, &out_b.outcomes);
        prop_assert_eq!(&out_a.fibs, &out_b.fibs);
        prop_assert_eq!(&out_a.arena, &out_b.arena);
        prop_assert_eq!(&out_a.session_diags, &out_b.session_diags);
        // And the fingerprint actually keys the *render*: a config with
        // a different render must not collide with the base (hash
        // collisions are possible in principle; at 24 cases over a
        // 64-bit hash a collision means the fingerprint is broken).
        if render(&a) != render(&net.cfg) {
            prop_assert!(a.fingerprint() != net.cfg.fingerprint());
        }
    }

    /// `run_full_cached` is observationally `run_full`: the miss that
    /// populates the cache and the hit that reads it back both equal a
    /// fresh uncached verification, field for field.
    #[test]
    fn cached_run_full_equals_fresh(ri in any::<usize>(), pos in any::<u16>(), kind in any::<u8>()) {
        let net = wan();
        let Some(cfg) = patched(&net, ri, pos, kind) else { return };
        let verifier = Verifier::new(&net.topo, &net.spec);
        let cache = SimCache::new(8);
        let (v_fresh, out_fresh) = verifier.run_full(&cfg);
        let (v_miss, out_miss) = verifier.run_full_cached(&cfg, &cache);
        let (v_hit, out_hit) = verifier.run_full_cached(&cfg, &cache);
        prop_assert_eq!(&v_fresh, &v_miss);
        prop_assert_eq!(&v_fresh, &v_hit);
        prop_assert_eq!(&out_fresh, &out_miss);
        prop_assert_eq!(&out_fresh, &out_hit);
        // One miss, one hit, one entry.
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(cache.len(), 1);
    }

    /// The sharded store the memo rides on never exceeds its bound and
    /// always returns the live value for a key, under arbitrary
    /// insert/peek/touch interleavings.
    #[test]
    fn sharded_cache_is_bounded_and_consistent(ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..200)) {
        let shards = 4usize;
        let capacity = 3usize;
        let cache: ShardedCache<u8, u32> = ShardedCache::new(shards, capacity);
        let mut live: std::collections::HashMap<u8, u32> = std::collections::HashMap::new();
        for (i, (op, key)) in ops.iter().enumerate() {
            match op % 3 {
                0 => {
                    cache.insert(*key, i as u32);
                    live.insert(*key, i as u32);
                }
                1 => {
                    if let Some(v) = cache.peek(key) {
                        // A peek may miss (evicted) but never returns a
                        // stale value.
                        prop_assert_eq!(Some(&v), live.get(key));
                    }
                }
                _ => cache.touch(key),
            }
            prop_assert!(cache.len() <= shards * capacity, "cache exceeded its bound");
        }
    }
}
