//! Delta-compiled simulation state.
//!
//! A [`CompiledBase`] owns everything `Simulator` construction used to
//! recompute from scratch for every candidate patch: the per-device
//! semantic models, the established sessions (kept per-router so a patch
//! re-runs establishment only where it can matter), and the
//! [`OriginIndex`]. Candidate validation builds a simulator from the base
//! plus a [`Patch`] via [`crate::Simulator::from_base_with_patch`]:
//!
//! - **models** — only devices the patch touches are recompiled; every
//!   other router shares the base's `Arc<DeviceModel>`.
//! - **sessions** — a router's establishment part depends only on its own
//!   `peers`/AS value, its topological neighbors' `peers`/AS values, and
//!   the static topology (see [`establish_router`]). So establishment
//!   reruns only for touched routers whose peer stanza or AS value
//!   actually changed, plus their neighbors (who re-pair against the
//!   patched half); everything else reuses the base parts. Concatenating
//!   parts in router order reproduces a full [`establish`] byte for byte.
//! - **originations** — touched routers swap their per-router slice in
//!   the index; the prefixes whose origination set changed are reported
//!   for invalidation.
//!
//! The delta analysis also classifies the patch for the incremental
//! verifier ([`SessionDelta`]): only *structural* session changes (a
//! session or diagnostic appearing, disappearing, or changing policy
//! bindings) force a full per-prefix reset; pure line renumbering is
//! already covered by the verifier's closure-region rule.

use crate::origin::{router_origins, OriginIndex};
use crate::session::{establish_router, Session, SessionDiag};
use acr_cfg::model::DeviceModel;
use acr_cfg::{Edit, NetworkConfig, Patch};
use acr_net_types::{Prefix, RouterId};
use acr_obs::metrics::Counter;
use acr_obs::span;
use acr_topo::Topology;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DELTA_BUILDS: Counter = Counter::new("sim.delta.builds");
static DELTA_COMPILED: Counter = Counter::new("sim.delta.compiled_devices");
static DELTA_ESTABLISHED: Counter = Counter::new("sim.delta.established_routers");

/// One router's session-establishment output (see [`establish_router`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionPart {
    pub sessions: Vec<Session>,
    pub diags: Vec<SessionDiag>,
}

/// Construction cost accounting for one simulator build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimBuild {
    /// Wall-clock spent compiling device models (plus origination-index
    /// maintenance).
    pub compile: Duration,
    /// Wall-clock spent establishing BGP sessions.
    pub establish: Duration,
    /// Devices actually compiled (delta path: patched devices only).
    pub compiled_devices: usize,
    /// Routers whose establishment part was recomputed.
    pub established_routers: usize,
    /// Whether this build reused a [`CompiledBase`].
    pub delta: bool,
}

/// How a patch changed the session layer, for cache invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionDelta {
    /// Sessions and diagnostics are byte-identical to the base.
    Unchanged,
    /// Only line attributions moved (an edit shifted statements on a
    /// touched router). All moved lines are at-or-after the edit point,
    /// so the verifier's closure-region rule already invalidates every
    /// prefix that could observe them.
    LinesOnly,
    /// A session or diagnostic appeared, disappeared, or changed its
    /// endpoints/policy bindings — routes may flow along new paths with
    /// no trace in any cached closure, so everything must be re-simulated.
    Structural,
}

/// What a delta build learned about the patch — the input to fine-grained
/// cache invalidation in `acr-verify`.
#[derive(Debug, Clone)]
pub struct DeltaInfo {
    pub session_delta: SessionDelta,
    /// Prefixes whose origination set changed on a touched router
    /// (origins added, dropped, or re-attributed).
    pub changed_origin_prefixes: BTreeSet<Prefix>,
    /// Prefix literals of the *base* models of routers with `Delete`
    /// edits. A delete's statement is gone from the candidate config, so
    /// the literals it may have mentioned are recovered conservatively
    /// from the pre-patch model.
    pub delete_literals: Vec<Prefix>,
    /// Whether the patch provably leaves the BGP dynamics unchanged, so
    /// cached converged fixed points may be warm-started (probe + reuse).
    ///
    /// The per-prefix run reads exactly: the session vector (views, base
    /// lines, policy bindings), each router's AS value, the origination
    /// index, and — through `eval_policy` — the touched models'
    /// `route_policies` and `prefix_lists`. If sessions are byte-identical
    /// ([`SessionDelta::Unchanged`]), no origination changed, and every
    /// touched router kept those three model inputs equal, then every
    /// input of every `run_prefix` call is identical to the base's, the
    /// candidate's convergence trajectory replays the base's round for
    /// round, and the cached outcome (rounds, bests, rejections, interned
    /// derivations) is byte-for-byte reusable. Typical eligible patches:
    /// ACL, PBR, static-route and remark edits — which the conservative
    /// region/literal-overlap rules still invalidate prefixes for.
    pub warm_eligible: bool,
    /// Construction cost of the delta build.
    pub build: SimBuild,
}

/// Compiled, shareable simulation state for one (topology, configuration)
/// pair: the committed base the repair loop validates candidates against.
#[derive(Debug, Clone)]
pub struct CompiledBase<'a> {
    topo: &'a Topology,
    cfg_fingerprint: u64,
    models: Vec<Arc<DeviceModel>>,
    parts: Vec<Arc<SessionPart>>,
    sessions: Arc<Vec<Session>>,
    session_diags: Arc<Vec<SessionDiag>>,
    origin: Arc<OriginIndex>,
    build: SimBuild,
}

impl<'a> CompiledBase<'a> {
    /// Compiles `cfg` from scratch.
    pub fn new(topo: &'a Topology, cfg: &NetworkConfig) -> Self {
        let t = Instant::now();
        let models: Vec<Arc<DeviceModel>> = topo
            .routers()
            .iter()
            .map(|r| Arc::new(compile_device(cfg, r.id, &r.name)))
            .collect();
        let origin = Arc::new(OriginIndex::build(topo, &models));
        let compile = t.elapsed();
        let t = Instant::now();
        let parts: Vec<Arc<SessionPart>> = topo
            .routers()
            .iter()
            .map(|r| {
                let (sessions, diags) = establish_router(topo, &models, r.id);
                Arc::new(SessionPart { sessions, diags })
            })
            .collect();
        let (sessions, session_diags) = concat_parts(&parts);
        let n = models.len();
        CompiledBase {
            topo,
            cfg_fingerprint: cfg.fingerprint(),
            models,
            parts,
            sessions: Arc::new(sessions),
            session_diags: Arc::new(session_diags),
            origin,
            build: SimBuild {
                compile,
                establish: t.elapsed(),
                compiled_devices: n,
                established_routers: n,
                delta: false,
            },
        }
    }

    /// Construction cost of this base.
    pub fn build_stats(&self) -> SimBuild {
        self.build
    }

    /// The topology this base is compiled against.
    pub fn topo(&self) -> &'a Topology {
        self.topo
    }

    /// Fingerprint of the configuration this base was compiled from —
    /// the base half of every delta key.
    pub fn cfg_fingerprint(&self) -> u64 {
        self.cfg_fingerprint
    }

    /// The compiled models, indexed by `RouterId::index()`.
    pub fn models(&self) -> &[Arc<DeviceModel>] {
        &self.models
    }

    /// Established sessions of the base configuration.
    pub fn sessions(&self) -> &Arc<Vec<Session>> {
        &self.sessions
    }

    /// Session diagnostics of the base configuration.
    pub fn session_diags(&self) -> &Arc<Vec<SessionDiag>> {
        &self.session_diags
    }

    /// The origination index of the base configuration.
    pub fn origin(&self) -> &Arc<OriginIndex> {
        &self.origin
    }

    /// Classifies `patch` (which turns this base's configuration into
    /// `cfg`) without keeping the rebuilt state — the invalidation
    /// analysis alone. Identical to the [`DeltaInfo`] a delta build
    /// returns, which is what keeps verdicts byte-identical whether
    /// delta construction is on or off.
    pub fn analyze(&self, cfg: &NetworkConfig, patch: &Patch) -> DeltaInfo {
        self.delta(cfg, patch).info
    }

    /// Advances the base to `cfg` (= this base's configuration plus
    /// `patch`) — the commit path. Untouched devices and session parts
    /// are shared with `self`.
    pub fn advance(&self, cfg: &NetworkConfig, patch: &Patch) -> (CompiledBase<'a>, DeltaInfo) {
        let d = self.delta(cfg, patch);
        (
            CompiledBase {
                topo: self.topo,
                cfg_fingerprint: cfg.fingerprint(),
                models: d.models,
                parts: d.parts,
                sessions: d.sessions,
                session_diags: d.session_diags,
                origin: d.origin,
                build: d.info.build,
            },
            d.info,
        )
    }

    /// The shared delta computation: recompile touched devices, re-run
    /// establishment where it can matter, splice the origination index.
    pub(crate) fn delta(&self, cfg: &NetworkConfig, patch: &Patch) -> Delta {
        let t = Instant::now();
        let touched = patch.routers();
        let _compile_span = span!("sim.compile.delta", "sim").arg("devices", touched.len() as u64);
        let mut models = self.models.clone();
        let mut origin_repl: BTreeMap<RouterId, BTreeMap<Prefix, Origination>> = BTreeMap::new();
        let mut session_changed: BTreeSet<RouterId> = BTreeSet::new();
        let mut changed_origin_prefixes: BTreeSet<Prefix> = BTreeSet::new();
        let mut delete_literals: Vec<Prefix> = Vec::new();
        let deleted_on: BTreeSet<RouterId> = patch
            .edits
            .iter()
            .filter_map(|e| match e {
                Edit::Delete { router, .. } => Some(*router),
                _ => None,
            })
            .collect();
        let mut policies_unchanged = true;
        for r in &touched {
            let old = &self.models[r.index()];
            let new = compile_device(cfg, *r, &old.name);
            if old.peers != new.peers || as_value(old) != as_value(&new) {
                session_changed.insert(*r);
            }
            policies_unchanged &= old.route_policies == new.route_policies
                && old.prefix_lists == new.prefix_lists
                && as_value(old) == as_value(&new);
            let old_part = router_origins(self.topo, *r, old);
            let new_part = router_origins(self.topo, *r, &new);
            if old_part != new_part {
                for p in old_part.keys().chain(new_part.keys()) {
                    if old_part.get(p) != new_part.get(p) {
                        changed_origin_prefixes.insert(*p);
                    }
                }
                origin_repl.insert(*r, new_part);
            }
            if deleted_on.contains(r) {
                delete_literals.extend(model_literals(old));
            }
            models[r.index()] = Arc::new(new);
        }
        let origin = if origin_repl.is_empty() {
            self.origin.clone()
        } else {
            Arc::new(self.origin.with_replaced(&origin_repl))
        };
        let compile = t.elapsed();
        drop(_compile_span);
        DELTA_BUILDS.inc();
        DELTA_COMPILED.add(touched.len() as u64);

        let t = Instant::now();
        let _establish_span = span!("sim.establish.delta", "sim");
        let mut established_routers = 0usize;
        let (parts, sessions, session_diags, session_delta) = if session_changed.is_empty() {
            (
                self.parts.clone(),
                self.sessions.clone(),
                self.session_diags.clone(),
                SessionDelta::Unchanged,
            )
        } else {
            // Re-establish the changed routers and their neighbors (whose
            // parts read the changed `peers` maps / AS values).
            let mut affected = session_changed.clone();
            for r in &session_changed {
                for (n, _) in self.topo.neighbors(*r) {
                    affected.insert(n);
                }
            }
            established_routers = affected.len();
            let mut parts = self.parts.clone();
            let mut any_diff = false;
            for r in &affected {
                let (sessions, diags) = establish_router(self.topo, &models, *r);
                let part = SessionPart { sessions, diags };
                if *self.parts[r.index()] != part {
                    any_diff = true;
                    parts[r.index()] = Arc::new(part);
                }
            }
            if !any_diff {
                (
                    self.parts.clone(),
                    self.sessions.clone(),
                    self.session_diags.clone(),
                    SessionDelta::Unchanged,
                )
            } else {
                let (sessions, diags) = concat_parts(&parts);
                let structural =
                    !same_structure(&sessions, &diags, &self.sessions, &self.session_diags);
                (
                    parts,
                    Arc::new(sessions),
                    Arc::new(diags),
                    if structural {
                        SessionDelta::Structural
                    } else {
                        SessionDelta::LinesOnly
                    },
                )
            }
        };
        let establish = t.elapsed();
        drop(_establish_span);
        DELTA_ESTABLISHED.add(established_routers as u64);

        Delta {
            models,
            parts,
            sessions,
            session_diags,
            origin,
            info: DeltaInfo {
                session_delta,
                warm_eligible: policies_unchanged
                    && session_delta == SessionDelta::Unchanged
                    && changed_origin_prefixes.is_empty(),
                changed_origin_prefixes,
                delete_literals,
                build: SimBuild {
                    compile,
                    establish,
                    compiled_devices: touched.len(),
                    established_routers,
                    delta: true,
                },
            },
        }
    }
}

/// The output of one delta computation (crate-internal plumbing between
/// [`CompiledBase`] and `Simulator`).
pub(crate) struct Delta {
    pub models: Vec<Arc<DeviceModel>>,
    pub parts: Vec<Arc<SessionPart>>,
    pub sessions: Arc<Vec<Session>>,
    pub session_diags: Arc<Vec<SessionDiag>>,
    pub origin: Arc<OriginIndex>,
    pub info: DeltaInfo,
}

use crate::bgp::Origination;

/// Compiles one device's model (empty model for unconfigured routers —
/// same fallback as `Simulator::new` always used).
pub(crate) fn compile_device(cfg: &NetworkConfig, id: RouterId, name: &str) -> DeviceModel {
    match cfg.device(id) {
        Some(dc) => DeviceModel::from_config(dc),
        None => DeviceModel {
            name: name.to_string(),
            ..DeviceModel::default()
        },
    }
}

fn as_value(m: &DeviceModel) -> Option<acr_net_types::Asn> {
    m.asn.map(|(a, _)| a)
}

/// Every prefix literal a model's statements mention (networks, statics,
/// prefix-list entries, ACL endpoints) — the delete-invalidation net.
fn model_literals(m: &DeviceModel) -> Vec<Prefix> {
    let mut out: Vec<Prefix> = Vec::new();
    out.extend(m.networks.iter().map(|(p, _)| *p));
    out.extend(m.static_routes.iter().map(|s| s.prefix));
    for entries in m.prefix_lists.values() {
        out.extend(entries.iter().map(|e| e.prefix));
    }
    for entries in m.acls.values() {
        for e in entries {
            out.push(e.rule.src);
            out.push(e.rule.dst);
        }
    }
    out
}

fn concat_parts(parts: &[Arc<SessionPart>]) -> (Vec<Session>, Vec<SessionDiag>) {
    let mut sessions = Vec::new();
    let mut diags = Vec::new();
    for p in parts {
        sessions.extend(p.sessions.iter().cloned());
        diags.extend(p.diags.iter().cloned());
    }
    (sessions, diags)
}

/// Structure equality: identical sessions/diagnostics up to line
/// attribution. Line-only differences are what the closure-region rule
/// already invalidates; anything else (endpoints, policy names, failure
/// modes) changes where routes can flow and forces a full reset.
fn same_structure(
    a_sessions: &[Session],
    a_diags: &[SessionDiag],
    b_sessions: &[Session],
    b_diags: &[SessionDiag],
) -> bool {
    let skey = |s: &Session| {
        (
            s.a,
            s.b,
            s.a_addr,
            s.b_addr,
            s.a_import.as_ref().map(|(n, _)| n.clone()),
            s.a_export.as_ref().map(|(n, _)| n.clone()),
            s.b_import.as_ref().map(|(n, _)| n.clone()),
            s.b_export.as_ref().map(|(n, _)| n.clone()),
        )
    };
    let dkey = |d: &SessionDiag| (d.router, d.peer_addr, d.failure.clone());
    a_sessions.len() == b_sessions.len()
        && a_diags.len() == b_diags.len()
        && a_sessions
            .iter()
            .zip(b_sessions)
            .all(|(a, b)| skey(a) == skey(b))
        && a_diags.iter().zip(b_diags).all(|(a, b)| dkey(a) == dkey(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use acr_cfg::parse::parse_device;
    use acr_cfg::Stmt;
    use acr_net_types::Asn;
    use acr_topo::gen;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn line3() -> (Topology, NetworkConfig) {
        let topo = gen::line(3);
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n",
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
            "bgp 65002\n network 10.2.0.0 16\n peer 172.16.0.5 as-number 65001\n",
        ];
        let mut cfg = NetworkConfig::new();
        for (r, c) in topo.routers().iter().zip(cfgs) {
            cfg.insert(r.id, parse_device(r.name.clone(), c).unwrap());
        }
        (topo, cfg)
    }

    #[test]
    fn non_session_patch_shares_sessions_with_base() {
        let (topo, cfg) = line3();
        let base = CompiledBase::new(&topo, &cfg);
        let patch = Patch::single(Edit::Insert {
            router: RouterId(0),
            index: cfg.device(RouterId(0)).unwrap().len(),
            stmt: Stmt::Network(p("10.7.0.0/16")),
        });
        let cfg2 = patch.apply_cloned(&cfg).unwrap();
        let d = base.delta(&cfg2, &patch);
        assert_eq!(d.info.session_delta, SessionDelta::Unchanged);
        assert!(Arc::ptr_eq(&d.sessions, &base.sessions));
        assert_eq!(
            d.info.changed_origin_prefixes,
            [p("10.7.0.0/16")].into_iter().collect()
        );
        // Untouched models are shared, the touched one is rebuilt.
        assert!(Arc::ptr_eq(&d.models[1], &base.models[1]));
        assert!(!Arc::ptr_eq(&d.models[0], &base.models[0]));
    }

    #[test]
    fn session_breaking_patch_is_structural() {
        let (topo, cfg) = line3();
        let base = CompiledBase::new(&topo, &cfg);
        let patch = Patch::single(Edit::Replace {
            router: RouterId(1),
            index: 2,
            stmt: Stmt::PeerAs {
                peer: acr_cfg::PeerRef::Ip(acr_net_types::Ipv4Addr::new(172, 16, 0, 6)),
                asn: Asn(64999),
            },
        });
        let cfg2 = patch.apply_cloned(&cfg).unwrap();
        let d = base.delta(&cfg2, &patch);
        assert_eq!(d.info.session_delta, SessionDelta::Structural);
        // The delta state still matches a fresh compile exactly.
        let fresh = Simulator::new(&topo, &cfg2);
        assert_eq!(&d.sessions[..], fresh.sessions());
        assert_eq!(&d.session_diags[..], fresh.session_diags());
    }

    #[test]
    fn advance_equals_fresh_base() {
        let (topo, cfg) = line3();
        let base = CompiledBase::new(&topo, &cfg);
        let patch = Patch::single(Edit::Insert {
            router: RouterId(2),
            index: 1,
            stmt: Stmt::Network(p("10.9.0.0/16")),
        });
        let cfg2 = patch.apply_cloned(&cfg).unwrap();
        let (advanced, _) = base.advance(&cfg2, &patch);
        let fresh = CompiledBase::new(&topo, &cfg2);
        assert_eq!(advanced.cfg_fingerprint(), fresh.cfg_fingerprint());
        assert_eq!(advanced.models().len(), fresh.models().len());
        for (a, b) in advanced.models().iter().zip(fresh.models()) {
            assert_eq!(a, b);
        }
        assert_eq!(&advanced.sessions[..], &fresh.sessions[..]);
        assert_eq!(advanced.origin.universe(), fresh.origin.universe());
    }
}
