//! BGP routes, best-path selection, and the hash-consed route arena.

use crate::deriv::DerivId;
use crate::fxhash::{FxHashMap, FxHasher};
use acr_net_types::{AsPath, Community, Ipv4Addr, Prefix, RouterId};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Default LOCAL_PREF when no policy sets one.
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// A route as held in a router's Loc-RIB (or carried in an announcement).
/// `Hash` covers every field (derivation id included) — the sparse
/// engine's policy memo keys on the full route, since communities and
/// provenance influence transfer results even though they are outside
/// [`RouteKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    pub prefix: Prefix,
    pub as_path: AsPath,
    pub local_pref: u32,
    pub med: u32,
    pub communities: Vec<Community>,
    /// Address packets for this route are forwarded to; `0.0.0.0` for
    /// locally originated routes (delivered / resolved locally).
    pub next_hop: Ipv4Addr,
    /// The BGP neighbor the route was learned from; `None` if local.
    pub learned_from: Option<RouterId>,
    /// Derivation node in the arena (provenance).
    pub deriv: DerivId,
}

impl Route {
    /// A locally originated route (empty path, no next hop).
    pub fn local(prefix: Prefix, deriv: DerivId) -> Self {
        Route {
            prefix,
            as_path: AsPath::empty(),
            local_pref: DEFAULT_LOCAL_PREF,
            med: 0,
            communities: Vec::new(),
            next_hop: Ipv4Addr::UNSPECIFIED,
            learned_from: None,
            deriv,
        }
    }

    /// The semantic key used for convergence detection — everything that
    /// influences routing behaviour, *excluding* the derivation id (which
    /// is provenance metadata, not protocol state).
    pub fn key(&self) -> RouteKey {
        RouteKey {
            prefix: self.prefix,
            as_path: self.as_path.clone(),
            local_pref: self.local_pref,
            med: self.med,
            next_hop: self.next_hop,
            learned_from: self.learned_from,
        }
    }

    /// BGP decision process: `Ordering::Greater` means `self` is preferred
    /// over `other`.
    ///
    /// Order of comparison (standard, restricted to modelled attributes):
    /// 1. higher LOCAL_PREF,
    /// 2. shorter AS_PATH,
    /// 3. lower MED,
    /// 4. local routes over learned routes,
    /// 5. lower neighbor router id (deterministic tiebreak).
    pub fn prefer(&self, other: &Route) -> Ordering {
        self.local_pref
            .cmp(&other.local_pref)
            .then_with(|| other.as_path.len().cmp(&self.as_path.len()))
            .then_with(|| other.med.cmp(&self.med))
            .then_with(|| {
                // Local (None) beats learned (Some); among learned, lower
                // router id wins, hence reversed comparison.
                match (self.learned_from, other.learned_from) {
                    (None, None) => Ordering::Equal,
                    (None, Some(_)) => Ordering::Greater,
                    (Some(_), None) => Ordering::Less,
                    (Some(a), Some(b)) => b.cmp(&a),
                }
            })
    }
}

/// The protocol-visible part of a route, used for state hashing and
/// fixed-point detection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteKey {
    pub prefix: Prefix,
    pub as_path: AsPath,
    pub local_pref: u32,
    pub med: u32,
    pub next_hop: Ipv4Addr,
    pub learned_from: Option<RouterId>,
}

/// Picks the best route among candidates (deterministic).
pub fn select_best(candidates: impl IntoIterator<Item = Route>) -> Option<Route> {
    candidates
        .into_iter()
        .max_by(|a, b| a.prefer(b).then_with(|| b.next_hop.cmp(&a.next_hop)))
}

/// Handle into a [`RouteInterner`]: `u32`-sized, `Copy`, and with the
/// guarantee that two handles from the *same* interner are equal iff the
/// full routes (communities and derivation id included) are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub u32);

/// Hash-consed route arena. Interning is content-addressed twice over:
///
/// * the **route id** identifies the full route (id equality ⟺ `Route`
///   equality), so candidate comparison, memo lookup, and dirty-set
///   checks in the sparse engine collapse to integer ops;
/// * each route additionally carries a **key id**, hash-consed over
///   [`RouteKey`] (key-id equality ⟺ `RouteKey` equality), so
///   convergence/stability checks and state hashing never materialise a
///   `RouteKey` (which would clone the AS path).
///
/// The arena is append-only: ids stay valid for the interner's lifetime,
/// which lets a [`crate::bgp::PolicyMemo`] keep one interner alive across
/// an entire repair loop. Bucket + full-content confirm mirrors
/// `DerivArena::intern_ref` — the 64-bit hash only narrows the search.
#[derive(Debug, Default, Clone)]
pub struct RouteInterner {
    routes: Vec<Route>,
    key_ids: Vec<u32>,
    /// Representative route per key id (first route interned with it).
    key_repr: Vec<RouteId>,
    index: FxHashMap<u64, Vec<RouteId>>,
    key_index: FxHashMap<u64, Vec<u32>>,
}

fn same_key(a: &Route, b: &Route) -> bool {
    a.prefix == b.prefix
        && a.as_path == b.as_path
        && a.local_pref == b.local_pref
        && a.med == b.med
        && a.next_hop == b.next_hop
        && a.learned_from == b.learned_from
}

impl RouteInterner {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.routes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    pub fn get(&self, id: RouteId) -> &Route {
        &self.routes[id.0 as usize]
    }

    /// The hash-consed [`RouteKey`] identity of `id`. Equal key ids ⟺
    /// equal route keys, across all routes in this interner.
    pub fn key_id(&self, id: RouteId) -> u32 {
        self.key_ids[id.0 as usize]
    }

    fn route_hash(r: &Route) -> u64 {
        let mut h = FxHasher::default();
        r.hash(&mut h);
        h.finish()
    }

    fn key_hash(r: &Route) -> u64 {
        let mut h = FxHasher::default();
        r.prefix.hash(&mut h);
        r.as_path.hash(&mut h);
        r.local_pref.hash(&mut h);
        r.med.hash(&mut h);
        r.next_hop.hash(&mut h);
        r.learned_from.hash(&mut h);
        h.finish()
    }

    fn lookup(&self, hash: u64, r: &Route) -> Option<RouteId> {
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|id| self.routes[id.0 as usize] == *r)
    }

    fn push(&mut self, hash: u64, r: Route) -> RouteId {
        let id = RouteId(self.routes.len() as u32);
        // Key interning inspects `self.routes` via representatives, so
        // push the route first and backfill the key id.
        self.routes.push(r);
        self.key_ids.push(0);
        let kh = Self::key_hash(&self.routes[id.0 as usize]);
        let mut kid = None;
        if let Some(bucket) = self.key_index.get(&kh) {
            for &cand in bucket.iter() {
                let repr = self.key_repr[cand as usize];
                if same_key(&self.routes[repr.0 as usize], &self.routes[id.0 as usize]) {
                    kid = Some(cand);
                    break;
                }
            }
        }
        let kid = match kid {
            Some(k) => k,
            None => {
                let fresh = self.key_repr.len() as u32;
                self.key_index.entry(kh).or_default().push(fresh);
                self.key_repr.push(id);
                fresh
            }
        };
        self.key_ids[id.0 as usize] = kid;
        self.index.entry(hash).or_default().push(id);
        id
    }

    /// Interns a route by reference, cloning only on a miss.
    pub fn intern(&mut self, r: &Route) -> RouteId {
        let hash = Self::route_hash(r);
        if let Some(id) = self.lookup(hash, r) {
            return id;
        }
        self.push(hash, r.clone())
    }

    /// Interns an owned route; on a hit the value is dropped.
    pub fn intern_owned(&mut self, r: Route) -> RouteId {
        let hash = Self::route_hash(&r);
        if let Some(id) = self.lookup(hash, &r) {
            return id;
        }
        self.push(hash, r)
    }
}

/// Id-level twin of [`select_best`]: identical comparator, identical
/// last-maximal-wins semantics (`max_by` keeps the *last* among equal
/// candidates), so for any candidate sequence
/// `select_best_id(it, ids).map(|id| it.get(id))` ==
/// `select_best(routes)` by reference.
pub fn select_best_id(
    interner: &RouteInterner,
    ids: impl IntoIterator<Item = RouteId>,
) -> Option<RouteId> {
    let mut best: Option<RouteId> = None;
    for id in ids {
        best = Some(match best {
            None => id,
            Some(b) => {
                let (rb, rc) = (interner.get(b), interner.get(id));
                if rb.prefer(rc).then_with(|| rc.next_hop.cmp(&rb.next_hop)) == Ordering::Greater {
                    b
                } else {
                    id
                }
            }
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn base() -> Route {
        Route {
            prefix: p("10.0.0.0/16"),
            as_path: AsPath::from_hops([Asn(1), Asn(2)]),
            local_pref: 100,
            med: 0,
            communities: vec![],
            next_hop: Ipv4Addr::new(172, 16, 0, 1),
            learned_from: Some(RouterId(1)),
            deriv: DerivId(0),
        }
    }

    #[test]
    fn higher_local_pref_wins() {
        let a = Route {
            local_pref: 200,
            ..base()
        };
        let b = Route {
            as_path: AsPath::from_hops([Asn(9)]),
            ..base()
        };
        assert_eq!(a.prefer(&b), Ordering::Greater);
        assert_eq!(b.prefer(&a), Ordering::Less);
    }

    #[test]
    fn shorter_path_wins_at_equal_pref() {
        let short = Route {
            as_path: AsPath::from_hops([Asn(9)]),
            ..base()
        };
        let long = base();
        assert_eq!(short.prefer(&long), Ordering::Greater);
        // This asymmetry is the Figure 2 mechanism: an overwritten
        // (length-1) path beats the honest longer path.
        let overwritten = Route {
            as_path: AsPath::overwrite(Asn(7)),
            ..base()
        };
        assert_eq!(overwritten.prefer(&long), Ordering::Greater);
    }

    #[test]
    fn lower_med_wins() {
        let lo = base();
        let hi = Route { med: 50, ..base() };
        assert_eq!(lo.prefer(&hi), Ordering::Greater);
    }

    #[test]
    fn local_beats_learned() {
        let local = Route {
            as_path: AsPath::from_hops([Asn(1), Asn(2)]),
            learned_from: None,
            ..base()
        };
        assert_eq!(local.prefer(&base()), Ordering::Greater);
    }

    #[test]
    fn neighbor_id_tiebreak() {
        let from1 = base();
        let from2 = Route {
            learned_from: Some(RouterId(2)),
            ..base()
        };
        assert_eq!(from1.prefer(&from2), Ordering::Greater);
    }

    #[test]
    fn select_best_is_deterministic_and_max() {
        let routes = vec![
            base(),
            Route {
                local_pref: 200,
                ..base()
            },
            Route {
                as_path: AsPath::from_hops([Asn(9)]),
                ..base()
            },
        ];
        let best = select_best(routes.clone()).unwrap();
        assert_eq!(best.local_pref, 200);
        let best2 = select_best(routes.into_iter().rev()).unwrap();
        assert_eq!(
            best.key(),
            best2.key(),
            "order of candidates must not matter"
        );
        assert!(select_best(std::iter::empty()).is_none());
    }

    #[test]
    fn key_ignores_deriv() {
        let a = base();
        let b = Route {
            deriv: DerivId(99),
            ..base()
        };
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn intern_is_content_addressed() {
        let mut it = RouteInterner::new();
        let a = it.intern(&base());
        let b = it.intern_owned(base());
        assert_eq!(a, b, "identical routes intern to one id");
        assert_eq!(it.len(), 1);
        let c = it.intern_owned(Route {
            local_pref: 200,
            ..base()
        });
        assert_ne!(a, c);
        assert_eq!(it.get(a), &base());
        assert_eq!(it.get(c).local_pref, 200);
    }

    #[test]
    fn key_id_tracks_route_key_not_full_route() {
        let mut it = RouteInterner::new();
        let a = it.intern(&base());
        // Same key, different deriv / communities -> distinct route ids,
        // same key id.
        let b = it.intern_owned(Route {
            deriv: DerivId(7),
            ..base()
        });
        let c = it.intern_owned(Route {
            communities: vec![Community {
                asn: 65000,
                value: 1,
            }],
            ..base()
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(it.key_id(a), it.key_id(b));
        assert_eq!(it.key_id(a), it.key_id(c));
        // Different key -> different key id.
        let d = it.intern_owned(Route { med: 9, ..base() });
        assert_ne!(it.key_id(a), it.key_id(d));
    }

    #[test]
    fn select_best_id_matches_select_best() {
        let mk = |lp: u32, nh: u8, from: u32| Route {
            local_pref: lp,
            next_hop: Ipv4Addr::new(172, 16, 0, nh),
            learned_from: Some(RouterId(from)),
            ..base()
        };
        // Include an exact tie (same route twice) and a next-hop-only
        // difference to exercise the last-maximal tiebreak path.
        let cases: Vec<Vec<Route>> = vec![
            vec![],
            vec![base()],
            vec![mk(100, 1, 1), mk(200, 2, 2), mk(100, 3, 3)],
            vec![mk(100, 2, 1), mk(100, 1, 1), mk(100, 2, 1)],
            vec![mk(100, 9, 2), mk(100, 1, 2)],
        ];
        for routes in cases {
            let mut it = RouteInterner::new();
            let ids: Vec<RouteId> = routes.iter().map(|r| it.intern(r)).collect();
            let by_id = select_best_id(&it, ids).map(|id| it.get(id).clone());
            let by_val = select_best(routes.clone());
            assert_eq!(by_id, by_val, "candidates: {routes:?}");
        }
    }
}
