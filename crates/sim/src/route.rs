//! BGP routes and best-path selection.

use crate::deriv::DerivId;
use acr_net_types::{AsPath, Community, Ipv4Addr, Prefix, RouterId};
use std::cmp::Ordering;

/// Default LOCAL_PREF when no policy sets one.
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// A route as held in a router's Loc-RIB (or carried in an announcement).
/// `Hash` covers every field (derivation id included) — the sparse
/// engine's policy memo keys on the full route, since communities and
/// provenance influence transfer results even though they are outside
/// [`RouteKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    pub prefix: Prefix,
    pub as_path: AsPath,
    pub local_pref: u32,
    pub med: u32,
    pub communities: Vec<Community>,
    /// Address packets for this route are forwarded to; `0.0.0.0` for
    /// locally originated routes (delivered / resolved locally).
    pub next_hop: Ipv4Addr,
    /// The BGP neighbor the route was learned from; `None` if local.
    pub learned_from: Option<RouterId>,
    /// Derivation node in the arena (provenance).
    pub deriv: DerivId,
}

impl Route {
    /// A locally originated route (empty path, no next hop).
    pub fn local(prefix: Prefix, deriv: DerivId) -> Self {
        Route {
            prefix,
            as_path: AsPath::empty(),
            local_pref: DEFAULT_LOCAL_PREF,
            med: 0,
            communities: Vec::new(),
            next_hop: Ipv4Addr::UNSPECIFIED,
            learned_from: None,
            deriv,
        }
    }

    /// The semantic key used for convergence detection — everything that
    /// influences routing behaviour, *excluding* the derivation id (which
    /// is provenance metadata, not protocol state).
    pub fn key(&self) -> RouteKey {
        RouteKey {
            prefix: self.prefix,
            as_path: self.as_path.clone(),
            local_pref: self.local_pref,
            med: self.med,
            next_hop: self.next_hop,
            learned_from: self.learned_from,
        }
    }

    /// BGP decision process: `Ordering::Greater` means `self` is preferred
    /// over `other`.
    ///
    /// Order of comparison (standard, restricted to modelled attributes):
    /// 1. higher LOCAL_PREF,
    /// 2. shorter AS_PATH,
    /// 3. lower MED,
    /// 4. local routes over learned routes,
    /// 5. lower neighbor router id (deterministic tiebreak).
    pub fn prefer(&self, other: &Route) -> Ordering {
        self.local_pref
            .cmp(&other.local_pref)
            .then_with(|| other.as_path.len().cmp(&self.as_path.len()))
            .then_with(|| other.med.cmp(&self.med))
            .then_with(|| {
                // Local (None) beats learned (Some); among learned, lower
                // router id wins, hence reversed comparison.
                match (self.learned_from, other.learned_from) {
                    (None, None) => Ordering::Equal,
                    (None, Some(_)) => Ordering::Greater,
                    (Some(_), None) => Ordering::Less,
                    (Some(a), Some(b)) => b.cmp(&a),
                }
            })
    }
}

/// The protocol-visible part of a route, used for state hashing and
/// fixed-point detection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteKey {
    pub prefix: Prefix,
    pub as_path: AsPath,
    pub local_pref: u32,
    pub med: u32,
    pub next_hop: Ipv4Addr,
    pub learned_from: Option<RouterId>,
}

/// Picks the best route among candidates (deterministic).
pub fn select_best(candidates: impl IntoIterator<Item = Route>) -> Option<Route> {
    candidates
        .into_iter()
        .max_by(|a, b| a.prefer(b).then_with(|| b.next_hop.cmp(&a.next_hop)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn base() -> Route {
        Route {
            prefix: p("10.0.0.0/16"),
            as_path: AsPath::from_hops([Asn(1), Asn(2)]),
            local_pref: 100,
            med: 0,
            communities: vec![],
            next_hop: Ipv4Addr::new(172, 16, 0, 1),
            learned_from: Some(RouterId(1)),
            deriv: DerivId(0),
        }
    }

    #[test]
    fn higher_local_pref_wins() {
        let a = Route {
            local_pref: 200,
            ..base()
        };
        let b = Route {
            as_path: AsPath::from_hops([Asn(9)]),
            ..base()
        };
        assert_eq!(a.prefer(&b), Ordering::Greater);
        assert_eq!(b.prefer(&a), Ordering::Less);
    }

    #[test]
    fn shorter_path_wins_at_equal_pref() {
        let short = Route {
            as_path: AsPath::from_hops([Asn(9)]),
            ..base()
        };
        let long = base();
        assert_eq!(short.prefer(&long), Ordering::Greater);
        // This asymmetry is the Figure 2 mechanism: an overwritten
        // (length-1) path beats the honest longer path.
        let overwritten = Route {
            as_path: AsPath::overwrite(Asn(7)),
            ..base()
        };
        assert_eq!(overwritten.prefer(&long), Ordering::Greater);
    }

    #[test]
    fn lower_med_wins() {
        let lo = base();
        let hi = Route { med: 50, ..base() };
        assert_eq!(lo.prefer(&hi), Ordering::Greater);
    }

    #[test]
    fn local_beats_learned() {
        let local = Route {
            as_path: AsPath::from_hops([Asn(1), Asn(2)]),
            learned_from: None,
            ..base()
        };
        assert_eq!(local.prefer(&base()), Ordering::Greater);
    }

    #[test]
    fn neighbor_id_tiebreak() {
        let from1 = base();
        let from2 = Route {
            learned_from: Some(RouterId(2)),
            ..base()
        };
        assert_eq!(from1.prefer(&from2), Ordering::Greater);
    }

    #[test]
    fn select_best_is_deterministic_and_max() {
        let routes = vec![
            base(),
            Route {
                local_pref: 200,
                ..base()
            },
            Route {
                as_path: AsPath::from_hops([Asn(9)]),
                ..base()
            },
        ];
        let best = select_best(routes.clone()).unwrap();
        assert_eq!(best.local_pref, 200);
        let best2 = select_best(routes.into_iter().rev()).unwrap();
        assert_eq!(
            best.key(),
            best2.key(),
            "order of candidates must not matter"
        );
        assert!(select_best(std::iter::empty()).is_none());
    }

    #[test]
    fn key_ignores_deriv() {
        let a = base();
        let b = Route {
            deriv: DerivId(99),
            ..base()
        };
        assert_eq!(a.key(), b.key());
    }
}
