//! A fast, non-cryptographic hasher for the simulator's hot hash maps.
//!
//! The convergence inner loop is dominated by hash-map traffic: every
//! policy-transfer attempt keys a [`Route`] into the per-run memo, and
//! every derivation intern hashes node content into the arena index.
//! `std`'s default SipHash is DoS-resistant but ~5-10x slower on these
//! short integer-heavy keys than a multiply-rotate mix, and none of
//! these maps face attacker-chosen keys.
//!
//! Correctness is unaffected by hash quality everywhere this hasher is
//! used: the arena index maps `hash -> candidate ids` and confirms with a
//! full content compare (a collision costs one extra compare, never a
//! wrong id), and memo/cycle maps only rely on `HashMap` semantics, not
//! on the hash function. The algorithm is the well-known `rotate ^ input
//! * constant` mix used by rustc's own hash maps.
//!
//! [`Route`]: crate::route::Route

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the 64-bit Fx mix (a large prime-ish constant with
/// good avalanche behaviour under `wrapping_mul`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: a single 64-bit accumulator.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn distinct_inputs_hash_distinctly() {
        let b = FxBuildHasher::default();
        let h1 = b.hash_one(42u64);
        let h2 = b.hash_one(43u64);
        assert_ne!(h1, h2);
        // Deterministic across instances (no random state).
        assert_eq!(h1, FxBuildHasher::default().hash_one(42u64));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Inputs differing only in a non-multiple-of-8 tail must differ.
        let b = FxBuildHasher::default();
        let h = |s: &str| b.hash_one(s.as_bytes());
        assert_ne!(h("abcdefghi"), h("abcdefghj"));
    }
}
