//! # acr-sim
//!
//! A deterministic Batfish-like BGP control-plane simulator — the oracle
//! ACR repairs against. Given a topology (`acr-topo`) and a network
//! configuration (`acr-cfg`) it computes, **per prefix**:
//!
//! - BGP session establishment (with peer groups and AS-number checks),
//! - route propagation under import/export route-policies (including the
//!   `as-path overwrite` action that powers the paper's Figure 2 incident),
//! - best-path selection (local-pref, path length, MED, router-id),
//! - **convergence or oscillation**: the synchronous dynamics either reach
//!   a fixed point or revisit a state, in which case the prefix is
//!   *flapping* — exactly the failure mode of the example incident,
//! - FIBs (connected + static + BGP) and a packet-forwarding walk with
//!   loop/blackhole detection and PBR,
//! - a **derivation arena**: every route carries a content-addressed
//!   derivation recording the configuration lines it depends on, which the
//!   provenance layer turns into per-test line coverage for SBFL.
//!
//! Per-prefix decomposition is sound here because no modelled feature
//! couples routes of different prefixes; it is what makes the DNA-style
//! incremental verification in `acr-verify` exact.

pub mod base;
pub mod bgp;
pub mod cache;
pub mod deriv;
pub mod fib;
pub mod forward;
pub(crate) mod fxhash;
pub mod origin;
pub mod policy;
pub mod route;
pub mod session;
pub mod shard;
pub mod sim;

pub use base::{CompiledBase, DeltaInfo, SessionDelta, SessionPart, SimBuild};
pub use bgp::{ConvergeEngine, ConvergeWork, PolicyMemo, PrefixOutcome, MAX_ROUNDS_BASE};
pub use cache::{CacheStats, ShardedCache};
pub use deriv::{DerivArena, DerivId, DerivKind, DerivNode};
pub use fib::{bgp_fragment, Fib, FibAction, FibEntry};
pub use forward::{ForwardOutcome, ForwardResult};
pub use origin::OriginIndex;
pub use route::{select_best_id, Route, RouteId, RouteInterner, RouteKey};
pub use session::{Session, SessionDiag, SessionFailure};
pub use shard::{resolve_threads, ShardMode};
pub use sim::{RunOptions, SimOutcome, Simulator};
