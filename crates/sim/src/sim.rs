//! The top-level simulator: configs + topology → routes, FIBs, forwarding.

use crate::base::{compile_device, CompiledBase, DeltaInfo, SimBuild};
use crate::bgp::{
    index_sessions, run_prefix_dense, run_prefix_sparse, warm_probe, ConvergeEngine, ConvergeWork,
    PolicyMemo, PrefixOutcome, RouterCtx, SparseScratch,
};
use crate::deriv::{DerivArena, DerivId};
use crate::fib::{base_fib, bgp_fragment, Fib};
use crate::forward::{walk, ForwardResult};
use crate::origin::OriginIndex;
use crate::session::{establish, Session, SessionDiag};
use crate::shard::{
    remap_outcome, replay_range, ShardMode, SHARD_PREFIXES, SHARD_REPLAYED_NODES, SHARD_RUNS,
};
use acr_cfg::model::DeviceModel;
use acr_cfg::{NetworkConfig, Patch};
use acr_net_types::{Flow, Prefix, RouterId};
use acr_obs::metrics::{Counter, Histogram};
use acr_obs::span;
use acr_topo::Topology;
use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

static COMPILED_DEVICES: Counter = Counter::new("sim.compiled_devices");
static ESTABLISHED_ROUTERS: Counter = Counter::new("sim.established_routers");
static SIM_RUNS: Counter = Counter::new("sim.runs");
static SIM_PREFIXES: Counter = Counter::new("sim.prefixes_run");
static SIM_FLAPPING: Counter = Counter::new("sim.prefixes_flapping");
/// Rounds-to-convergence per prefix run (flapping prefixes observe the
/// round their cycle was first seen plus its length — the work done).
static CONVERGENCE_ROUNDS: Histogram =
    Histogram::new("sim.convergence_rounds", &[1, 2, 4, 8, 16, 32, 64]);
// Sparse-engine work accounting (see `ConvergeWork` for the definitions).
static SIM_ROUTERS_RECOMPUTED: Counter = Counter::new("sim.routers_recomputed");
static SIM_ROUTERS_SKIPPED: Counter = Counter::new("sim.routers_skipped");
static SIM_POLICY_EVALS: Counter = Counter::new("sim.policy_evals");
static SIM_POLICY_MEMO_HITS: Counter = Counter::new("sim.policy_memo_hits");
static SIM_WARM_PROBES: Counter = Counter::new("sim.warm_probes");
static SIM_WARM_REUSED: Counter = Counter::new("sim.warm_reused");
static SIM_WARM_FALLBACKS: Counter = Counter::new("sim.warm_fallbacks");

/// Options for a per-prefix simulation run.
pub struct RunOptions<'w> {
    /// Which convergence engine to use. Defaults to the process default
    /// ([`ConvergeEngine::from_env`]): sparse unless `ACR_SPARSE=0`.
    pub engine: ConvergeEngine,
    /// Warm-start source: previously computed outcomes whose converged
    /// fixed points may be probed and reused ([`warm_probe`]). The caller
    /// must only supply this when the patch provably leaves the BGP
    /// dynamics unchanged (the incremental verifier's `warm_eligible`
    /// guard) — the probe is the runtime check behind that guard, and a
    /// failed probe falls back to a cold run.
    pub warm: Option<&'w BTreeMap<Prefix, PrefixOutcome>>,
    /// Per-prefix sharding. Only engaged for sparse, warm-less,
    /// multi-prefix runs; outcomes and arena are byte-identical to the
    /// unsharded run at every worker count (see the `shard` module).
    pub shard: ShardMode,
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions {
            engine: ConvergeEngine::from_env(),
            warm: None,
            shard: ShardMode::default(),
        }
    }
}

/// A compiled simulation context: semantic models, established sessions
/// and the origination index for one (topology, configuration) pair.
/// Cheap to query. Built from scratch ([`Simulator::new`]) or — the
/// repair loop's hot path — as a delta against a [`CompiledBase`]
/// ([`Simulator::from_base_with_patch`]), where only the devices a patch
/// touches are recompiled and everything else is shared by `Arc`.
pub struct Simulator<'a> {
    topo: &'a Topology,
    models: Vec<Arc<DeviceModel>>,
    sessions: Arc<Vec<Session>>,
    session_diags: Arc<Vec<SessionDiag>>,
    origin: Arc<OriginIndex>,
    build: SimBuild,
    delta: Option<DeltaInfo>,
}

impl<'a> Simulator<'a> {
    /// Compiles `cfg` against `topo`. Routers present in the topology but
    /// absent from the configuration get an empty model (they forward
    /// nothing and peer with nobody).
    pub fn new(topo: &'a Topology, cfg: &NetworkConfig) -> Self {
        let t = Instant::now();
        let models: Vec<Arc<DeviceModel>> = {
            let _s = span!("sim.compile", "sim").arg("devices", topo.routers().len() as u64);
            topo.routers()
                .iter()
                .map(|r| Arc::new(compile_device(cfg, r.id, &r.name)))
                .collect()
        };
        let origin = Arc::new(OriginIndex::build(topo, &models));
        let compile = t.elapsed();
        let t = Instant::now();
        let (sessions, session_diags) = {
            let _s = span!("sim.establish", "sim");
            establish(topo, &models)
        };
        let n = models.len();
        COMPILED_DEVICES.add(n as u64);
        ESTABLISHED_ROUTERS.add(n as u64);
        Simulator {
            topo,
            models,
            sessions: Arc::new(sessions),
            session_diags: Arc::new(session_diags),
            origin,
            build: SimBuild {
                compile,
                establish: t.elapsed(),
                compiled_devices: n,
                established_routers: n,
                delta: false,
            },
            delta: None,
        }
    }

    /// A simulator over the base configuration itself: every structure is
    /// shared with `base`, nothing is recompiled.
    pub fn from_base(base: &CompiledBase<'a>) -> Self {
        Simulator {
            topo: base.topo(),
            models: base.models().to_vec(),
            sessions: base.sessions().clone(),
            session_diags: base.session_diags().clone(),
            origin: base.origin().clone(),
            build: SimBuild {
                delta: true,
                ..SimBuild::default()
            },
            delta: None,
        }
    }

    /// The delta constructor: `cfg` must equal `base`'s configuration
    /// with `patch` applied. Only devices the patch touches are
    /// recompiled; session establishment re-runs only for routers whose
    /// peer stanzas or AS values changed (plus their neighbors). The
    /// result is field-for-field identical to `Simulator::new(topo, cfg)`
    /// — see [`crate::base`] for the argument and the proptest suite for
    /// the evidence.
    pub fn from_base_with_patch(
        base: &CompiledBase<'a>,
        cfg: &NetworkConfig,
        patch: &Patch,
    ) -> Self {
        let d = base.delta(cfg, patch);
        Simulator {
            topo: base.topo(),
            models: d.models,
            sessions: d.sessions,
            session_diags: d.session_diags,
            origin: d.origin,
            build: d.info.build,
            delta: Some(d.info),
        }
    }

    /// The semantic models, indexed by `RouterId::index()`.
    pub fn models(&self) -> &[Arc<DeviceModel>] {
        &self.models
    }

    /// Established sessions.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Established sessions behind their shared handle (what a
    /// cross-run [`PolicyMemo`] keys its slot layout against).
    pub fn sessions_arc(&self) -> &Arc<Vec<Session>> {
        &self.sessions
    }

    /// Why configured peers are down.
    pub fn session_diags(&self) -> &[SessionDiag] {
        &self.session_diags
    }

    /// The topology this simulator runs over.
    pub fn topo(&self) -> &'a Topology {
        self.topo
    }

    /// Construction cost accounting for this simulator.
    pub fn build_stats(&self) -> SimBuild {
        self.build
    }

    /// What the delta build learned about the patch (`None` for full
    /// builds and patchless base shares).
    pub fn delta_info(&self) -> Option<&DeltaInfo> {
        self.delta.as_ref()
    }

    /// All prefixes any router originates into BGP — the per-prefix
    /// simulation universe (precomputed in the origination index).
    pub fn universe(&self) -> BTreeSet<Prefix> {
        self.origin.universe()
    }

    /// Runs every prefix in the universe.
    pub fn run(&self) -> SimOutcome {
        let universe = self.universe();
        self.run_prefixes(&universe)
    }

    /// Runs exactly `prefixes` into a fresh arena.
    pub fn run_prefixes(&self, prefixes: &BTreeSet<Prefix>) -> SimOutcome {
        let mut arena = DerivArena::new();
        let outcomes = self.run_prefixes_into(prefixes, &mut arena);
        let fibs = self.fibs_for(&outcomes, &mut arena);
        SimOutcome {
            outcomes,
            fibs,
            arena,
            session_diags: self.session_diags.clone(),
        }
    }

    /// Runs exactly `prefixes`, interning derivations into a caller-owned
    /// arena. Because the arena is content-addressed and append-only,
    /// cached [`PrefixOutcome`]s from earlier runs stay valid — this is
    /// what the DNA-style incremental verifier builds on.
    pub fn run_prefixes_into(
        &self,
        prefixes: &BTreeSet<Prefix>,
        arena: &mut DerivArena,
    ) -> BTreeMap<Prefix, PrefixOutcome> {
        self.run_prefixes_opts(prefixes, arena, &RunOptions::default())
            .0
    }

    /// [`Simulator::run_prefixes_into`] with an explicit engine choice and
    /// optional warm-start source, returning the work performed. The
    /// explicit engine keeps differential tests and `exp_converge` free of
    /// process-global environment races.
    pub fn run_prefixes_opts(
        &self,
        prefixes: &BTreeSet<Prefix>,
        arena: &mut DerivArena,
        opts: &RunOptions<'_>,
    ) -> (BTreeMap<Prefix, PrefixOutcome>, ConvergeWork) {
        let mut memo = PolicyMemo::new();
        self.run_prefixes_with(prefixes, arena, opts, &mut memo)
    }

    /// [`Simulator::run_prefixes_opts`] with a caller-owned policy memo.
    /// Keeping one memo alive across runs (the incremental verifier's
    /// candidate loop) lets transfers on sessions a patch cannot reach
    /// come back as hash hits instead of re-evaluations; the caller is
    /// responsible for [`PolicyMemo::begin_run`] between runs and for
    /// only reusing a memo across runs that share `arena` and a
    /// positionally identical session list.
    pub fn run_prefixes_with(
        &self,
        prefixes: &BTreeSet<Prefix>,
        arena: &mut DerivArena,
        opts: &RunOptions<'_>,
        memo: &mut PolicyMemo,
    ) -> (BTreeMap<Prefix, PrefixOutcome>, ConvergeWork) {
        if opts.warm.is_none() && opts.engine == ConvergeEngine::Sparse && prefixes.len() > 1 {
            if let Some(workers) = opts.shard.resolve() {
                return self.run_prefixes_sharded(prefixes, arena, memo, workers);
            }
        }
        let routers: Vec<RouterCtx<'_>> = self
            .topo
            .routers()
            .iter()
            .map(|r| RouterCtx {
                id: r.id,
                model: self.models[r.id.index()].as_ref(),
                asn: self.models[r.id.index()].asn.map(|(a, _)| a),
            })
            .collect();
        let _s = span!("sim.simulate", "sim").arg("prefixes", prefixes.len() as u64);
        SIM_RUNS.inc();
        SIM_PREFIXES.add(prefixes.len() as u64);
        let mut outcomes = BTreeMap::new();
        let mut work = ConvergeWork::default();
        // Hoisted across prefixes: the session index is prefix-independent
        // and the sparse scratch is cleared (not reallocated) per prefix.
        let sessions_of = index_sessions(&self.sessions, routers.len());
        let mut scratch = SparseScratch::new();
        for prefix in prefixes {
            let orig = self.origin.dense(*prefix, self.models.len());
            let mut outcome = None;
            if let Some(warm) = opts.warm {
                if let Some(base) = warm.get(prefix).filter(|o| o.is_converged()) {
                    outcome = warm_probe(
                        *prefix,
                        &routers,
                        &self.sessions,
                        &sessions_of,
                        &orig,
                        arena,
                        memo,
                        base,
                        &mut work,
                    );
                    if outcome.is_some() {
                        work.prefixes += 1;
                    } else {
                        work.warm_fallbacks += 1;
                    }
                }
            }
            let outcome = outcome.unwrap_or_else(|| match opts.engine {
                ConvergeEngine::Dense => run_prefix_dense(
                    *prefix,
                    &routers,
                    &self.sessions,
                    &sessions_of,
                    &orig,
                    arena,
                    &mut work,
                ),
                ConvergeEngine::Sparse => run_prefix_sparse(
                    *prefix,
                    &routers,
                    &self.sessions,
                    &sessions_of,
                    &orig,
                    arena,
                    memo,
                    &mut scratch,
                    &mut work,
                ),
            });
            match &outcome {
                PrefixOutcome::Converged { rounds, .. } => {
                    CONVERGENCE_ROUNDS.observe(*rounds as u64);
                }
                PrefixOutcome::Flapping {
                    first_seen_round,
                    cycle_len,
                    ..
                } => {
                    SIM_FLAPPING.inc();
                    CONVERGENCE_ROUNDS.observe((first_seen_round + cycle_len) as u64);
                }
            }
            outcomes.insert(*prefix, outcome);
        }
        SIM_ROUTERS_RECOMPUTED.add(work.recomputed_routers);
        SIM_ROUTERS_SKIPPED.add(work.skipped_routers);
        SIM_POLICY_EVALS.add(work.policy_evals);
        SIM_POLICY_MEMO_HITS.add(work.memo_hits);
        SIM_WARM_PROBES.add(work.warm_probes);
        SIM_WARM_REUSED.add(work.warm_reused);
        SIM_WARM_FALLBACKS.add(work.warm_fallbacks);
        (outcomes, work)
    }

    /// The sharded multi-prefix runner (see the `shard` module for the
    /// byte-identity argument). Workers get a round-robin partition of
    /// the sorted prefix list and run the sparse engine against private
    /// arenas and memos; the join replays each prefix's created
    /// derivation range into `arena` in global prefix order, remaps the
    /// outcomes, and merges worker memos into `memo` so a cross-run
    /// caller still benefits from the transfers evaluated here.
    ///
    /// The passed-in memo's existing entries are *not* consulted by the
    /// workers (they start fresh) — the memo is semantically transparent,
    /// so this only costs re-evaluations, never changes an outcome. Work
    /// totals therefore equal the unsharded fresh-memo run's exactly:
    /// per-prefix work is partition-invariant (memo hits cannot cross
    /// prefixes) and the totals are sums over prefixes.
    fn run_prefixes_sharded(
        &self,
        prefixes: &BTreeSet<Prefix>,
        arena: &mut DerivArena,
        memo: &mut PolicyMemo,
        workers: usize,
    ) -> (BTreeMap<Prefix, PrefixOutcome>, ConvergeWork) {
        struct WorkerOut {
            arena: DerivArena,
            memo: PolicyMemo,
            work: ConvergeWork,
            outcomes: Vec<Option<PrefixOutcome>>,
            /// Created-node range in `arena` per outcome, in run order.
            ranges: Vec<(usize, usize)>,
        }
        let routers: Vec<RouterCtx<'_>> = self
            .topo
            .routers()
            .iter()
            .map(|r| RouterCtx {
                id: r.id,
                model: self.models[r.id.index()].as_ref(),
                asn: self.models[r.id.index()].asn.map(|(a, _)| a),
            })
            .collect();
        let _s = span!("sim.simulate", "sim").arg("prefixes", prefixes.len() as u64);
        SIM_RUNS.inc();
        SIM_PREFIXES.add(prefixes.len() as u64);
        let sessions_of = index_sessions(&self.sessions, routers.len());
        let sorted: Vec<Prefix> = prefixes.iter().copied().collect();
        let w = workers.clamp(1, sorted.len());
        let parts: Vec<Vec<Prefix>> = (0..w)
            .map(|k| sorted.iter().copied().skip(k).step_by(w).collect())
            .collect();
        let run_worker = |part: &[Prefix]| -> WorkerOut {
            let mut out = WorkerOut {
                arena: DerivArena::new(),
                memo: PolicyMemo::new(),
                work: ConvergeWork::default(),
                outcomes: Vec::with_capacity(part.len()),
                ranges: Vec::with_capacity(part.len()),
            };
            let mut scratch = SparseScratch::new();
            for prefix in part {
                let orig = self.origin.dense(*prefix, self.models.len());
                let start = out.arena.len();
                let outcome = run_prefix_sparse(
                    *prefix,
                    &routers,
                    &self.sessions,
                    &sessions_of,
                    &orig,
                    &mut out.arena,
                    &mut out.memo,
                    &mut scratch,
                    &mut out.work,
                );
                out.ranges.push((start, out.arena.len()));
                out.outcomes.push(Some(outcome));
            }
            out
        };
        let mut outs: Vec<WorkerOut> = if w == 1 {
            vec![run_worker(&parts[0])]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = parts
                    .iter()
                    .map(|part| s.spawn(|| run_worker(part)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        };

        // Deterministic join: global sorted prefix order, one created
        // range replayed per prefix, cumulative per-worker id maps.
        let mut maps: Vec<Vec<DerivId>> = (0..w).map(|_| Vec::new()).collect();
        let mut cursors: Vec<usize> = vec![0; w];
        let mut outcomes = BTreeMap::new();
        let mut replayed = 0u64;
        for (gi, prefix) in sorted.iter().enumerate() {
            let wi = gi % w;
            let k = cursors[wi];
            cursors[wi] += 1;
            replayed += replay_range(arena, &outs[wi].arena, outs[wi].ranges[k], &mut maps[wi]);
            let outcome = outs[wi].outcomes[k].take().expect("joined once");
            let outcome = remap_outcome(outcome, &maps[wi]);
            match &outcome {
                PrefixOutcome::Converged { rounds, .. } => {
                    CONVERGENCE_ROUNDS.observe(*rounds as u64);
                }
                PrefixOutcome::Flapping {
                    first_seen_round,
                    cycle_len,
                    ..
                } => {
                    SIM_FLAPPING.inc();
                    CONVERGENCE_ROUNDS.observe((first_seen_round + cycle_len) as u64);
                }
            }
            outcomes.insert(*prefix, outcome);
        }
        let mut work = ConvergeWork::default();
        for (wi, o) in outs.iter().enumerate() {
            memo.absorb_worker(&o.memo, &maps[wi]);
            work.absorb(&o.work);
        }
        work.sharded_runs += 1;
        work.sharded_prefixes += sorted.len() as u64;
        SHARD_RUNS.inc();
        SHARD_PREFIXES.add(sorted.len() as u64);
        SHARD_REPLAYED_NODES.add(replayed);
        SIM_ROUTERS_RECOMPUTED.add(work.recomputed_routers);
        SIM_ROUTERS_SKIPPED.add(work.skipped_routers);
        SIM_POLICY_EVALS.add(work.policy_evals);
        SIM_POLICY_MEMO_HITS.add(work.memo_hits);
        SIM_WARM_PROBES.add(work.warm_probes);
        SIM_WARM_REUSED.add(work.warm_reused);
        SIM_WARM_FALLBACKS.add(work.warm_fallbacks);
        (outcomes, work)
    }

    /// Assembles per-router FIBs from connected/static state plus the
    /// given per-prefix outcomes (flapping prefixes install nothing).
    /// Generic over `Borrow` so the incremental verifier can pass a
    /// merged map of *references* into its cache instead of deep-cloning
    /// every cached outcome per candidate.
    pub fn fibs_for<O: Borrow<PrefixOutcome>>(
        &self,
        outcomes: &BTreeMap<Prefix, O>,
        arena: &mut DerivArena,
    ) -> Vec<Fib> {
        let mut fibs = self.base_fibs(arena);
        for (prefix, outcome) in outcomes {
            for (i, entry) in bgp_fragment(outcome.borrow()) {
                fibs[i].install(*prefix, entry);
            }
        }
        fibs
    }

    /// The connected/static part of every router's FIB — everything
    /// [`Simulator::fibs_for`] installs before the per-prefix BGP
    /// fragments. Depends only on the topology and the device models, so
    /// the incremental verifier caches the result and rebuilds a single
    /// router's base FIB only when that router's model was swapped
    /// (re-interning an unchanged router's derivations would be pure
    /// dedup hits — skipping them leaves the arena byte-identical).
    pub fn base_fibs(&self, arena: &mut DerivArena) -> Vec<Fib> {
        self.topo
            .routers()
            .iter()
            .map(|r| self.base_fib_of(r.id, arena))
            .collect()
    }

    /// One router's connected/static base FIB (see [`Simulator::base_fibs`]).
    pub fn base_fib_of(&self, router: RouterId, arena: &mut DerivArena) -> Fib {
        base_fib(
            self.topo,
            router,
            self.models[router.index()].as_ref(),
            arena,
        )
    }

    /// Convenience: run everything and walk one flow.
    pub fn forward(&self, outcome: &mut SimOutcome, start: RouterId, flow: &Flow) -> ForwardResult {
        walk(
            self.topo,
            &self.models,
            &outcome.fibs,
            start,
            flow,
            &mut outcome.arena,
        )
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Per-prefix control-plane outcome.
    pub outcomes: BTreeMap<Prefix, PrefixOutcome>,
    /// Per-router FIBs (indexed by `RouterId::index()`).
    pub fibs: Vec<Fib>,
    /// Provenance arena for every derivation in this run.
    pub arena: DerivArena,
    /// Session diagnostics (configured peers that are down). Shared with
    /// the simulator (and, on the delta path, with the compiled base)
    /// rather than deep-cloned per run.
    pub session_diags: Arc<Vec<SessionDiag>>,
}

impl SimOutcome {
    /// Prefixes that failed to converge.
    pub fn flapping(&self) -> Vec<Prefix> {
        self.outcomes
            .iter()
            .filter(|(_, o)| !o.is_converged())
            .map(|(p, _)| *p)
            .collect()
    }

    /// Derivation roots (for coverage) of one prefix's outcome.
    pub fn prefix_deriv_roots(&self, prefix: Prefix) -> Vec<DerivId> {
        self.outcomes
            .get(&prefix)
            .map(|o| o.deriv_roots())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::ForwardOutcome;
    use acr_cfg::parse::parse_device;
    use acr_cfg::LineId;
    use acr_net_types::Ipv4Addr;
    use acr_topo::{gen, Role, TopologyBuilder};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn netcfg(topo: &Topology, cfgs: &[&str]) -> NetworkConfig {
        let mut net = NetworkConfig::new();
        for (r, c) in topo.routers().iter().zip(cfgs) {
            net.insert(r.id, parse_device(r.name.clone(), c).unwrap());
        }
        net
    }

    /// Full three-node line with network origination at both ends.
    fn line3_cfg() -> (Topology, NetworkConfig) {
        let topo = gen::line(3);
        let cfgs = [
            "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n",
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
            "bgp 65002\n network 10.2.0.0 16\n peer 172.16.0.5 as-number 65001\n",
        ];
        let cfg = netcfg(&topo, &cfgs);
        (topo, cfg)
    }

    #[test]
    fn universe_collects_originations() {
        let (topo, cfg) = line3_cfg();
        let sim = Simulator::new(&topo, &cfg);
        let u = sim.universe();
        assert_eq!(
            u,
            [p("10.0.0.0/16"), p("10.2.0.0/16")].into_iter().collect()
        );
    }

    #[test]
    fn end_to_end_reachability() {
        let (topo, cfg) = line3_cfg();
        let sim = Simulator::new(&topo, &cfg);
        let mut out = sim.run();
        assert!(out.flapping().is_empty());
        // R0 -> 10.2/16 attached at R2.
        let flow = Flow::ip(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 2, 0, 1));
        let res = sim.forward(&mut out, RouterId(0), &flow);
        assert_eq!(res.outcome, ForwardOutcome::Delivered(RouterId(2)));
        assert_eq!(res.path, vec![RouterId(0), RouterId(1), RouterId(2)]);
        // And the reverse direction.
        let flow = Flow::ip(Ipv4Addr::new(10, 2, 0, 1), Ipv4Addr::new(10, 0, 0, 1));
        let res = sim.forward(&mut out, RouterId(2), &flow);
        assert_eq!(res.outcome, ForwardOutcome::Delivered(RouterId(0)));
    }

    #[test]
    fn coverage_of_forward_reaches_origin_lines() {
        let (topo, cfg) = line3_cfg();
        let sim = Simulator::new(&topo, &cfg);
        let mut out = sim.run();
        let flow = Flow::ip(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 2, 0, 1));
        let res = sim.forward(&mut out, RouterId(0), &flow);
        let lines = out.arena.closure_lines(res.derivs);
        // R2's `network 10.2.0.0 16` is line 2 of its config.
        assert!(lines.contains(&LineId::new(RouterId(2), 2)), "{lines:?}");
        // R0's peer line (3) — its session carried the route.
        assert!(lines.contains(&LineId::new(RouterId(0), 3)), "{lines:?}");
    }

    #[test]
    fn missing_redistribution_blackholes() {
        // R2 reaches 20.0/16 behind R0 only if R0 redistributes its static.
        let topo = gen::line(3);
        let with = [
            "bgp 65000\n import-route static\n peer 172.16.0.2 as-number 65001\nip route-static 20.0.0.0 16 NULL0\n",
            "bgp 65001\n peer 172.16.0.1 as-number 65000\n peer 172.16.0.6 as-number 65002\n",
            "bgp 65002\n peer 172.16.0.5 as-number 65001\n",
        ];
        let without = [
            "bgp 65000\n peer 172.16.0.2 as-number 65001\nip route-static 20.0.0.0 16 NULL0\n",
            with[1],
            with[2],
        ];
        let dst = Ipv4Addr::new(20, 0, 0, 1);
        // Attach 20.0/16 to R0 so delivery succeeds there.
        let mut b = TopologyBuilder::new();
        let ids: Vec<RouterId> = (0..3)
            .map(|i| b.router(&format!("R{i}"), Role::Backbone))
            .collect();
        b.link(ids[0], ids[1]);
        b.link(ids[1], ids[2]);
        b.attach(ids[0], p("20.0.0.0/16"));
        let topo2 = b.build();
        let _ = topo;

        let cfg_ok = netcfg(&topo2, &with);
        let sim = Simulator::new(&topo2, &cfg_ok);
        let mut out = sim.run();
        let res = sim.forward(
            &mut out,
            RouterId(2),
            &Flow::ip(Ipv4Addr::new(9, 9, 9, 9), dst),
        );
        assert_eq!(res.outcome, ForwardOutcome::Delivered(RouterId(0)));

        let cfg_bad = netcfg(&topo2, &without);
        let sim = Simulator::new(&topo2, &cfg_bad);
        let mut out = sim.run();
        let res = sim.forward(
            &mut out,
            RouterId(2),
            &Flow::ip(Ipv4Addr::new(9, 9, 9, 9), dst),
        );
        assert_eq!(res.outcome, ForwardOutcome::NoRoute(RouterId(2)));
    }

    #[test]
    fn run_prefixes_subset_matches_full_run() {
        let (topo, cfg) = line3_cfg();
        let sim = Simulator::new(&topo, &cfg);
        let full = sim.run();
        let one: BTreeSet<Prefix> = [p("10.2.0.0/16")].into_iter().collect();
        let partial = sim.run_prefixes(&one);
        assert_eq!(partial.outcomes.len(), 1);
        // The subset result for the shared prefix agrees with the full run.
        let a = &full.outcomes[&p("10.2.0.0/16")];
        let b = &partial.outcomes[&p("10.2.0.0/16")];
        match (a, b) {
            (
                PrefixOutcome::Converged { best: ba, .. },
                PrefixOutcome::Converged { best: bb, .. },
            ) => {
                let ka: Vec<_> = ba.iter().map(|r| r.as_ref().map(|r| r.key())).collect();
                let kb: Vec<_> = bb.iter().map(|r| r.as_ref().map(|r| r.key())).collect();
                assert_eq!(ka, kb);
            }
            _ => panic!("both must converge"),
        }
    }

    #[test]
    fn unconfigured_router_is_inert() {
        let topo = gen::line(3);
        let mut cfg = NetworkConfig::new();
        // Only R0 configured; R1/R2 empty.
        cfg.insert(
            RouterId(0),
            parse_device(
                "R0",
                "bgp 65000\n network 10.0.0.0 16\n peer 172.16.0.2 as-number 65001\n",
            )
            .unwrap(),
        );
        let sim = Simulator::new(&topo, &cfg);
        assert!(sim.sessions().is_empty());
        let out = sim.run();
        assert_eq!(out.outcomes.len(), 1);
        assert!(out.outcomes[&p("10.0.0.0/16")].is_converged());
    }

    #[test]
    fn session_diags_surface_in_outcome() {
        let topo = gen::line(2);
        let cfg = netcfg(
            &topo,
            &[
                "bgp 65000\n peer 172.16.0.2 as-number 64999\n",
                "bgp 65001\n peer 172.16.0.1 as-number 65000\n",
            ],
        );
        let sim = Simulator::new(&topo, &cfg);
        let out = sim.run();
        assert!(!out.session_diags.is_empty());
    }
}
