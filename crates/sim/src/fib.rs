//! FIB construction.
//!
//! Each router's FIB merges three sources with standard administrative
//! preference (connected > static > BGP):
//!
//! - **connected**: link subnets and attached customer prefixes deliver
//!   locally,
//! - **static**: `ip route-static`, with `NULL0` installing a discard
//!   entry (aggregate origination) and an address next hop resolving to an
//!   adjacent router or to a locally attached subnet,
//! - **BGP**: the converged best route per prefix; flapping prefixes
//!   install nothing (their forwarding state is unstable by definition).

use crate::deriv::{DerivArena, DerivId, DerivKind};
use acr_cfg::model::DeviceModel;
use acr_cfg::{LineId, NextHop};
use acr_net_types::{Ipv4Addr, Prefix, PrefixTrie, RouterId};
use acr_topo::Topology;

/// What a FIB entry does with a matching packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FibAction {
    /// Hand to the adjacent router owning `addr`.
    Forward { router: RouterId, addr: Ipv4Addr },
    /// The packet is at its destination network; deliver locally.
    Deliver,
    /// Discard (NULL0 static).
    Drop,
}

/// Source preference (lower wins), mirroring administrative distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FibSource {
    Connected,
    Static,
    Bgp,
}

/// One FIB entry with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibEntry {
    pub action: FibAction,
    pub source: FibSource,
    pub deriv: DerivId,
}

/// A router's forwarding table.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    trie: PrefixTrie<FibEntry>,
}

// Semantic equality: same (prefix, entry) set, regardless of trie node
// layout (removals leave tombstones, so structural equality would be
// order-sensitive).
impl PartialEq for Fib {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut a: Vec<_> = self.iter().collect();
        let mut b: Vec<_> = other.iter().collect();
        a.sort_by_key(|(p, _)| *p);
        b.sort_by_key(|(p, _)| *p);
        a == b
    }
}
impl Eq for Fib {}

impl Fib {
    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Prefix, &FibEntry)> {
        self.trie.lookup(addr)
    }

    /// Exact-prefix lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&FibEntry> {
        self.trie.get(prefix)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the FIB is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// All entries.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &FibEntry)> {
        self.trie.iter()
    }

    /// Inserts honoring source preference: an existing entry is replaced
    /// only by a strictly more-preferred source.
    pub fn install(&mut self, prefix: Prefix, entry: FibEntry) {
        match self.trie.get(prefix) {
            Some(existing) if existing.source <= entry.source => {}
            _ => {
                self.trie.insert(prefix, entry);
            }
        }
    }
}

/// The per-prefix BGP FIB fragment of one outcome: which routers install
/// which entry for the outcome's prefix. Flapping prefixes install
/// nothing (their forwarding state is unstable by definition); locally
/// originated bests install nothing (the base FIB already handles local
/// delivery or statics). Pure in the outcome, so the incremental
/// verifier caches fragments per prefix alongside the outcome cache and
/// re-derives only those whose best routes changed.
pub fn bgp_fragment(outcome: &crate::bgp::PrefixOutcome) -> Vec<(usize, FibEntry)> {
    let crate::bgp::PrefixOutcome::Converged { best, .. } = outcome else {
        return Vec::new();
    };
    let mut frag = Vec::new();
    for (i, route) in best.iter().enumerate() {
        let Some(route) = route else { continue };
        let Some(from) = route.learned_from else {
            continue;
        };
        frag.push((
            i,
            FibEntry {
                action: FibAction::Forward {
                    router: from,
                    addr: route.next_hop,
                },
                source: FibSource::Bgp,
                deriv: route.deriv,
            },
        ));
    }
    frag
}

/// Builds the connected + static part of a router's FIB (the BGP part is
/// layered on by the simulator from per-prefix outcomes).
pub fn base_fib(
    topo: &Topology,
    router: RouterId,
    model: &DeviceModel,
    arena: &mut DerivArena,
) -> Fib {
    let mut fib = Fib::default();
    // Connected: link subnets.
    for link in topo.links_of(router) {
        let lines = link
            .endpoint_of(router)
            .and_then(|e| model.interface_with_addr(e.addr))
            .map(|i| {
                let mut v = vec![LineId::new(router, i.line)];
                if let Some((_, _, l)) = i.addr {
                    v.push(LineId::new(router, l));
                }
                v
            })
            .unwrap_or_default();
        let deriv = arena.intern(DerivKind::FibConnected, lines, vec![]);
        fib.install(
            link.subnet,
            FibEntry {
                action: FibAction::Deliver,
                source: FibSource::Connected,
                deriv,
            },
        );
    }
    // Connected: attached customer prefixes.
    for p in &topo.router(router).attached {
        let deriv = arena.intern(DerivKind::FibConnected, vec![], vec![]);
        fib.install(
            *p,
            FibEntry {
                action: FibAction::Deliver,
                source: FibSource::Connected,
                deriv,
            },
        );
    }
    // Static routes.
    for sr in &model.static_routes {
        let deriv = arena.intern(
            DerivKind::FibStatic,
            vec![LineId::new(router, sr.line)],
            vec![],
        );
        let action = match sr.next_hop {
            NextHop::Null0 => Some(FibAction::Drop),
            NextHop::Addr(addr) => resolve_next_hop(topo, router, addr),
        };
        if let Some(action) = action {
            fib.install(
                sr.prefix,
                FibEntry {
                    action,
                    source: FibSource::Static,
                    deriv,
                },
            );
        }
        // Unresolvable next hop: the static stays out of the FIB, exactly
        // like an inactive static route on a real device.
    }
    fib
}

/// Resolves a next-hop address from `router`'s point of view: an adjacent
/// router's interface, or a locally attached subnet (deliver).
pub fn resolve_next_hop(topo: &Topology, router: RouterId, addr: Ipv4Addr) -> Option<FibAction> {
    if let Some(owner) = topo.owner_of(addr) {
        if owner == router {
            return Some(FibAction::Deliver);
        }
        let adjacent = topo
            .links_of(router)
            .any(|l| l.peer_of(router).map(|e| e.addr) == Some(addr));
        if adjacent {
            return Some(FibAction::Forward {
                router: owner,
                addr,
            });
        }
        return None;
    }
    // A gateway inside one of our attached subnets (e.g. the DCN edge).
    if topo
        .router(router)
        .attached
        .iter()
        .any(|p| p.contains(addr))
    {
        return Some(FibAction::Deliver);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::parse::parse_device;
    use acr_topo::{Role, TopologyBuilder};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn setup(cfg_a: &str) -> (Topology, DeviceModel) {
        let mut b = TopologyBuilder::new();
        let a = b.router("A", Role::Backbone);
        let s = b.router("S", Role::Backbone);
        b.link(a, s); // A=172.16.0.1, S=172.16.0.2
        b.attach(a, p("20.0.0.0/16"));
        (
            b.build(),
            DeviceModel::from_config(&parse_device("A", cfg_a).unwrap()),
        )
    }

    #[test]
    fn connected_entries_deliver() {
        let (topo, model) = setup("bgp 1\n");
        let mut arena = DerivArena::new();
        let fib = base_fib(&topo, RouterId(0), &model, &mut arena);
        // Link subnet + attached prefix.
        assert_eq!(fib.len(), 2);
        let (pfx, e) = fib.lookup(Ipv4Addr::new(20, 0, 1, 1)).unwrap();
        assert_eq!(pfx, p("20.0.0.0/16"));
        assert_eq!(e.action, FibAction::Deliver);
        let (pfx, _) = fib.lookup(Ipv4Addr::new(172, 16, 0, 2)).unwrap();
        assert_eq!(pfx, p("172.16.0.0/30"));
    }

    #[test]
    fn static_null0_drops() {
        let (topo, model) = setup("ip route-static 30.0.0.0 8 NULL0\n");
        let mut arena = DerivArena::new();
        let fib = base_fib(&topo, RouterId(0), &model, &mut arena);
        let e = fib.get(p("30.0.0.0/8")).unwrap();
        assert_eq!(e.action, FibAction::Drop);
        assert_eq!(e.source, FibSource::Static);
        // Its derivation carries the static-route line.
        assert_eq!(arena.node(e.deriv).lines, vec![LineId::new(RouterId(0), 1)]);
    }

    #[test]
    fn static_via_neighbor_forwards() {
        let (topo, model) = setup("ip route-static 30.0.0.0 8 172.16.0.2\n");
        let mut arena = DerivArena::new();
        let fib = base_fib(&topo, RouterId(0), &model, &mut arena);
        match fib.get(p("30.0.0.0/8")).unwrap().action {
            FibAction::Forward { router, addr } => {
                assert_eq!(router, RouterId(1));
                assert_eq!(addr, Ipv4Addr::new(172, 16, 0, 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn static_via_attached_gateway_delivers() {
        let (topo, model) = setup("ip route-static 30.0.0.0 8 20.0.0.99\n");
        let mut arena = DerivArena::new();
        let fib = base_fib(&topo, RouterId(0), &model, &mut arena);
        assert_eq!(fib.get(p("30.0.0.0/8")).unwrap().action, FibAction::Deliver);
    }

    #[test]
    fn unresolvable_static_is_inactive() {
        let (topo, model) = setup("ip route-static 30.0.0.0 8 9.9.9.9\n");
        let mut arena = DerivArena::new();
        let fib = base_fib(&topo, RouterId(0), &model, &mut arena);
        assert!(fib.get(p("30.0.0.0/8")).is_none());
    }

    #[test]
    fn source_preference_connected_over_static_over_bgp() {
        let (topo, model) = setup("ip route-static 20.0.0.0 16 NULL0\n");
        let mut arena = DerivArena::new();
        let mut fib = base_fib(&topo, RouterId(0), &model, &mut arena);
        // The attached 20.0/16 (connected) must shadow the NULL0 static.
        assert_eq!(
            fib.get(p("20.0.0.0/16")).unwrap().source,
            FibSource::Connected
        );
        // A BGP entry cannot displace either.
        let deriv = arena.intern(DerivKind::Import, vec![], vec![]);
        fib.install(
            p("20.0.0.0/16"),
            FibEntry {
                action: FibAction::Drop,
                source: FibSource::Bgp,
                deriv,
            },
        );
        assert_eq!(
            fib.get(p("20.0.0.0/16")).unwrap().source,
            FibSource::Connected
        );
        // But a BGP entry installs fine for a new prefix, and a static then
        // replaces it.
        fib.install(
            p("40.0.0.0/8"),
            FibEntry {
                action: FibAction::Drop,
                source: FibSource::Bgp,
                deriv,
            },
        );
        assert_eq!(fib.get(p("40.0.0.0/8")).unwrap().source, FibSource::Bgp);
        fib.install(
            p("40.0.0.0/8"),
            FibEntry {
                action: FibAction::Deliver,
                source: FibSource::Static,
                deriv,
            },
        );
        assert_eq!(fib.get(p("40.0.0.0/8")).unwrap().source, FibSource::Static);
    }

    #[test]
    fn interface_lines_attributed_when_configured() {
        let (topo, model) = setup("interface eth0\n ip address 172.16.0.1 30\n");
        let mut arena = DerivArena::new();
        let fib = base_fib(&topo, RouterId(0), &model, &mut arena);
        let e = fib.get(p("172.16.0.0/30")).unwrap();
        let lines = &arena.node(e.deriv).lines;
        assert_eq!(lines.len(), 2, "{lines:?}"); // interface + ip address lines
    }
}
