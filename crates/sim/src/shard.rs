//! Per-prefix sharded convergence: mode selection, the thread-budget
//! clamp, and the deterministic join helpers.
//!
//! Prefixes are independent given the session list — no transfer, memo
//! entry, or derivation ever crosses a prefix boundary (the prefix is
//! part of every route, and memo hits are impossible across prefixes).
//! The sharded runner (`Simulator::run_prefixes_sharded` in `sim.rs`)
//! exploits this: it partitions the globally sorted prefix list
//! round-robin over workers, runs one sparse dirty-set engine per worker
//! with a private arena + [`crate::bgp::PolicyMemo`], and joins
//! deterministically.
//!
//! **Why the join is byte-identical to the unsharded run.** The engine's
//! dynamics are invariant under arena renumbering: within one arena,
//! `DerivId` equality is content equality, and no comparison the engine
//! makes depends on the numeric id values. So the sequence of derivation
//! *contents* a prefix interns (parents expressed as references to
//! earlier contents) is a function of the prefix alone, not of which
//! prefixes ran earlier in the same arena. A worker arena starts empty
//! and processes its prefixes in the same relative order as the global
//! sorted order, so the nodes created while running prefix *P* are a
//! superset of the nodes the unsharded run would create for *P*
//! (the worker has seen fewer earlier prefixes), in the same
//! first-intern order. Replaying those created ranges node-by-node
//! through the caller's arena, visiting prefixes in *global sorted
//! order*, dedups every globally-known content and appends exactly the
//! unsharded run's new-node sequence — hence a byte-identical arena,
//! and outcome remapping via the per-worker cumulative id maps yields
//! byte-identical outcomes (rejection lists are re-sorted after the
//! remap, matching the engines' sorted-and-deduped invariant).
//! `prop_shard_sim` exercises the claim over random topologies × faults
//! × shard counts.

use crate::bgp::PrefixOutcome;
use crate::deriv::{DerivArena, DerivId};
use crate::route::Route;
use acr_obs::metrics::Counter;
use std::sync::OnceLock;

pub(crate) static SHARD_RUNS: Counter = Counter::new("sim.shard_runs");
pub(crate) static SHARD_PREFIXES: Counter = Counter::new("sim.shard_prefixes");
pub(crate) static SHARD_REPLAYED_NODES: Counter = Counter::new("sim.shard_replayed_nodes");

/// How a multi-prefix run is sharded across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Follow the `ACR_SHARD` environment toggle (read once, like the
    /// other `ACR_*` toggles): unset/anything → sharding on with
    /// [`resolve_threads`]`(0)` workers; `0`/`false`/`off` → off; an
    /// explicit number → that many workers.
    #[default]
    Auto,
    /// Never shard (the candidate-validation path sets this explicitly:
    /// candidates thread a cross-candidate memo and warm starts, which
    /// the sharded runner deliberately does not consult).
    Off,
    /// Exactly this many workers, environment ignored — what the
    /// shard-count sweep in `prop_shard_sim` uses (the env toggle is a
    /// process-global `OnceLock` and cannot vary within a process).
    Workers(usize),
}

#[derive(Clone, Copy)]
enum EnvShard {
    Auto,
    Off,
    Workers(usize),
}

static SHARD_ENV: OnceLock<EnvShard> = OnceLock::new();

fn shard_env() -> EnvShard {
    *SHARD_ENV.get_or_init(|| match std::env::var("ACR_SHARD").ok().as_deref() {
        Some("0") | Some("false") | Some("off") => EnvShard::Off,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => EnvShard::Workers(n.min(256)),
            _ => EnvShard::Auto,
        },
        None => EnvShard::Auto,
    })
}

impl ShardMode {
    /// The worker count to shard with, or `None` to run unsharded.
    pub(crate) fn resolve(self) -> Option<usize> {
        match self {
            ShardMode::Off => None,
            ShardMode::Workers(n) => Some(n.max(1)),
            ShardMode::Auto => match shard_env() {
                EnvShard::Off => None,
                EnvShard::Auto => Some(resolve_threads(0)),
                EnvShard::Workers(n) => Some(n),
            },
        }
    }
}

/// Worker-thread count: `0` = available parallelism; explicit requests
/// are clamped to the host's available parallelism. Candidate validation
/// and sharded convergence are CPU-bound with no blocking I/O, so
/// oversubscription only adds contention (measured 1.7× slower at
/// threads=4 on a 1-core host) — there is no workload where more workers
/// than cores helps. (Shared with `acr-core`'s candidate worker pool.)
pub fn resolve_threads(configured: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if configured != 0 {
        return configured.min(avail);
    }
    avail
}

/// Replays one worker arena's `[start, end)` created-node range into
/// `main`, extending the worker's cumulative id map (which must already
/// cover `[0, start)` — ranges are replayed in creation order). Returns
/// the number of nodes replayed. Parents always have smaller ids than
/// their node (the arena is append-only), so the map is total when a
/// parent is translated.
pub(crate) fn replay_range(
    main: &mut DerivArena,
    worker: &DerivArena,
    range: (usize, usize),
    map: &mut Vec<DerivId>,
) -> u64 {
    let (start, end) = range;
    debug_assert_eq!(map.len(), start, "ranges must be replayed in order");
    for nid in start..end {
        let node = worker.node(DerivId(nid as u32));
        let parents: Vec<DerivId> = node.parents.iter().map(|p| map[p.0 as usize]).collect();
        let id = main.intern(node.kind, node.lines.clone(), parents);
        map.push(id);
    }
    (end - start) as u64
}

fn remap_route(mut r: Route, map: &[DerivId]) -> Route {
    r.deriv = map[r.deriv.0 as usize];
    r
}

fn remap_rejections(mut rejections: Vec<DerivId>, map: &[DerivId]) -> Vec<DerivId> {
    for d in rejections.iter_mut() {
        *d = map[d.0 as usize];
    }
    // The map is injective (content-addressed on both sides) but not
    // monotone — globally known contents translate to small ids — so the
    // engines' sorted-and-deduped invariant must be re-established.
    rejections.sort_unstable();
    rejections.dedup();
    rejections
}

/// Translates a worker-arena outcome into the caller's arena.
pub(crate) fn remap_outcome(o: PrefixOutcome, map: &[DerivId]) -> PrefixOutcome {
    match o {
        PrefixOutcome::Converged {
            rounds,
            best,
            rejections,
        } => PrefixOutcome::Converged {
            rounds,
            best: best
                .into_iter()
                .map(|r| r.map(|r| remap_route(r, map)))
                .collect(),
            rejections: remap_rejections(rejections, map),
        },
        PrefixOutcome::Flapping {
            first_seen_round,
            cycle_len,
            observed,
            rejections,
        } => PrefixOutcome::Flapping {
            first_seen_round,
            cycle_len,
            observed: observed
                .into_iter()
                .map(|v| v.into_iter().map(|r| remap_route(r, map)).collect())
                .collect(),
            rejections: remap_rejections(rejections, map),
        },
    }
}
