//! BGP session establishment.
//!
//! A session between adjacent routers comes up only when **both** sides
//! configure each other with the correct remote AS — directly or through a
//! peer group. This is where the Table-1 classes "missing peer group",
//! "extra items in peer group" and "override to wrong AS number" become
//! observable: a botched peer statement keeps the session down (or brings
//! up a session the intent never asked for), and the diagnostics record
//! exactly why.

use acr_cfg::model::DeviceModel;
use acr_cfg::LineId;
use acr_net_types::{Asn, Ipv4Addr, RouterId};
use acr_topo::Topology;
use std::borrow::Borrow;
use std::fmt;

/// An established BGP session between two adjacent routers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    pub a: RouterId,
    pub b: RouterId,
    /// `a`'s interface address on the shared link (b's configured peer).
    pub a_addr: Ipv4Addr,
    /// `b`'s interface address on the shared link (a's configured peer).
    pub b_addr: Ipv4Addr,
    /// All config lines on `a` contributing to its half of the session.
    pub a_lines: Vec<LineId>,
    /// All config lines on `b` contributing to its half of the session.
    pub b_lines: Vec<LineId>,
    /// Session-establishing lines only (no policy applications) on `a`.
    pub a_base: Vec<LineId>,
    /// Session-establishing lines only (no policy applications) on `b`.
    pub b_base: Vec<LineId>,
    /// Import/export policies on `a`: name + the applying line.
    pub a_import: Option<(String, LineId)>,
    pub a_export: Option<(String, LineId)>,
    /// Import/export policies on `b`: name + the applying line.
    pub b_import: Option<(String, LineId)>,
    pub b_export: Option<(String, LineId)>,
}

impl Session {
    /// The far-end router as seen from `router`.
    pub fn peer_of(&self, router: RouterId) -> Option<RouterId> {
        if self.a == router {
            Some(self.b)
        } else if self.b == router {
            Some(self.a)
        } else {
            None
        }
    }

    /// (peer address, import policy, export policy, local session lines)
    /// as seen from `router`.
    pub fn view_of(&self, router: RouterId) -> Option<SessionView<'_>> {
        if self.a == router {
            Some(SessionView {
                peer: self.b,
                peer_addr: self.b_addr,
                local_addr: self.a_addr,
                import: self.a_import.as_ref().map(|(n, l)| (n.as_str(), *l)),
                export: self.a_export.as_ref().map(|(n, l)| (n.as_str(), *l)),
                lines: &self.a_lines,
                base_lines: &self.a_base,
            })
        } else if self.b == router {
            Some(SessionView {
                peer: self.a,
                peer_addr: self.a_addr,
                local_addr: self.b_addr,
                import: self.b_import.as_ref().map(|(n, l)| (n.as_str(), *l)),
                export: self.b_export.as_ref().map(|(n, l)| (n.as_str(), *l)),
                lines: &self.b_lines,
                base_lines: &self.b_base,
            })
        } else {
            None
        }
    }
}

/// One side's view of a session.
#[derive(Debug, Clone, Copy)]
pub struct SessionView<'a> {
    pub peer: RouterId,
    pub peer_addr: Ipv4Addr,
    pub local_addr: Ipv4Addr,
    /// Import policy: name + the `peer … route-policy … import` line.
    pub import: Option<(&'a str, LineId)>,
    /// Export policy: name + the applying line.
    pub export: Option<(&'a str, LineId)>,
    /// Every contributing line (diagnostics granularity).
    pub lines: &'a [LineId],
    /// Session-establishing lines only (provenance granularity).
    pub base_lines: &'a [LineId],
}

/// Why a configured peer did not come up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFailure {
    /// The peer address belongs to no adjacent router.
    NoSuchNeighbor,
    /// The far side has no matching `peer` statement for our address.
    NotConfiguredRemotely { remote: RouterId },
    /// Our configured remote AS does not match the neighbor's actual AS.
    AsMismatch { expected: Asn, actual: Option<Asn> },
    /// The peer statement exists but no AS number is configured (e.g. the
    /// peer group carrying it is missing).
    NoAsNumber,
}

impl fmt::Display for SessionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionFailure::NoSuchNeighbor => f.write_str("peer address is not an adjacent router"),
            SessionFailure::NotConfiguredRemotely { remote } => {
                write!(f, "remote {remote} has no peer statement for us")
            }
            SessionFailure::AsMismatch { expected, actual } => match actual {
                Some(a) => write!(f, "AS mismatch: configured {expected}, neighbor runs {a}"),
                None => write!(f, "AS mismatch: configured {expected}, neighbor has no BGP"),
            },
            SessionFailure::NoAsNumber => f.write_str("peer has no as-number (missing group?)"),
        }
    }
}

/// A per-configured-peer diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionDiag {
    pub router: RouterId,
    pub peer_addr: Ipv4Addr,
    pub failure: SessionFailure,
    /// Lines configuring this half-session.
    pub lines: Vec<LineId>,
}

/// Establishes sessions for the whole network.
///
/// `models` is indexed by `RouterId::index()`. Returns the established
/// sessions plus diagnostics for every configured-but-down peer.
///
/// Equivalent to concatenating [`establish_router`] over all routers in
/// id order — which is exactly what the delta-compiled path does, so
/// per-router recomputation is byte-identical to a full re-establish.
pub fn establish<M: Borrow<DeviceModel>>(
    topo: &Topology,
    models: &[M],
) -> (Vec<Session>, Vec<SessionDiag>) {
    let mut sessions = Vec::new();
    let mut diags = Vec::new();
    for r in topo.routers() {
        let (s, d) = establish_router(topo, models, r.id);
        sessions.extend(s);
        diags.extend(d);
    }
    (sessions, diags)
}

/// One router's contribution to session establishment: the sessions it
/// owns (those where it is the lower-id side) and the diagnostics for its
/// own configured-but-down peers.
///
/// The output depends only on `router`'s model (`peers`, AS value), the
/// `peers` maps and AS values of its topological neighbors, and the
/// static topology — so a patch that leaves those untouched on `router`
/// and on every neighbor cannot change this part.
pub fn establish_router<M: Borrow<DeviceModel>>(
    topo: &Topology,
    models: &[M],
    router: RouterId,
) -> (Vec<Session>, Vec<SessionDiag>) {
    let mut sessions = Vec::new();
    let mut diags = Vec::new();
    {
        let r = topo.router(router);
        let model = models[router.index()].borrow();
        for (peer_addr, peer_cfg) in &model.peers {
            let lines: Vec<LineId> = peer_cfg
                .lines
                .iter()
                .map(|l| LineId::new(r.id, *l))
                .collect();
            // Resolve the peer address to an adjacent router.
            let Some(remote) = topo.owner_of(*peer_addr) else {
                diags.push(SessionDiag {
                    router: r.id,
                    peer_addr: *peer_addr,
                    failure: SessionFailure::NoSuchNeighbor,
                    lines,
                });
                continue;
            };
            let adjacent = topo.neighbors(r.id).iter().any(|(n, link)| {
                *n == remote && link.endpoint_of(remote).map(|e| e.addr) == Some(*peer_addr)
            });
            if !adjacent {
                diags.push(SessionDiag {
                    router: r.id,
                    peer_addr: *peer_addr,
                    failure: SessionFailure::NoSuchNeighbor,
                    lines,
                });
                continue;
            }
            // Only process each pair once (from the lower router id side)
            // to avoid duplicate sessions; the higher side's failures are
            // still reported from its own iteration when asymmetric.
            let Some((expected_as, _)) = peer_cfg.asn else {
                diags.push(SessionDiag {
                    router: r.id,
                    peer_addr: *peer_addr,
                    failure: SessionFailure::NoAsNumber,
                    lines,
                });
                continue;
            };
            let remote_model = models[remote.index()].borrow();
            let actual_as = remote_model.asn.map(|(a, _)| a);
            if actual_as != Some(expected_as) {
                diags.push(SessionDiag {
                    router: r.id,
                    peer_addr: *peer_addr,
                    failure: SessionFailure::AsMismatch {
                        expected: expected_as,
                        actual: actual_as,
                    },
                    lines,
                });
                continue;
            }
            // Does the remote configure us back, with our correct AS?
            let our_addr = topo
                .addr_towards(r.id, remote)
                .expect("adjacency implies an address");
            let Some(remote_peer_cfg) = remote_model.peers.get(&our_addr) else {
                diags.push(SessionDiag {
                    router: r.id,
                    peer_addr: *peer_addr,
                    failure: SessionFailure::NotConfiguredRemotely { remote },
                    lines,
                });
                continue;
            };
            let our_as = model.asn.map(|(a, _)| a);
            if remote_peer_cfg.asn.map(|(a, _)| a) != our_as || our_as.is_none() {
                // The remote side will report the mismatch from its own
                // iteration; from our side the session is simply down.
                diags.push(SessionDiag {
                    router: r.id,
                    peer_addr: *peer_addr,
                    failure: SessionFailure::NotConfiguredRemotely { remote },
                    lines,
                });
                continue;
            }
            if r.id < remote {
                let remote_lines: Vec<LineId> = remote_peer_cfg
                    .lines
                    .iter()
                    .map(|l| LineId::new(remote, *l))
                    .collect();
                let pol = |router: RouterId, p: &Option<(String, u32)>| {
                    p.as_ref()
                        .map(|(n, l)| (n.clone(), LineId::new(router, *l)))
                };
                sessions.push(Session {
                    a: r.id,
                    b: remote,
                    a_addr: our_addr,
                    b_addr: *peer_addr,
                    a_base: peer_cfg
                        .base_lines()
                        .iter()
                        .map(|l| LineId::new(r.id, *l))
                        .collect(),
                    b_base: remote_peer_cfg
                        .base_lines()
                        .iter()
                        .map(|l| LineId::new(remote, *l))
                        .collect(),
                    a_lines: lines,
                    b_lines: remote_lines,
                    a_import: pol(r.id, &peer_cfg.import_policy),
                    a_export: pol(r.id, &peer_cfg.export_policy),
                    b_import: pol(remote, &remote_peer_cfg.import_policy),
                    b_export: pol(remote, &remote_peer_cfg.export_policy),
                });
            }
        }
    }
    (sessions, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::parse::parse_device;
    use acr_topo::{Role, TopologyBuilder};

    /// Two routers, symmetric peering.
    fn two_node(a_cfg: &str, b_cfg: &str) -> (Topology, Vec<DeviceModel>) {
        let mut b = TopologyBuilder::new();
        let ra = b.router("A", Role::Backbone);
        let rb = b.router("B", Role::Backbone);
        b.link(ra, rb);
        let topo = b.build();
        let models = vec![
            DeviceModel::from_config(&parse_device("A", a_cfg).unwrap()),
            DeviceModel::from_config(&parse_device("B", b_cfg).unwrap()),
        ];
        (topo, models)
    }

    #[test]
    fn symmetric_peering_comes_up() {
        // Link addresses: A=172.16.0.1, B=172.16.0.2.
        let (topo, models) = two_node(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let (sessions, diags) = establish(&topo, &models);
        assert_eq!(sessions.len(), 1);
        assert!(diags.is_empty(), "{diags:?}");
        let s = &sessions[0];
        assert_eq!((s.a, s.b), (RouterId(0), RouterId(1)));
        let va = s.view_of(RouterId(0)).unwrap();
        assert_eq!(va.peer, RouterId(1));
        assert_eq!(va.peer_addr, Ipv4Addr::new(172, 16, 0, 2));
        assert_eq!(s.peer_of(RouterId(1)), Some(RouterId(0)));
        assert_eq!(s.peer_of(RouterId(9)), None);
    }

    #[test]
    fn as_mismatch_keeps_session_down() {
        let (topo, models) = two_node(
            "bgp 65001\n peer 172.16.0.2 as-number 65999\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let (sessions, diags) = establish(&topo, &models);
        assert!(sessions.is_empty());
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| matches!(
            d.failure,
            SessionFailure::AsMismatch {
                expected: Asn(65999),
                actual: Some(Asn(65002))
            }
        )));
    }

    #[test]
    fn one_sided_peering_stays_down() {
        let (topo, models) = two_node(
            "bgp 65001\n peer 172.16.0.2 as-number 65002\n",
            "bgp 65002\n",
        );
        let (sessions, diags) = establish(&topo, &models);
        assert!(sessions.is_empty());
        assert_eq!(diags.len(), 1);
        assert!(matches!(
            diags[0].failure,
            SessionFailure::NotConfiguredRemotely { .. }
        ));
    }

    #[test]
    fn peer_without_asn_reports_missing_group() {
        // A peer joined to an undefined group inherits no AS number —
        // the Table-1 "missing peer group" class.
        let (topo, models) = two_node(
            "bgp 65001\n peer 172.16.0.2 group PoPSide\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let (sessions, diags) = establish(&topo, &models);
        assert!(sessions.is_empty());
        assert!(
            diags
                .iter()
                .any(|d| d.failure == SessionFailure::NoAsNumber),
            "{diags:?}"
        );
    }

    #[test]
    fn group_carried_session_comes_up_with_group_lines() {
        let (topo, models) = two_node(
            "bgp 65001\n group Ext external\n peer Ext as-number 65002\n peer 172.16.0.2 group Ext\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let (sessions, diags) = establish(&topo, &models);
        assert_eq!(sessions.len(), 1, "{diags:?}");
        let s = &sessions[0];
        // a_lines must include the group definition (line 2), the group AS
        // (line 3) and the membership (line 4).
        let lines: Vec<u32> = s.a_lines.iter().map(|l| l.line).collect();
        assert!(
            lines.contains(&2) && lines.contains(&3) && lines.contains(&4),
            "{lines:?}"
        );
    }

    #[test]
    fn unknown_peer_address_diagnosed() {
        let (topo, models) = two_node("bgp 65001\n peer 9.9.9.9 as-number 65002\n", "bgp 65002\n");
        let (sessions, diags) = establish(&topo, &models);
        assert!(sessions.is_empty());
        assert_eq!(diags[0].failure, SessionFailure::NoSuchNeighbor);
    }

    #[test]
    fn no_local_bgp_process_means_down() {
        let (topo, models) = two_node(
            " # empty\nip route-static 10.0.0.0 8 NULL0\n",
            "bgp 65002\n peer 172.16.0.1 as-number 65001\n",
        );
        let (sessions, diags) = establish(&topo, &models);
        assert!(sessions.is_empty());
        // B's peer is configured but A runs no BGP.
        assert!(diags.iter().any(|d| d.router == RouterId(1)));
    }
}
