//! The origination index: prefix → originating routers, built once.
//!
//! The simulator used to rediscover originations by scanning **every**
//! device model for **every** simulated prefix — an O(prefixes × routers)
//! rescan per run that dominated candidate-validation cost on larger
//! topologies. The index inverts that loop: each router's originations
//! are extracted once ([`router_origins`]), grouped by prefix, and looked
//! up per simulated prefix in O(log P + originators).
//!
//! Because [`router_origins`] is a pure function of one router's model
//! (plus the static topology), the index supports **delta maintenance**:
//! a patched device swaps just its own per-router slice via
//! [`OriginIndex::with_replaced`], leaving every other router's entries
//! shared structurally with the base index.

use crate::bgp::Origination;
use crate::deriv::DerivKind;
use acr_cfg::model::DeviceModel;
use acr_cfg::{LineId, Proto};
use acr_net_types::{Prefix, RouterId};
use acr_topo::Topology;
use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet};

/// Why one router originates `prefix` into BGP, keyed by prefix. The
/// source order within an [`Origination`] reproduces the statement order
/// of the model (`network` lines first, then redistributions), so index
/// lookups are byte-identical to the historical per-prefix scan.
pub fn router_origins(
    topo: &Topology,
    router: RouterId,
    model: &DeviceModel,
) -> BTreeMap<Prefix, Origination> {
    let mut out: BTreeMap<Prefix, Origination> = BTreeMap::new();
    let Some((_, bgp_line)) = model.asn else {
        return out; // no BGP process, no originations
    };
    for (p, line) in &model.networks {
        out.entry(*p).or_default().sources.push((
            DerivKind::OriginNetwork,
            vec![LineId::new(router, *line), LineId::new(router, bgp_line)],
        ));
    }
    for (proto, redist_line) in &model.redistribute {
        match proto {
            Proto::Static => {
                for sr in &model.static_routes {
                    out.entry(sr.prefix).or_default().sources.push((
                        DerivKind::OriginStatic,
                        vec![
                            LineId::new(router, *redist_line),
                            LineId::new(router, sr.line),
                        ],
                    ));
                }
            }
            Proto::Connected => {
                for p in &topo.router(router).attached {
                    out.entry(*p).or_default().sources.push((
                        DerivKind::OriginConnected,
                        vec![LineId::new(router, *redist_line)],
                    ));
                }
            }
        }
    }
    out
}

/// Prefix → (router, origination) pairs, router-sorted. The key set *is*
/// the simulation universe.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OriginIndex {
    by_prefix: BTreeMap<Prefix, Vec<(RouterId, Origination)>>,
}

impl OriginIndex {
    /// Builds the index from every router's model.
    pub fn build<M: Borrow<DeviceModel>>(topo: &Topology, models: &[M]) -> OriginIndex {
        let mut idx = OriginIndex::default();
        for (i, m) in models.iter().enumerate() {
            let router = RouterId(i as u32);
            for (p, o) in router_origins(topo, router, m.borrow()) {
                idx.by_prefix.entry(p).or_default().push((router, o));
            }
        }
        idx
    }

    /// A copy of the index with the given routers' slices swapped out —
    /// the delta-compilation path. Entries of untouched routers are
    /// cloned as-is; prefixes losing their last originator leave the
    /// universe.
    pub fn with_replaced(
        &self,
        parts: &BTreeMap<RouterId, BTreeMap<Prefix, Origination>>,
    ) -> OriginIndex {
        let mut by_prefix = self.by_prefix.clone();
        for v in by_prefix.values_mut() {
            v.retain(|(r, _)| !parts.contains_key(r));
        }
        for (r, part) in parts {
            for (p, o) in part {
                let v = by_prefix.entry(*p).or_default();
                let pos = v.partition_point(|(q, _)| *q < *r);
                v.insert(pos, (*r, o.clone()));
            }
        }
        by_prefix.retain(|_, v| !v.is_empty());
        OriginIndex { by_prefix }
    }

    /// All prefixes any router originates — the per-prefix simulation
    /// universe.
    pub fn universe(&self) -> BTreeSet<Prefix> {
        self.by_prefix.keys().copied().collect()
    }

    /// Dense per-router originations for `prefix` (indexed by
    /// `RouterId::index()`, defaults for non-originators) — the layout
    /// [`crate::bgp::run_prefix`] consumes.
    pub fn dense(&self, prefix: Prefix, routers: usize) -> Vec<Origination> {
        let mut out = vec![Origination::default(); routers];
        if let Some(v) = self.by_prefix.get(&prefix) {
            for (r, o) in v {
                out[r.index()] = o.clone();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_cfg::parse::parse_device;
    use acr_topo::gen;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn model(text: &str) -> DeviceModel {
        DeviceModel::from_config(&parse_device("X", text).unwrap())
    }

    #[test]
    fn index_inverts_router_origins() {
        let topo = gen::line(2);
        let models = vec![
            model("bgp 65000\n network 10.0.0.0 16\n import-route static\nip route-static 20.0.0.0 16 NULL0\n"),
            model("bgp 65001\n network 10.1.0.0 16\n"),
        ];
        let idx = OriginIndex::build(&topo, &models);
        assert_eq!(
            idx.universe(),
            [p("10.0.0.0/16"), p("10.1.0.0/16"), p("20.0.0.0/16")]
                .into_iter()
                .collect()
        );
        let dense = idx.dense(p("10.1.0.0/16"), 2);
        assert!(dense[0].sources.is_empty());
        assert_eq!(dense[1].sources.len(), 1);
    }

    #[test]
    fn no_bgp_process_originates_nothing() {
        let topo = gen::line(2);
        let models = vec![
            model("ip route-static 20.0.0.0 16 NULL0\n"),
            model("ip route-static 30.0.0.0 16 NULL0\n"),
        ];
        let idx = OriginIndex::build(&topo, &models);
        assert!(idx.universe().is_empty());
    }

    #[test]
    fn with_replaced_swaps_only_the_touched_router() {
        let topo = gen::line(2);
        let models = vec![
            model("bgp 65000\n network 10.0.0.0 16\n"),
            model("bgp 65001\n network 10.1.0.0 16\n"),
        ];
        let idx = OriginIndex::build(&topo, &models);
        // R1 drops its network and gains another.
        let new_model = model("bgp 65001\n network 10.9.0.0 16\n");
        let parts = [(RouterId(1), router_origins(&topo, RouterId(1), &new_model))]
            .into_iter()
            .collect();
        let patched = idx.with_replaced(&parts);
        assert_eq!(
            patched.universe(),
            [p("10.0.0.0/16"), p("10.9.0.0/16")].into_iter().collect()
        );
        // And the swap is equivalent to a fresh build.
        let fresh = OriginIndex::build(&topo, &[models[0].clone(), new_model]);
        assert_eq!(patched, fresh);
    }
}
