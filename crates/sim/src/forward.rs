//! Data-plane forwarding walk.
//!
//! Injects a concrete [`Flow`] at a router and follows FIB decisions hop
//! by hop, applying PBR where a traffic policy is active. The walk records
//! every derivation it consulted, so a verification test's *coverage* is
//! exactly the configuration lines its packet's fate depended on.

use crate::deriv::{DerivArena, DerivId, DerivKind};
use crate::fib::{resolve_next_hop, Fib, FibAction};
use acr_cfg::model::DeviceModel;
use acr_cfg::{LineId, PbrAction};
use acr_net_types::{Flow, RouterId};
use acr_topo::Topology;
use std::borrow::Borrow;
use std::fmt;

/// Hard cap on walk length; longer paths are reported as loops.
pub const MAX_HOPS: usize = 64;

/// Why a packet stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// Reached the router owning the destination.
    Delivered(RouterId),
    /// Dropped by a NULL0 route at the router.
    DroppedNull0(RouterId),
    /// Dropped by a PBR deny rule at the router.
    DroppedPbr(RouterId),
    /// A PBR redirect pointed at an unusable next hop.
    DroppedBadRedirect(RouterId),
    /// No FIB entry matched (blackhole).
    NoRoute(RouterId),
    /// The packet revisited a router.
    Loop(Vec<RouterId>),
}

impl ForwardOutcome {
    /// Whether the packet reached a destination.
    pub fn is_delivered(&self) -> bool {
        matches!(self, ForwardOutcome::Delivered(_))
    }
}

impl fmt::Display for ForwardOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardOutcome::Delivered(r) => write!(f, "delivered at {r}"),
            ForwardOutcome::DroppedNull0(r) => write!(f, "dropped (NULL0) at {r}"),
            ForwardOutcome::DroppedPbr(r) => write!(f, "dropped (PBR deny) at {r}"),
            ForwardOutcome::DroppedBadRedirect(r) => write!(f, "dropped (bad PBR redirect) at {r}"),
            ForwardOutcome::NoRoute(r) => write!(f, "no route at {r}"),
            ForwardOutcome::Loop(cycle) => {
                write!(f, "forwarding loop:")?;
                for r in cycle {
                    write!(f, " {r}")?;
                }
                Ok(())
            }
        }
    }
}

/// The full trace of one forwarding walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardResult {
    /// Routers visited in order (first = injection point).
    pub path: Vec<RouterId>,
    pub outcome: ForwardOutcome,
    /// Derivation roots consulted along the way (FIB entries, PBR rules).
    pub derivs: Vec<DerivId>,
}

/// Walks `flow` from `start` across the network.
///
/// `fibs` and `models` are indexed by `RouterId::index()`. PBR lookups
/// intern their derivations into `arena` on the fly (they depend on the
/// concrete flow, so they cannot be precomputed with the FIB).
pub fn walk<M: Borrow<DeviceModel>>(
    topo: &Topology,
    models: &[M],
    fibs: &[Fib],
    start: RouterId,
    flow: &Flow,
    arena: &mut DerivArena,
) -> ForwardResult {
    let mut path = Vec::new();
    let mut derivs = Vec::new();
    let mut current = start;
    loop {
        if path.contains(&current) || path.len() >= MAX_HOPS {
            path.push(current);
            return ForwardResult {
                path: path.clone(),
                outcome: ForwardOutcome::Loop(path),
                derivs,
            };
        }
        path.push(current);
        let model = models[current.index()].borrow();

        // Delivery check: the destination is attached here (or is one of
        // our own interface addresses).
        if topo.delivery_router(flow.dst) == Some(current)
            || topo
                .links_of(current)
                .any(|l| l.endpoint_of(current).map(|e| e.addr) == Some(flow.dst))
        {
            return ForwardResult {
                path,
                outcome: ForwardOutcome::Delivered(current),
                derivs,
            };
        }

        // PBR, if a traffic policy is applied on this device.
        if let Some((policy_name, apply_line)) = &model.pbr_applied {
            if let Some(rules) = model.pbr_policies.get(policy_name) {
                let mut matched = false;
                for rule in rules {
                    let Some(acl) = model.acls.get(&rule.acl) else {
                        continue;
                    };
                    let Some(acl_entry) = acl.iter().find(|e| e.matches(flow)) else {
                        continue;
                    };
                    if acl_entry.rule.action != acr_cfg::PlAction::Permit {
                        // A deny ACL entry means "this rule does not
                        // classify the flow"; continue with the next rule.
                        continue;
                    }
                    let lines = vec![
                        LineId::new(current, *apply_line),
                        LineId::new(current, rule.line),
                        LineId::new(current, acl_entry.line),
                    ];
                    derivs.push(arena.intern(DerivKind::Pbr, lines, vec![]));
                    match rule.action {
                        PbrAction::Permit => {} // fall through to FIB
                        PbrAction::Deny => {
                            return ForwardResult {
                                path,
                                outcome: ForwardOutcome::DroppedPbr(current),
                                derivs,
                            };
                        }
                        PbrAction::Redirect(nh) => match resolve_next_hop(topo, current, nh) {
                            Some(FibAction::Forward { router, .. }) => {
                                current = router;
                            }
                            Some(FibAction::Deliver) => {
                                return ForwardResult {
                                    path,
                                    outcome: ForwardOutcome::Delivered(current),
                                    derivs,
                                };
                            }
                            _ => {
                                return ForwardResult {
                                    path,
                                    outcome: ForwardOutcome::DroppedBadRedirect(current),
                                    derivs,
                                };
                            }
                        },
                    }
                    matched = true;
                    break;
                }
                if matched && path.last() != Some(&current) {
                    // Redirect moved us to a new router; restart the loop
                    // body there.
                    continue;
                }
                if matched && path.last() == Some(&current) {
                    // Permit fell through: continue to FIB below.
                }
            }
        }

        // FIB lookup.
        let fib = &fibs[current.index()];
        match fib.lookup(flow.dst) {
            None => {
                return ForwardResult {
                    path,
                    outcome: ForwardOutcome::NoRoute(current),
                    derivs,
                };
            }
            Some((_, entry)) => {
                derivs.push(entry.deriv);
                match entry.action {
                    FibAction::Deliver => {
                        return ForwardResult {
                            path,
                            outcome: ForwardOutcome::Delivered(current),
                            derivs,
                        };
                    }
                    FibAction::Drop => {
                        return ForwardResult {
                            path,
                            outcome: ForwardOutcome::DroppedNull0(current),
                            derivs,
                        };
                    }
                    FibAction::Forward { router, .. } => {
                        current = router;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::base_fib;
    use acr_cfg::parse::parse_device;
    use acr_net_types::{Ipv4Addr, Prefix};
    use acr_topo::{Role, Topology, TopologyBuilder};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// R0 — R1 — R2, destination 10.2/16 attached at R2.
    fn line3(cfgs: [&str; 3]) -> (Topology, Vec<DeviceModel>, Vec<Fib>, DerivArena) {
        let mut b = TopologyBuilder::new();
        let r0 = b.router("R0", Role::Backbone);
        let r1 = b.router("R1", Role::Backbone);
        let r2 = b.router("R2", Role::Backbone);
        b.link(r0, r1); // .1/.2
        b.link(r1, r2); // .5/.6
        b.attach(r2, p("10.2.0.0/16"));
        let topo = b.build();
        let models: Vec<DeviceModel> = topo
            .routers()
            .iter()
            .map(|r| {
                DeviceModel::from_config(&parse_device(r.name.clone(), cfgs[r.id.index()]).unwrap())
            })
            .collect();
        let mut arena = DerivArena::new();
        let fibs: Vec<Fib> = topo
            .routers()
            .iter()
            .map(|r| base_fib(&topo, r.id, &models[r.id.index()], &mut arena))
            .collect();
        (topo, models, fibs, arena)
    }

    fn flow_to(dst: Ipv4Addr) -> Flow {
        Flow::ip(Ipv4Addr::new(10, 0, 0, 1), dst)
    }

    #[test]
    fn statics_chain_to_delivery() {
        let (topo, models, fibs, mut arena) = line3([
            "ip route-static 10.2.0.0 16 172.16.0.2\n",
            "ip route-static 10.2.0.0 16 172.16.0.6\n",
            "",
        ]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::Delivered(RouterId(2)));
        assert_eq!(r.path, vec![RouterId(0), RouterId(1), RouterId(2)]);
        // Coverage includes both static-route lines.
        let lines = arena.closure_lines(r.derivs.clone());
        assert!(lines.contains(&LineId::new(RouterId(0), 1)));
        assert!(lines.contains(&LineId::new(RouterId(1), 1)));
    }

    #[test]
    fn missing_route_is_blackhole() {
        let (topo, models, fibs, mut arena) =
            line3(["ip route-static 10.2.0.0 16 172.16.0.2\n", "", ""]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::NoRoute(RouterId(1)));
    }

    #[test]
    fn null0_drops() {
        let (topo, models, fibs, mut arena) =
            line3(["ip route-static 10.2.0.0 16 NULL0\n", "", ""]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::DroppedNull0(RouterId(0)));
    }

    #[test]
    fn two_router_loop_detected() {
        let (topo, models, fibs, mut arena) = line3([
            "ip route-static 10.2.0.0 16 172.16.0.2\n",
            "ip route-static 10.2.0.0 16 172.16.0.1\n", // points back at R0
            "",
        ]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        match &r.outcome {
            ForwardOutcome::Loop(cycle) => {
                assert_eq!(cycle, &vec![RouterId(0), RouterId(1), RouterId(0)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn delivery_at_injection_point() {
        let (topo, models, fibs, mut arena) = line3(["", "", ""]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(2),
            &flow_to(Ipv4Addr::new(10, 2, 0, 9)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::Delivered(RouterId(2)));
        assert_eq!(r.path.len(), 1);
    }

    #[test]
    fn pbr_deny_drops_with_coverage() {
        let (topo, models, fibs, mut arena) = line3([
            "ip route-static 10.2.0.0 16 172.16.0.2\nacl 3000\n rule 5 permit ip source 0.0.0.0 0 destination 10.2.0.0 16\ntraffic-policy tp\n match acl 3000 deny\napply traffic-policy tp\n",
            "ip route-static 10.2.0.0 16 172.16.0.6\n",
            "",
        ]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::DroppedPbr(RouterId(0)));
        let lines = arena.closure_lines(r.derivs.clone());
        // apply line (6), pbr rule line (5), acl rule line (3)
        assert!(lines.contains(&LineId::new(RouterId(0), 6)), "{lines:?}");
        assert!(lines.contains(&LineId::new(RouterId(0), 5)), "{lines:?}");
        assert!(lines.contains(&LineId::new(RouterId(0), 3)), "{lines:?}");
    }

    #[test]
    fn pbr_redirect_bypasses_fib() {
        // R0's FIB has no route to 10.2/16, but PBR redirects to R1.
        let (topo, models, fibs, mut arena) = line3([
            "acl 3000\n rule 5 permit ip source 0.0.0.0 0 destination 10.2.0.0 16\ntraffic-policy tp\n match acl 3000 redirect next-hop 172.16.0.2\napply traffic-policy tp\n",
            "ip route-static 10.2.0.0 16 172.16.0.6\n",
            "",
        ]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::Delivered(RouterId(2)));
        assert_eq!(r.path, vec![RouterId(0), RouterId(1), RouterId(2)]);
    }

    #[test]
    fn pbr_permit_falls_through_to_fib() {
        let (topo, models, fibs, mut arena) = line3([
            "ip route-static 10.2.0.0 16 172.16.0.2\nacl 3000\n rule 5 permit ip source 0.0.0.0 0 destination 10.2.0.0 16\ntraffic-policy tp\n match acl 3000 permit\napply traffic-policy tp\n",
            "ip route-static 10.2.0.0 16 172.16.0.6\n",
            "",
        ]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::Delivered(RouterId(2)));
    }

    #[test]
    fn pbr_non_matching_acl_ignored() {
        let (topo, models, fibs, mut arena) = line3([
            "ip route-static 10.2.0.0 16 172.16.0.2\nacl 3000\n rule 5 permit ip source 0.0.0.0 0 destination 99.0.0.0 8\ntraffic-policy tp\n match acl 3000 deny\napply traffic-policy tp\n",
            "ip route-static 10.2.0.0 16 172.16.0.6\n",
            "",
        ]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::Delivered(RouterId(2)));
    }

    #[test]
    fn pbr_bad_redirect_drops() {
        let (topo, models, fibs, mut arena) = line3([
            "acl 3000\n rule 5 permit ip source 0.0.0.0 0 destination 10.2.0.0 16\ntraffic-policy tp\n match acl 3000 redirect next-hop 9.9.9.9\napply traffic-policy tp\n",
            "",
            "",
        ]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::DroppedBadRedirect(RouterId(0)));
    }

    #[test]
    fn deny_acl_entry_skips_rule() {
        // The ACL's first entry denies the flow's subnet: the PBR rule does
        // not classify the flow, so it sails through on the FIB.
        let (topo, models, fibs, mut arena) = line3([
            "ip route-static 10.2.0.0 16 172.16.0.2\nacl 3000\n rule 4 deny ip source 0.0.0.0 0 destination 10.2.0.0 16\n rule 5 permit ip source 0.0.0.0 0 destination 99.0.0.0 8\ntraffic-policy tp\n match acl 3000 deny\napply traffic-policy tp\n",
            "ip route-static 10.2.0.0 16 172.16.0.6\n",
            "",
        ]);
        let r = walk(
            &topo,
            &models,
            &fibs,
            RouterId(0),
            &flow_to(Ipv4Addr::new(10, 2, 3, 4)),
            &mut arena,
        );
        assert_eq!(r.outcome, ForwardOutcome::Delivered(RouterId(2)));
    }
}
