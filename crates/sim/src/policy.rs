//! Route-policy evaluation.
//!
//! Semantics (vendor-style, first-match):
//!
//! - Nodes of a policy are evaluated in ascending `node` order.
//! - A node matches when **all** of its `if-match ip-prefix` clauses are
//!   satisfied; a clause is satisfied when the named prefix list has a
//!   first-matching entry whose action is `permit`. An undefined prefix
//!   list never satisfies a clause.
//! - The first matching node decides: `permit` applies its actions,
//!   `deny` rejects the route. If no node matches the route is rejected
//!   (implicit deny).
//! - A peer that references an **undefined** policy permits everything
//!   unchanged (vendor behaviour; this is what makes the "missing routing
//!   policy" misconfiguration class observable rather than a parse error).
//!
//! Every verdict carries the configuration lines that produced it, which
//! the simulator folds into route derivations.

use crate::route::Route;
use acr_cfg::model::{ApplyAction, DeviceModel, MatchCond};
use acr_cfg::{LineId, PlAction};
use acr_net_types::{AsPath, Asn, RouterId};

/// The outcome of running a route through a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyVerdict {
    /// Route accepted; attributes possibly rewritten.
    Permit {
        route: Route,
        /// True when an `as-path overwrite` fired — the export path must
        /// then *not* additionally prepend the local AS.
        overwrote_path: bool,
        /// Lines that matched/applied (node header, if-match, prefix-list
        /// entry, apply actions).
        lines: Vec<LineId>,
    },
    /// Route rejected, with the lines responsible.
    Deny { lines: Vec<LineId> },
}

/// A [`PolicyVerdict`] whose responsible lines were appended to a
/// caller-owned buffer instead of an owned `Vec` — the allocation-free
/// form the simulator's hot loop uses (see [`eval_policy_into`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyOutcome {
    /// Route accepted; attributes possibly rewritten.
    Permit {
        route: Route,
        /// True when an `as-path overwrite` fired.
        overwrote_path: bool,
    },
    /// Route rejected.
    Deny,
}

/// Evaluates policy `name` of `model` (owned by `router`, local AS
/// `own_asn`) against `route`.
pub fn eval_policy(
    model: &DeviceModel,
    router: RouterId,
    own_asn: Asn,
    name: &str,
    route: &Route,
) -> PolicyVerdict {
    let mut lines = Vec::new();
    match eval_policy_into(model, router, own_asn, name, route, &mut lines) {
        PolicyOutcome::Permit {
            route,
            overwrote_path,
        } => PolicyVerdict::Permit {
            route,
            overwrote_path,
            lines,
        },
        PolicyOutcome::Deny => PolicyVerdict::Deny { lines },
    }
}

/// [`eval_policy`] with the verdict's lines *appended* to `lines` rather
/// than returned in a fresh `Vec`. Lines pushed while scanning a node that
/// turns out not to match are truncated away, so the appended set is
/// exactly the owned variant's — the simulator folds them straight into a
/// derivation without an intermediate allocation per evaluation.
pub fn eval_policy_into(
    model: &DeviceModel,
    router: RouterId,
    own_asn: Asn,
    name: &str,
    route: &Route,
    lines: &mut Vec<LineId>,
) -> PolicyOutcome {
    let Some(nodes) = model.route_policies.get(name) else {
        // Undefined policy: permit everything unchanged.
        return PolicyOutcome::Permit {
            route: route.clone(),
            overwrote_path: false,
        };
    };
    for node in nodes {
        let mark = lines.len();
        lines.push(LineId::new(router, node.line));
        let mut all_match = true;
        for (cond, clause_line) in &node.matches {
            match cond {
                MatchCond::PrefixList(list) => match model.eval_prefix_list(list, route.prefix) {
                    Some((true, entry_line)) => {
                        lines.push(LineId::new(router, *clause_line));
                        lines.push(LineId::new(router, entry_line));
                    }
                    Some((false, _)) | None => {
                        all_match = false;
                        break;
                    }
                },
                MatchCond::Community(c) => {
                    if route.communities.contains(c) {
                        lines.push(LineId::new(router, *clause_line));
                    } else {
                        all_match = false;
                        break;
                    }
                }
            }
        }
        if !all_match {
            lines.truncate(mark);
            continue;
        }
        if node.action == PlAction::Deny {
            return PolicyOutcome::Deny;
        }
        // Permit: apply actions in order.
        let mut out = route.clone();
        let mut overwrote = false;
        for (action, apply_line) in &node.applies {
            lines.push(LineId::new(router, *apply_line));
            match action {
                ApplyAction::AsPathOverwrite(asn) => {
                    out.as_path = AsPath::overwrite(asn.unwrap_or(own_asn));
                    overwrote = true;
                }
                ApplyAction::AsPathPrepend { asn, count } => {
                    out.as_path = out.as_path.prepend_n(*asn, *count as usize);
                }
                ApplyAction::LocalPref(v) => out.local_pref = *v,
                ApplyAction::Med(v) => out.med = *v,
                ApplyAction::Community(c) => {
                    if !out.communities.contains(c) {
                        out.communities.push(*c);
                    }
                }
            }
        }
        return PolicyOutcome::Permit {
            route: out,
            overwrote_path: overwrote,
        };
    }
    // Implicit deny: attribute it to the policy's first node header so the
    // rejection is visible to coverage at all.
    if let Some(n) = nodes.first() {
        lines.push(LineId::new(router, n.line));
    }
    PolicyOutcome::Deny
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deriv::DerivId;
    use acr_cfg::parse::parse_device;
    use acr_net_types::Prefix;

    fn route(p: &str) -> Route {
        Route::local(p.parse::<Prefix>().unwrap(), DerivId(0))
    }

    fn model(text: &str) -> DeviceModel {
        DeviceModel::from_config(&parse_device("X", text).unwrap())
    }

    const R: RouterId = RouterId(0);
    const AS: Asn = Asn(65001);

    #[test]
    fn undefined_policy_permits_unchanged() {
        let m = model("bgp 65001\n");
        let r = route("10.0.0.0/16");
        match eval_policy(&m, R, AS, "ghost", &r) {
            PolicyVerdict::Permit {
                route,
                overwrote_path,
                lines,
            } => {
                assert_eq!(route, r);
                assert!(!overwrote_path);
                assert!(lines.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overwrite_rewrites_path_to_own_as() {
        let m = model(
            "route-policy P permit node 10\n if-match ip-prefix all\n apply as-path overwrite\nip prefix-list all index 10 permit 0.0.0.0 0\n",
        );
        let mut r = route("10.0.0.0/16");
        r.as_path = AsPath::from_hops([Asn(1), Asn(2), Asn(3)]);
        match eval_policy(&m, R, AS, "P", &r) {
            PolicyVerdict::Permit {
                route,
                overwrote_path,
                lines,
            } => {
                assert_eq!(route.as_path, AsPath::overwrite(AS));
                assert!(overwrote_path);
                // node header (1), if-match (2), pl entry (4), apply (3)
                let got: Vec<u32> = lines.iter().map(|l| l.line).collect();
                assert_eq!(got, vec![1, 2, 4, 3]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explicit_overwrite_asn_wins() {
        let m = model("route-policy P permit node 10\n apply as-path overwrite 64999\n");
        match eval_policy(&m, R, AS, "P", &route("10.0.0.0/16")) {
            PolicyVerdict::Permit { route, .. } => {
                assert_eq!(route.as_path, AsPath::overwrite(Asn(64999)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn first_matching_node_decides() {
        let m = model(
            "route-policy P deny node 5\n if-match ip-prefix ten\nroute-policy P permit node 10\n apply local-preference 200\nip prefix-list ten index 10 permit 10.0.0.0 8 le 32\n",
        );
        // 10.x routes hit the deny node.
        match eval_policy(&m, R, AS, "P", &route("10.1.0.0/16")) {
            PolicyVerdict::Deny { lines } => {
                assert!(lines.contains(&LineId::new(R, 1)));
            }
            other => panic!("{other:?}"),
        }
        // Others fall to the catch-all permit node.
        match eval_policy(&m, R, AS, "P", &route("20.0.0.0/16")) {
            PolicyVerdict::Permit { route, .. } => assert_eq!(route.local_pref, 200),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_matching_node_is_implicit_deny() {
        let m = model(
            "route-policy P permit node 10\n if-match ip-prefix ten\nip prefix-list ten index 10 permit 10.0.0.0 8 le 32\n",
        );
        match eval_policy(&m, R, AS, "P", &route("20.0.0.0/16")) {
            PolicyVerdict::Deny { lines } => {
                assert_eq!(lines, vec![LineId::new(R, 1)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deny_entry_in_prefix_list_blocks_clause() {
        let m = model(
            "route-policy P permit node 10\n if-match ip-prefix l\nip prefix-list l index 5 deny 10.1.0.0 16\nip prefix-list l index 10 permit 10.0.0.0 8 le 32\n",
        );
        // 10.1/16 hits the deny entry first -> clause false -> implicit deny.
        assert!(matches!(
            eval_policy(&m, R, AS, "P", &route("10.1.0.0/16")),
            PolicyVerdict::Deny { .. }
        ));
        // 10.2/16 skips to the permit entry.
        assert!(matches!(
            eval_policy(&m, R, AS, "P", &route("10.2.0.0/16")),
            PolicyVerdict::Permit { .. }
        ));
    }

    #[test]
    fn undefined_prefix_list_never_matches() {
        let m = model("route-policy P permit node 10\n if-match ip-prefix missing\n");
        assert!(matches!(
            eval_policy(&m, R, AS, "P", &route("10.0.0.0/16")),
            PolicyVerdict::Deny { .. }
        ));
    }

    #[test]
    fn prepend_med_community_apply() {
        let m = model(
            "route-policy P permit node 10\n apply as-path prepend 65001 2\n apply med 30\n apply community 65001:7\n",
        );
        match eval_policy(&m, R, AS, "P", &route("10.0.0.0/16")) {
            PolicyVerdict::Permit {
                route,
                overwrote_path,
                ..
            } => {
                assert_eq!(route.as_path.len(), 2);
                assert_eq!(route.med, 30);
                assert_eq!(route.communities.len(), 1);
                assert!(!overwrote_path, "prepend is not an overwrite");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn community_match_requires_the_community() {
        let m = model(
            "route-policy P permit node 10\n if-match community 65001:100\n apply local-preference 200\n",
        );
        // Route without the community: implicit deny.
        assert!(matches!(
            eval_policy(&m, R, AS, "P", &route("10.0.0.0/16")),
            PolicyVerdict::Deny { .. }
        ));
        // Route carrying it: the node fires.
        let mut r = route("10.0.0.0/16");
        r.communities.push("65001:100".parse().unwrap());
        match eval_policy(&m, R, AS, "P", &r) {
            PolicyVerdict::Permit { route, lines, .. } => {
                assert_eq!(route.local_pref, 200);
                assert!(lines.contains(&LineId::new(R, 2)), "{lines:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mixed_clauses_are_conjunctive() {
        let m = model(
            "route-policy P permit node 10\n if-match ip-prefix ten\n if-match community 65001:7\nip prefix-list ten index 10 permit 10.0.0.0 8 le 32\n",
        );
        let mut r = route("10.1.0.0/16");
        assert!(
            matches!(eval_policy(&m, R, AS, "P", &r), PolicyVerdict::Deny { .. }),
            "prefix matches but community missing"
        );
        r.communities.push("65001:7".parse().unwrap());
        assert!(matches!(
            eval_policy(&m, R, AS, "P", &r),
            PolicyVerdict::Permit { .. }
        ));
        let mut wrong = route("20.0.0.0/16");
        wrong.communities.push("65001:7".parse().unwrap());
        assert!(
            matches!(
                eval_policy(&m, R, AS, "P", &wrong),
                PolicyVerdict::Deny { .. }
            ),
            "community matches but prefix does not"
        );
    }
}
