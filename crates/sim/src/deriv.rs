//! The derivation arena: content-addressed provenance for routes.
//!
//! Every route the simulator creates points at a [`DerivNode`] recording
//! *which configuration lines* the route's existence depends on at this
//! step, plus parent derivations (the sender's exported route, for learned
//! routes). Nodes are content-addressed — re-deriving the same route in a
//! later simulation round reuses the node — so the arena stays small even
//! when an oscillating prefix is simulated for hundreds of rounds.
//!
//! The provenance layer (`acr-prov`) computes line *coverage* as the
//! transitive closure of `lines` over `parents`; this is the paper's
//! NetCov-style coverage feeding SBFL (§4.1).

use crate::fxhash::{FxHashMap, FxHasher};
use acr_cfg::LineId;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Index of a derivation node in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DerivId(pub u32);

/// What kind of step produced a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DerivKind {
    /// Locally originated from a `network` statement.
    OriginNetwork,
    /// Locally originated by redistributing a static route.
    OriginStatic,
    /// Locally originated by redistributing a connected subnet.
    OriginConnected,
    /// Learned from a neighbor (import side: session + import policy).
    Import,
    /// A neighbor's announcement (export side: session + export policy).
    Export,
    /// A FIB entry for a connected subnet.
    FibConnected,
    /// A FIB entry installed from a static route.
    FibStatic,
    /// A packet matched a PBR rule.
    Pbr,
    /// An announcement was *rejected* by an import policy — negative
    /// provenance: the failed behaviour's candidate explanation.
    ImportDenied,
    /// An announcement was suppressed by an export policy.
    ExportDenied,
}

/// One derivation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivNode {
    pub kind: DerivKind,
    /// Configuration lines this step directly depends on.
    pub lines: Vec<LineId>,
    /// Upstream derivations (e.g. the route that was imported).
    pub parents: Vec<DerivId>,
}

/// A deduplicating arena of derivation nodes.
#[derive(Debug, Default, Clone)]
pub struct DerivArena {
    nodes: Vec<DerivNode>,
    // Hash -> candidate ids, confirmed by full content compare below, so
    // the hash function only routes lookups — it can never change which
    // id a given content interns to. `FxHasher` keeps this off the
    // convergence hot path's profile (interning happens per transfer).
    index: FxHashMap<u64, Vec<DerivId>>,
}

// The index is derived from `nodes`, so equality is node-list equality.
// Two arenas are equal only when they interned the same content in the
// same order — exactly what a deterministic simulation reproduces.
impl PartialEq for DerivArena {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
    }
}
impl Eq for DerivArena {}

impl DerivArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        DerivArena::default()
    }

    /// Number of distinct derivation nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns a node, returning the existing id when an identical node is
    /// already present.
    pub fn intern(
        &mut self,
        kind: DerivKind,
        mut lines: Vec<LineId>,
        mut parents: Vec<DerivId>,
    ) -> DerivId {
        self.intern_ref(kind, &mut lines, &mut parents)
    }

    /// [`DerivArena::intern`] over caller-owned scratch buffers: sorts and
    /// dedups in place, and only copies the content into the arena on a
    /// miss. Interning is content-addressed, so on the simulator hot path
    /// nearly every call is a dedup hit — with this entry point a hit
    /// allocates nothing, where `intern` forces the caller to build (and
    /// then drop) fresh `Vec`s per call.
    pub fn intern_ref(
        &mut self,
        kind: DerivKind,
        lines: &mut Vec<LineId>,
        parents: &mut Vec<DerivId>,
    ) -> DerivId {
        lines.sort_unstable();
        lines.dedup();
        parents.sort_unstable();
        parents.dedup();
        let mut hasher = FxHasher::default();
        kind.hash(&mut hasher);
        lines.hash(&mut hasher);
        parents.hash(&mut hasher);
        let h = hasher.finish();
        if let Some(bucket) = self.index.get(&h) {
            for id in bucket {
                let n = &self.nodes[id.0 as usize];
                if n.kind == kind && &n.lines == lines && &n.parents == parents {
                    return *id;
                }
            }
        }
        let id = DerivId(self.nodes.len() as u32);
        self.nodes.push(DerivNode {
            kind,
            lines: lines.clone(),
            parents: parents.clone(),
        });
        self.index.entry(h).or_default().push(id);
        id
    }

    /// The node behind an id.
    pub fn node(&self, id: DerivId) -> &DerivNode {
        &self.nodes[id.0 as usize]
    }

    /// All configuration lines in the transitive closure of `roots`.
    pub fn closure_lines(&self, roots: impl IntoIterator<Item = DerivId>) -> Vec<LineId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<DerivId> = roots.into_iter().collect();
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            let i = id.0 as usize;
            if seen[i] {
                continue;
            }
            seen[i] = true;
            let n = &self.nodes[i];
            out.extend_from_slice(&n.lines);
            stack.extend_from_slice(&n.parents);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether any node in the closure of `roots` touches a line in
    /// `lines` (used by incremental invalidation).
    pub fn closure_touches(
        &self,
        roots: impl IntoIterator<Item = DerivId>,
        lines: &[LineId],
    ) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<DerivId> = roots.into_iter().collect();
        while let Some(id) = stack.pop() {
            let i = id.0 as usize;
            if seen[i] {
                continue;
            }
            seen[i] = true;
            let n = &self.nodes[i];
            if n.lines.iter().any(|l| lines.contains(l)) {
                return true;
            }
            stack.extend_from_slice(&n.parents);
        }
        false
    }

    /// Re-interns the transitive closures of `roots` (ids valid in
    /// `src`) into this arena, returning the remapped roots.
    ///
    /// Ids are arena-local, so derivations computed in one arena (a
    /// worker's private copy, a cache entry) cannot be referenced from
    /// another directly; `absorb` rebuilds the closure bottom-up via
    /// [`DerivArena::intern`], so shared content dedups against what is
    /// already present and absorbing is idempotent. `memo` carries the
    /// src→dst id mapping across calls against the same `src` (pass a
    /// fresh map per source arena).
    pub fn absorb(
        &mut self,
        src: &DerivArena,
        roots: &[DerivId],
        memo: &mut HashMap<DerivId, DerivId>,
    ) -> Vec<DerivId> {
        roots
            .iter()
            .map(|&r| self.absorb_one(src, r, memo))
            .collect()
    }

    fn absorb_one(
        &mut self,
        src: &DerivArena,
        root: DerivId,
        memo: &mut HashMap<DerivId, DerivId>,
    ) -> DerivId {
        // Iterative post-order: a node is re-interned only after all of
        // its parents have been, since intern needs their new ids.
        let mut stack = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if memo.contains_key(&id) {
                continue;
            }
            let n = src.node(id);
            if expanded {
                let parents = n.parents.iter().map(|p| memo[p]).collect();
                let new_id = self.intern(n.kind, n.lines.clone(), parents);
                memo.insert(id, new_id);
            } else {
                stack.push((id, true));
                for &p in &n.parents {
                    if !memo.contains_key(&p) {
                        stack.push((p, false));
                    }
                }
            }
        }
        memo[&root]
    }

    /// Iterates all nodes with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (DerivId, &DerivNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (DerivId(i as u32), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_net_types::RouterId;

    fn l(r: u32, line: u32) -> LineId {
        LineId::new(RouterId(r), line)
    }

    #[test]
    fn interning_dedups() {
        let mut a = DerivArena::new();
        let x = a.intern(DerivKind::OriginStatic, vec![l(0, 4), l(0, 2)], vec![]);
        let y = a.intern(DerivKind::OriginStatic, vec![l(0, 2), l(0, 4)], vec![]);
        assert_eq!(x, y, "order-insensitive dedup");
        assert_eq!(a.len(), 1);
        let z = a.intern(DerivKind::OriginNetwork, vec![l(0, 2), l(0, 4)], vec![]);
        assert_ne!(x, z, "kind distinguishes nodes");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn closure_follows_parents() {
        let mut a = DerivArena::new();
        let origin = a.intern(DerivKind::OriginNetwork, vec![l(1, 3)], vec![]);
        let export = a.intern(DerivKind::Export, vec![l(1, 5)], vec![origin]);
        let import = a.intern(DerivKind::Import, vec![l(0, 6)], vec![export]);
        let lines = a.closure_lines([import]);
        assert_eq!(lines, vec![l(0, 6), l(1, 3), l(1, 5)]);
        assert!(a.closure_touches([import], &[l(1, 3)]));
        assert!(!a.closure_touches([import], &[l(9, 9)]));
        assert!(
            !a.closure_touches([origin], &[l(0, 6)]),
            "closure is upward only"
        );
    }

    #[test]
    fn closure_handles_shared_subgraphs() {
        let mut a = DerivArena::new();
        let o = a.intern(DerivKind::OriginStatic, vec![l(0, 1)], vec![]);
        let e1 = a.intern(DerivKind::Export, vec![l(0, 2)], vec![o]);
        let e2 = a.intern(DerivKind::Export, vec![l(0, 3)], vec![o]);
        let m = a.intern(DerivKind::Import, vec![], vec![e1, e2]);
        let lines = a.closure_lines([m]);
        assert_eq!(lines, vec![l(0, 1), l(0, 2), l(0, 3)]);
    }

    #[test]
    fn absorb_remaps_closures_and_dedups() {
        let mut src = DerivArena::new();
        let o = src.intern(DerivKind::OriginNetwork, vec![l(1, 3)], vec![]);
        let e = src.intern(DerivKind::Export, vec![l(1, 5)], vec![o]);
        let m = src.intern(DerivKind::Import, vec![l(0, 6)], vec![e]);

        let mut dst = DerivArena::new();
        // Pre-populate dst so ids diverge from src.
        dst.intern(DerivKind::Pbr, vec![l(7, 7)], vec![]);
        let mut memo = HashMap::new();
        let roots = dst.absorb(&src, &[m, o], &mut memo);
        assert_eq!(roots.len(), 2);
        assert_eq!(
            dst.closure_lines([roots[0]]),
            src.closure_lines([m]),
            "closure content survives the remap"
        );
        assert_eq!(dst.closure_lines([roots[1]]), src.closure_lines([o]));
        assert_eq!(dst.len(), 4, "three absorbed + one pre-existing");

        // Absorbing again is a no-op on content.
        let again = dst.absorb(&src, &[m], &mut HashMap::new());
        assert_eq!(again[0], roots[0]);
        assert_eq!(dst.len(), 4);
    }

    #[test]
    fn empty_arena_closure() {
        let a = DerivArena::new();
        assert!(a.closure_lines([]).is_empty());
        assert!(a.is_empty());
    }
}
