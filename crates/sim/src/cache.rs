//! A bounded, sharded, thread-safe memo table.
//!
//! This is the storage layer under `acr-verify`'s `SimCache`: a fixed
//! number of mutex-guarded shards, each an LRU-by-stamp map. Lookups
//! (`peek`) never mutate recency, so concurrent readers cannot perturb
//! the eviction order — recency advances only through `touch` and
//! `insert`, which the repair engine calls from a single coordinating
//! thread in candidate order. That split is what keeps cache contents
//! (and therefore every downstream hit/miss) deterministic regardless
//! of how many worker threads raced on the reads.
//!
//! Statistics are plain atomics: totals are exact, but they are the one
//! part of the cache whose *interleaving* is not ordered. Nothing in a
//! `RepairReport` derives from them.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate over all lookups, in `[0, 1]`; zero when nothing was
    /// looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum, for aggregating over several tables.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
        }
    }
}

struct Shard<K, V> {
    map: HashMap<K, (u64, V)>,
    /// Monotonic per-shard recency clock; larger = more recently used.
    tick: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            tick: 0,
        }
    }
}

/// A sharded bounded memo map with LRU eviction per shard.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of `capacity` total entries split over `shards` shards
    /// (each shard holds at least one entry).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity / shards).max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// `capacity` entries over a default shard count.
    pub fn with_capacity(capacity: usize) -> Self {
        ShardedCache::new(8, capacity)
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key` without promoting it in the LRU order. Safe to
    /// call from any number of threads without affecting which entry a
    /// later `insert` evicts.
    pub fn peek(&self, key: &K) -> Option<V> {
        let shard = self.shard_of(key).lock().unwrap();
        match shard.map.get(key) {
            Some((_, v)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Marks `key` as most recently used (if present). Call from the
    /// coordinating thread only, in a deterministic order.
    pub fn touch(&self, key: &K) {
        let mut shard = self.shard_of(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some((stamp, _)) = shard.map.get_mut(key) {
            *stamp = tick;
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry of its shard when the shard is full. Call from the
    /// coordinating thread only, in a deterministic order.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shard_of(&key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard {
            // LRU stamps are unique within a shard, so the victim is
            // well defined and independent of HashMap iteration order.
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if shard.map.insert(key, (tick, value)).is_none() {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (exact totals; see module docs).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("per_shard", &self.per_shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_does_not_promote() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(1, 2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Peeking 1 must not save it from eviction.
        assert_eq!(c.peek(&1), Some(10));
        c.insert(3, 30);
        assert_eq!(c.peek(&1), None, "oldest entry evicted despite peek");
        assert_eq!(c.peek(&2), Some(20));
        assert_eq!(c.peek(&3), Some(30));
    }

    #[test]
    fn touch_promotes() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(1, 2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.touch(&1);
        c.insert(3, 30);
        assert_eq!(c.peek(&1), Some(10), "touched entry survives");
        assert_eq!(c.peek(&2), None, "untouched entry evicted");
    }

    #[test]
    fn bounded_by_capacity() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(4, 8);
        for k in 0..1000 {
            c.insert(k, k);
        }
        assert!(c.len() <= 8, "len {} exceeds capacity", c.len());
        let s = c.stats();
        assert_eq!(s.insertions, 1000);
        assert_eq!(s.evictions as usize, 1000 - c.len());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let c: ShardedCache<u32, u32> = ShardedCache::with_capacity(16);
        assert!(c.is_empty());
        c.insert(7, 7);
        c.peek(&7);
        c.peek(&8);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.merged(&s).hits, 2);
    }
}
